//! The InceptionTime family: InceptionTime / cInceptionTime /
//! dInceptionTime (paper §2.1, §4.3; Ismail Fawaz et al. 2020).
//!
//! Each inception module runs four parallel branches over its input —
//! a bottleneck 1×1 convolution feeding three convolutions of decreasing
//! kernel length, plus a max-pool → 1×1 branch — concatenated along the
//! channel axis and passed through batch norm + ReLU. Residual shortcuts
//! join every three modules. The `d` variant applies the identical `C(T)`
//! input transformation as dCNN; the module itself is unchanged.

use super::{GapClassifier, InputEncoding, ModelScale};
use dcam_nn::layers::{BatchNorm, Conv2dRows, Dense, Layer, MaxPoolW, Relu, Residual, Sequential};
use dcam_nn::Param;
use dcam_tensor::{SeededRng, Tensor};

/// Concatenates `(N, C_i, H, W)` tensors along the channel axis.
fn concat_channels(parts: &[&Tensor]) -> Tensor {
    assert!(!parts.is_empty());
    let d0 = parts[0].dims();
    let (n, h, w) = (d0[0], d0[2], d0[3]);
    let c_total: usize = parts.iter().map(|p| p.dims()[1]).sum();
    let mut out = Tensor::zeros(&[n, c_total, h, w]);
    let plane = h * w;
    for ni in 0..n {
        let mut c_off = 0;
        for p in parts {
            let c = p.dims()[1];
            assert_eq!(p.dims()[0], n);
            assert_eq!(&p.dims()[2..], &[h, w], "branch spatial shapes differ");
            let src = &p.data()[ni * c * plane..(ni + 1) * c * plane];
            let dst_base = (ni * c_total + c_off) * plane;
            out.data_mut()[dst_base..dst_base + c * plane].copy_from_slice(src);
            c_off += c;
        }
    }
    out
}

/// Splits an `(N, C, H, W)` tensor back into channel groups of given sizes.
fn split_channels(x: &Tensor, sizes: &[usize]) -> Vec<Tensor> {
    let d = x.dims();
    let (n, c_total, h, w) = (d[0], d[1], d[2], d[3]);
    assert_eq!(sizes.iter().sum::<usize>(), c_total);
    let plane = h * w;
    let mut outs: Vec<Tensor> = sizes
        .iter()
        .map(|&c| Tensor::zeros(&[n, c, h, w]))
        .collect();
    for ni in 0..n {
        let mut c_off = 0;
        for (out, &c) in outs.iter_mut().zip(sizes) {
            let src_base = (ni * c_total + c_off) * plane;
            let dst_base = ni * c * plane;
            out.data_mut()[dst_base..dst_base + c * plane]
                .copy_from_slice(&x.data()[src_base..src_base + c * plane]);
            c_off += c;
        }
    }
    outs
}

/// One inception module (four branches, concat, BN, ReLU).
pub struct InceptionModule {
    bottleneck: Conv2dRows,
    convs: Vec<Conv2dRows>,
    pool: MaxPoolW,
    pool_conv: Conv2dRows,
    bn: BatchNorm,
    relu: Relu,
    branch_sizes: Vec<usize>,
}

impl InceptionModule {
    /// Creates a module with `n_filters` per branch and the given kernel
    /// lengths (the published module uses {40, 20, 10} at bottleneck 32).
    pub fn new(
        c_in: usize,
        bottleneck: usize,
        n_filters: usize,
        kernels: &[usize],
        rng: &mut SeededRng,
    ) -> Self {
        assert!(!kernels.is_empty());
        let bottleneck_conv = Conv2dRows::new(c_in, bottleneck, 1, 1, 0, rng);
        let convs: Vec<Conv2dRows> = kernels
            .iter()
            .map(|&k| Conv2dRows::same(bottleneck, n_filters, k, rng))
            .collect();
        let pool = MaxPoolW::same3();
        let pool_conv = Conv2dRows::new(c_in, n_filters, 1, 1, 0, rng);
        let c_out = n_filters * (kernels.len() + 1);
        let mut branch_sizes = vec![n_filters; kernels.len()];
        branch_sizes.push(n_filters);
        InceptionModule {
            bottleneck: bottleneck_conv,
            convs,
            pool,
            pool_conv,
            bn: BatchNorm::new(c_out),
            relu: Relu::new(),
            branch_sizes,
        }
    }

    /// Output channel count (`n_filters × (|kernels| + 1)`).
    pub fn out_channels(&self) -> usize {
        self.branch_sizes.iter().sum()
    }
}

impl Layer for InceptionModule {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let b = self.bottleneck.forward(x, train);
        let mut branches: Vec<Tensor> = self
            .convs
            .iter_mut()
            .map(|c| c.forward(&b, train))
            .collect();
        let pooled = self.pool.forward(x, train);
        branches.push(self.pool_conv.forward(&pooled, train));
        let refs: Vec<&Tensor> = branches.iter().collect();
        let cat = concat_channels(&refs);
        let normed = self.bn.forward(&cat, train);
        self.relu.forward(&normed, train)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let g = self.relu.backward(grad_out);
        let g = self.bn.backward(&g);
        let parts = split_channels(&g, &self.branch_sizes);
        // Conv branches share the bottleneck output.
        let mut g_b: Option<Tensor> = None;
        for (conv, gp) in self.convs.iter_mut().zip(&parts) {
            let gi = conv.backward(gp);
            match &mut g_b {
                Some(acc) => acc.add_assign(&gi).expect("bottleneck grads"),
                None => g_b = Some(gi),
            }
        }
        let mut grad_x = self.bottleneck.backward(&g_b.expect("conv branches"));
        // Pool branch.
        let g_pool = self.pool_conv.backward(parts.last().expect("pool part"));
        let g_pool = self.pool.backward(&g_pool);
        grad_x.add_assign(&g_pool).expect("input grads");
        grad_x
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.bottleneck.visit_params(f);
        for c in &mut self.convs {
            c.visit_params(f);
        }
        self.pool_conv.visit_params(f);
        self.bn.visit_params(f);
        self.relu.visit_params(f);
    }

    fn visit_buffers(&mut self, f: &mut dyn FnMut(&mut Vec<f32>)) {
        self.bn.visit_buffers(f);
    }

    fn visit_convs(&mut self, f: &mut dyn FnMut(&mut Conv2dRows)) {
        self.bottleneck.visit_convs(f);
        for c in &mut self.convs {
            c.visit_convs(f);
        }
        self.pool_conv.visit_convs(f);
    }
}

struct Plan {
    depth: usize,
    bottleneck: usize,
    filters: usize,
    kernels: Vec<usize>,
}

fn plan(scale: ModelScale) -> Plan {
    match scale {
        ModelScale::Paper => Plan {
            depth: 6,
            bottleneck: 32,
            filters: 32,
            kernels: vec![39, 19, 9],
        },
        ModelScale::Small => Plan {
            depth: 3,
            bottleneck: 8,
            filters: 8,
            kernels: vec![15, 9, 5],
        },
        ModelScale::Tiny => Plan {
            depth: 2,
            bottleneck: 4,
            filters: 4,
            kernels: vec![7, 5, 3],
        },
    }
}

/// Builds an InceptionTime/cInceptionTime/dInceptionTime classifier
/// (selected by `encoding`). Residual shortcuts join every 3 modules, as in
/// the published architecture.
pub fn inception_time(
    encoding: InputEncoding,
    n_dims: usize,
    n_classes: usize,
    scale: ModelScale,
    rng: &mut SeededRng,
) -> GapClassifier {
    assert_ne!(
        encoding,
        InputEncoding::Rnn,
        "use `recurrent` for RNN baselines"
    );
    let p = plan(scale);
    let mut features = Sequential::new();
    let mut c_in = encoding.in_channels(n_dims);
    let mut remaining = p.depth;
    while remaining > 0 {
        let group = remaining.min(3);
        let mut chain = Sequential::new();
        let group_in = c_in;
        for _ in 0..group {
            let module = InceptionModule::new(c_in, p.bottleneck, p.filters, &p.kernels, rng);
            c_in = module.out_channels();
            chain.add(Box::new(module));
        }
        if group == 3 {
            // Residual join with projection shortcut (channels change).
            let mut shortcut = Sequential::new();
            shortcut.add(Box::new(Conv2dRows::new(group_in, c_in, 1, 1, 0, rng)));
            shortcut.add(Box::new(BatchNorm::new(c_in)));
            features.add(Box::new(Residual::with_shortcut(chain, shortcut)));
            features.add(Box::new(Relu::new()));
        } else {
            features.add(Box::new(chain));
        }
        remaining -= group;
    }
    let head = Dense::new(c_in, n_classes, rng);
    let name = match encoding {
        InputEncoding::Cnn => "InceptionTime",
        InputEncoding::Ccnn => "cInceptionTime",
        InputEncoding::Dcnn => "dInceptionTime",
        InputEncoding::Rnn => unreachable!(),
    };
    GapClassifier::new(name, encoding, features, head).with_input_dims(n_dims)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concat_split_round_trip() {
        let mut rng = SeededRng::new(0);
        let a = Tensor::uniform(&[2, 3, 2, 4], -1.0, 1.0, &mut rng);
        let b = Tensor::uniform(&[2, 5, 2, 4], -1.0, 1.0, &mut rng);
        let cat = concat_channels(&[&a, &b]);
        assert_eq!(cat.dims(), &[2, 8, 2, 4]);
        let parts = split_channels(&cat, &[3, 5]);
        assert_eq!(parts[0], a);
        assert_eq!(parts[1], b);
    }

    #[test]
    fn module_output_channels() {
        let mut rng = SeededRng::new(1);
        let mut m = InceptionModule::new(5, 4, 4, &[7, 5, 3], &mut rng);
        assert_eq!(m.out_channels(), 16);
        let x = Tensor::uniform(&[1, 5, 2, 10], -1.0, 1.0, &mut rng);
        let y = m.forward(&x, false);
        assert_eq!(y.dims(), &[1, 16, 2, 10]);
    }

    #[test]
    fn module_gradcheck() {
        let mut rng = SeededRng::new(2);
        let mut m = InceptionModule::new(2, 3, 3, &[5, 3], &mut rng);
        let x = Tensor::uniform(&[2, 2, 1, 8], -1.0, 1.0, &mut rng);
        // Train-mode probe (the module contains BatchNorm, whose eval path
        // reads running statistics instead of the differentiated batch path).
        let report = dcam_nn::gradcheck::check_layer_train(&mut m, &x, 1e-2, 7);
        assert!(
            report.passes(6e-2),
            "inception module grads off: param {} input {}",
            report.max_param_err,
            report.max_input_err
        );
    }

    #[test]
    fn dinception_forward_backward_smoke() {
        let mut rng = SeededRng::new(3);
        let mut clf = inception_time(InputEncoding::Dcnn, 3, 2, ModelScale::Tiny, &mut rng);
        let x = Tensor::uniform(&[2, 3, 3, 12], -1.0, 1.0, &mut rng);
        let y = clf.forward(&x, true);
        assert_eq!(y.dims(), &[2, 2]);
        let g = clf.backward(&Tensor::ones(&[2, 2]));
        assert_eq!(g.dims(), x.dims());
    }

    #[test]
    fn paper_depth_includes_residual() {
        let mut rng = SeededRng::new(4);
        let mut clf = inception_time(InputEncoding::Cnn, 2, 2, ModelScale::Small, &mut rng);
        // Small: depth 3 -> one residual group; forward must still work.
        let x = Tensor::uniform(&[1, 2, 1, 20], -1.0, 1.0, &mut rng);
        let y = clf.forward(&x, false);
        assert_eq!(y.dims(), &[1, 2]);
    }
}
