//! Recurrent classifier baselines: RNN / GRU / LSTM (paper §2.1, §5.2).
//!
//! One recurrent hidden layer (the paper uses 128 neurons; scaled presets
//! shrink this) followed by a dense layer mapping the final hidden state to
//! class logits.

use super::ModelScale;
use dcam_nn::layers::{Dense, Layer};
use dcam_nn::recurrent::{Gru, Lstm, Rnn};
use dcam_nn::Param;
use dcam_tensor::{SeededRng, Tensor};

/// Which recurrent cell drives the classifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RecurrentCell {
    /// Vanilla Elman RNN.
    Rnn,
    /// Gated recurrent unit.
    Gru,
    /// Long short-term memory.
    Lstm,
}

impl RecurrentCell {
    /// Architecture name for tables.
    pub fn name(self) -> &'static str {
        match self {
            RecurrentCell::Rnn => "RNN",
            RecurrentCell::Gru => "GRU",
            RecurrentCell::Lstm => "LSTM",
        }
    }
}

enum CellImpl {
    Rnn(Rnn),
    Gru(Gru),
    Lstm(Lstm),
}

/// A recurrent classifier over `(N, D, n)` inputs.
pub struct RecurrentClassifier {
    cell: CellImpl,
    head: Dense,
    name: &'static str,
}

fn hidden_size(scale: ModelScale) -> usize {
    match scale {
        ModelScale::Paper => 128,
        ModelScale::Small => 32,
        ModelScale::Tiny => 8,
    }
}

/// Builds an RNN/GRU/LSTM classifier for `D = n_dims` inputs.
pub fn recurrent(
    cell: RecurrentCell,
    n_dims: usize,
    n_classes: usize,
    scale: ModelScale,
    rng: &mut SeededRng,
) -> RecurrentClassifier {
    let h = hidden_size(scale);
    let cell_impl = match cell {
        RecurrentCell::Rnn => CellImpl::Rnn(Rnn::new(n_dims, h, rng)),
        RecurrentCell::Gru => CellImpl::Gru(Gru::new(n_dims, h, rng)),
        RecurrentCell::Lstm => CellImpl::Lstm(Lstm::new(n_dims, h, rng)),
    };
    RecurrentClassifier {
        cell: cell_impl,
        head: Dense::new(h, n_classes, rng),
        name: cell.name(),
    }
}

impl RecurrentClassifier {
    /// Architecture name for tables.
    pub fn name(&self) -> &str {
        self.name
    }
}

impl Layer for RecurrentClassifier {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let h = match &mut self.cell {
            CellImpl::Rnn(c) => c.forward(x, train),
            CellImpl::Gru(c) => c.forward(x, train),
            CellImpl::Lstm(c) => c.forward(x, train),
        };
        self.head.forward(&h, train)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let g = self.head.backward(grad_out);
        match &mut self.cell {
            CellImpl::Rnn(c) => c.backward(&g),
            CellImpl::Gru(c) => c.backward(&g),
            CellImpl::Lstm(c) => c.backward(&g),
        }
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        match &mut self.cell {
            CellImpl::Rnn(c) => c.visit_params(f),
            CellImpl::Gru(c) => c.visit_params(f),
            CellImpl::Lstm(c) => c.visit_params(f),
        }
        self.head.visit_params(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_cells_forward_backward() {
        let mut rng = SeededRng::new(0);
        for cell in [RecurrentCell::Rnn, RecurrentCell::Gru, RecurrentCell::Lstm] {
            let mut clf = recurrent(cell, 3, 4, ModelScale::Tiny, &mut rng);
            let x = Tensor::uniform(&[2, 3, 6], -1.0, 1.0, &mut rng);
            let y = clf.forward(&x, true);
            assert_eq!(y.dims(), &[2, 4], "{}", cell.name());
            let g = clf.backward(&Tensor::ones(&[2, 4]));
            assert_eq!(g.dims(), x.dims());
        }
    }

    #[test]
    fn names() {
        assert_eq!(RecurrentCell::Gru.name(), "GRU");
        let mut rng = SeededRng::new(1);
        let clf = recurrent(RecurrentCell::Lstm, 2, 2, ModelScale::Tiny, &mut rng);
        assert_eq!(clf.name(), "LSTM");
    }
}
