//! The paper's network architectures.
//!
//! Three families, each in plain / `c` / `d` variants distinguished *only*
//! by their input encoding (§4):
//!
//! | variant | input                | kernel view        | CAM shape |
//! |---------|----------------------|--------------------|-----------|
//! | plain   | `(D, 1, n)`          | `(D, ℓ)` mixes dims| `(n,)`    |
//! | `c`     | `(1, D, n)`          | `(1, ℓ)` per dim   | `(D, n)`  |
//! | `d`     | `C(T)` = `(D, D, n)` | `(D, ℓ, 1)` per row| `(D, n)`  |
//!
//! plus the recurrent baselines (RNN/GRU/LSTM) and MTEX-CNN.

mod cnn;
mod inception;
mod mtex;
mod recurrent;
mod resnet;

pub use cnn::cnn;
pub use inception::{inception_time, InceptionModule};
pub use mtex::{GradCamMaps, MtexCnn};
pub use recurrent::{recurrent, RecurrentCell, RecurrentClassifier};
pub use resnet::resnet;

use dcam_nn::layers::{ConvStrategy, Dense, GlobalAvgPool, Layer, Sequential};
use dcam_nn::{Param, Precision};
use dcam_series::{cube, MultivariateSeries};
use dcam_tensor::Tensor;

/// How a multivariate series is presented to a network (paper §2.1–§4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InputEncoding {
    /// Standard 1-D CNN view: channels = dimensions, one row.
    Cnn,
    /// cCNN view: one channel, rows = dimensions (dimension-independent).
    Ccnn,
    /// dCNN view: the `C(T)` cube of §4.2.
    Dcnn,
    /// Recurrent view: raw `(D, n)` sequence.
    Rnn,
}

impl InputEncoding {
    /// Encodes one series for this input convention.
    pub fn encode(self, series: &MultivariateSeries) -> Tensor {
        match self {
            InputEncoding::Cnn => cube::cnn_input(series),
            InputEncoding::Ccnn => cube::ccnn_input(series),
            InputEncoding::Dcnn => cube::dcnn_input(series),
            InputEncoding::Rnn => cube::rnn_input(series),
        }
    }

    /// Convolution input channels for a `D`-dimensional series.
    pub fn in_channels(self, d: usize) -> usize {
        match self {
            InputEncoding::Cnn | InputEncoding::Dcnn => d,
            InputEncoding::Ccnn => 1,
            InputEncoding::Rnn => d,
        }
    }
}

/// Width presets: `Paper` mirrors the layer widths of §5.2, `Small` scales
/// them down for CPU-budget experiments and tests. Relative comparisons are
/// preserved because *every* competing architecture is scaled identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelScale {
    /// Paper-sized layers (CNN: 64/128/256/256/256 filters, ResNet 64/64/128,
    /// InceptionTime as published).
    Paper,
    /// Reduced widths (~1/8) for CPU experiments.
    Small,
    /// Minimal widths for unit tests.
    Tiny,
}

/// The GAP-classifier families the paper's study trains (each available in
/// every [`InputEncoding`]); the `family=` axis of an [`ArchDescriptor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArchFamily {
    /// Five-layer CNN ([`cnn`]).
    Cnn,
    /// Three-block ResNet ([`resnet`]).
    ResNet,
    /// InceptionTime ([`inception_time`]).
    InceptionTime,
}

/// A machine-readable recipe for reconstructing a [`GapClassifier`]
/// architecture: which constructor to call and with what geometry.
///
/// Descriptors render into a compact `key=value;…` string that travels
/// inside binary checkpoint files ([`dcam_nn::checkpoint::Checkpoint::arch`]),
/// so a process that only has the file — the `dcam-server` model registry
/// performing a hot swap — can rebuild the network and restore the weights
/// into it. [`parse`](ArchDescriptor::parse) inverts
/// [`render`](ArchDescriptor::render) exactly.
///
/// ```
/// use dcam::arch::{ArchDescriptor, ArchFamily, InputEncoding, ModelScale};
///
/// let desc = ArchDescriptor {
///     family: ArchFamily::Cnn,
///     encoding: InputEncoding::Dcnn,
///     dims: 3,
///     classes: 2,
///     scale: ModelScale::Tiny,
/// };
/// let text = desc.render();
/// assert_eq!(text, "family=cnn;enc=dcnn;d=3;classes=2;scale=tiny");
/// assert_eq!(ArchDescriptor::parse(&text).unwrap(), desc);
/// let mut model = desc.build(7);
/// assert_eq!(model.n_classes(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArchDescriptor {
    /// Architecture family (constructor).
    pub family: ArchFamily,
    /// Input encoding (dCAM itself needs [`InputEncoding::Dcnn`]).
    pub encoding: InputEncoding,
    /// Series dimension count `D`.
    pub dims: usize,
    /// Number of output classes.
    pub classes: usize,
    /// Width preset.
    pub scale: ModelScale,
}

impl ArchDescriptor {
    /// Renders the descriptor as its canonical `key=value;…` string.
    pub fn render(&self) -> String {
        let family = match self.family {
            ArchFamily::Cnn => "cnn",
            ArchFamily::ResNet => "resnet",
            ArchFamily::InceptionTime => "inception",
        };
        let enc = match self.encoding {
            InputEncoding::Cnn => "cnn",
            InputEncoding::Ccnn => "ccnn",
            InputEncoding::Dcnn => "dcnn",
            InputEncoding::Rnn => "rnn",
        };
        let scale = match self.scale {
            ModelScale::Paper => "paper",
            ModelScale::Small => "small",
            ModelScale::Tiny => "tiny",
        };
        format!(
            "family={family};enc={enc};d={};classes={};scale={scale}",
            self.dims, self.classes
        )
    }

    /// Parses a descriptor string. Unknown keys are rejected (a descriptor
    /// naming features this build does not understand must not silently
    /// build something else); the error message names the offending part.
    pub fn parse(s: &str) -> Result<Self, String> {
        let (mut family, mut encoding, mut dims, mut classes, mut scale) =
            (None, None, None, None, None);
        for part in s.split(';').filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("descriptor part {part:?} is not key=value"))?;
            match key {
                "family" => {
                    family = Some(match value {
                        "cnn" => ArchFamily::Cnn,
                        "resnet" => ArchFamily::ResNet,
                        "inception" => ArchFamily::InceptionTime,
                        other => return Err(format!("unknown architecture family {other:?}")),
                    })
                }
                "enc" => {
                    encoding = Some(match value {
                        "cnn" => InputEncoding::Cnn,
                        "ccnn" => InputEncoding::Ccnn,
                        "dcnn" => InputEncoding::Dcnn,
                        // Parsed so parse ∘ render is the identity on
                        // every encoding; `build` still rejects it (the
                        // GAP families have no RNN constructor), which
                        // checkpoint loaders surface as a typed error.
                        "rnn" => InputEncoding::Rnn,
                        other => return Err(format!("unknown input encoding {other:?}")),
                    })
                }
                "d" => {
                    dims = Some(
                        value
                            .parse::<usize>()
                            .ok()
                            .filter(|&d| d >= 1)
                            .ok_or_else(|| format!("bad dimension count {value:?}"))?,
                    )
                }
                "classes" => {
                    classes = Some(
                        value
                            .parse::<usize>()
                            .ok()
                            .filter(|&c| c >= 1)
                            .ok_or_else(|| format!("bad class count {value:?}"))?,
                    )
                }
                "scale" => {
                    scale = Some(match value {
                        "paper" => ModelScale::Paper,
                        "small" => ModelScale::Small,
                        "tiny" => ModelScale::Tiny,
                        other => return Err(format!("unknown model scale {other:?}")),
                    })
                }
                other => return Err(format!("unknown descriptor key {other:?}")),
            }
        }
        Ok(ArchDescriptor {
            family: family.ok_or("descriptor missing \"family\"")?,
            encoding: encoding.ok_or("descriptor missing \"enc\"")?,
            dims: dims.ok_or("descriptor missing \"d\"")?,
            classes: classes.ok_or("descriptor missing \"classes\"")?,
            scale: scale.ok_or("descriptor missing \"scale\"")?,
        })
    }

    /// Constructs the (untrained) architecture this descriptor names. The
    /// seed only fixes the throwaway initial weights — every use restores
    /// a checkpoint over them.
    pub fn build(&self, seed: u64) -> GapClassifier {
        let mut rng = dcam_tensor::SeededRng::new(seed);
        match self.family {
            ArchFamily::Cnn => cnn(self.encoding, self.dims, self.classes, self.scale, &mut rng),
            ArchFamily::ResNet => {
                resnet(self.encoding, self.dims, self.classes, self.scale, &mut rng)
            }
            ArchFamily::InceptionTime => {
                inception_time(self.encoding, self.dims, self.classes, self.scale, &mut rng)
            }
        }
    }
}

/// A convolutional classifier with the `features → GAP → dense` shape every
/// CAM-based method requires (§2.2).
///
/// `features` must preserve the spatial extent `(H, W)` of its input (all
/// convolutions are stride-1/"same"), so the class activation map aligns
/// index-for-index with the input series.
pub struct GapClassifier {
    encoding: InputEncoding,
    features: Sequential,
    gap: GlobalAvgPool,
    head: Dense,
    name: String,
    input_dims: Option<usize>,
    precision: Precision,
}

impl GapClassifier {
    /// Assembles a classifier from a feature extractor and a dense head.
    pub fn new(
        name: impl Into<String>,
        encoding: InputEncoding,
        features: Sequential,
        head: Dense,
    ) -> Self {
        GapClassifier {
            encoding,
            features,
            gap: GlobalAvgPool::new(),
            head,
            name: name.into(),
            input_dims: None,
            precision: Precision::F32,
        }
    }

    /// Records the series dimension count `D` this classifier was built
    /// for, enabling submit-time shape validation in the explanation
    /// service. The architecture constructors ([`cnn`], [`resnet`],
    /// [`inception_time`]) all set it.
    pub fn with_input_dims(mut self, d: usize) -> Self {
        self.input_dims = Some(d);
        self
    }

    /// The series dimension count `D` this classifier expects, when known
    /// (recorded by the architecture constructors; `None` for classifiers
    /// assembled directly through [`GapClassifier::new`]).
    pub fn input_dims(&self) -> Option<usize> {
        self.input_dims
    }

    /// The input convention this classifier expects.
    pub fn encoding(&self) -> InputEncoding {
        self.encoding
    }

    /// Architecture name (e.g. `"dResNet"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.head.out_dim()
    }

    /// The dense weights `w^{C_j}_m` connecting GAP features to class
    /// neurons, shape `(classes, n_f)` — the CAM coefficients.
    pub fn class_weights(&self) -> &Tensor {
        self.head.weight()
    }

    /// Evaluation-mode forward returning both the last-conv feature maps
    /// `A(T)` (shape `(N, n_f, H, W)`) and the logits.
    pub fn forward_with_features(&mut self, x: &Tensor) -> (Tensor, Tensor) {
        let features = self.features.forward(x, false);
        let pooled = self.gap.forward(&features, false);
        let logits = self.head.forward(&pooled, false);
        (features, logits)
    }

    /// [`GapClassifier::forward_with_features`] on the allocation-free
    /// inference path: consumes the input batch and recycles every
    /// intermediate activation through `arena` (see
    /// [`dcam_nn::arena::BatchArena`]). The returned feature tensor's
    /// storage should be handed back to the arena once the caller is done
    /// with it.
    pub fn forward_with_features_eval(
        &mut self,
        x: Tensor,
        arena: &mut dcam_nn::BatchArena,
    ) -> (Tensor, Tensor) {
        let features = self.features.forward_eval(x, arena);
        let pooled = self.gap.forward(&features, false);
        let logits = self.head.forward(&pooled, false);
        (features, logits)
    }

    /// Pins every convolution in the feature extractor to `strategy`
    /// (e.g. for A/B benchmarking or to rule out a path); pass
    /// [`ConvStrategy::Auto`] to restore per-geometry selection.
    pub fn set_conv_strategy(&mut self, strategy: ConvStrategy) {
        self.features
            .visit_convs(&mut |conv| conv.set_strategy(strategy));
    }

    /// The execution strategy each convolution would resolve to for an
    /// input plane of `h` rows × `w` samples — `Auto` (and the
    /// `DCAM_CONV_STRATEGY` override) already applied, so the permutation
    /// engine's callers can see which kernels a long-series explanation
    /// actually runs. Layers are visited in feature-extractor order.
    ///
    /// Note `(h, w)` describes the plane *entering each layer*: the GAP
    /// architectures here are all stride-1/"same", so one `(h, w)` holds
    /// for the whole stack.
    pub fn resolved_conv_strategies(&mut self, h: usize, w: usize) -> Vec<ConvStrategy> {
        let mut out = Vec::new();
        self.features
            .visit_convs(&mut |conv| out.push(conv.resolved_strategy(h, w)));
        out
    }

    /// Selects the inference precision for every quantization-capable
    /// layer. Switching to [`Precision::Int8`] only takes effect once
    /// activation scales exist — either from a
    /// [`calibrate_int8`](GapClassifier::calibrate_int8) pass or a
    /// checkpoint restore; until then the model keeps serving f32 answers.
    pub fn set_precision(&mut self, precision: Precision) {
        self.precision = precision;
        self.visit_quant(&mut |q| q.precision = precision);
    }

    /// The selected inference precision (see
    /// [`set_precision`](GapClassifier::set_precision)).
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// True when every quantization-capable layer carries a calibrated
    /// activation scale, i.e. the int8 path can engage.
    pub fn is_calibrated(&mut self) -> bool {
        let mut any = false;
        let mut all = true;
        self.visit_quant(&mut |q| {
            any = true;
            all &= q.act_scale.is_some();
        });
        any && all
    }

    /// Calibrates the int8 path on a representative encoded batch `x`
    /// (shape `(N, …)` in this classifier's input encoding) and switches
    /// the model to [`Precision::Int8`]: one f32 recording forward latches
    /// each layer's per-tensor activation scale.
    pub fn calibrate_int8(&mut self, x: &Tensor) {
        self.visit_quant(&mut |q| {
            q.precision = Precision::Int8;
            q.calibrating = true;
            q.absmax = 0.0;
        });
        let _ = self.forward(x, false);
        self.visit_quant(&mut |q| q.finish_calibration());
        self.precision = Precision::Int8;
    }

    /// [`calibrate_int8`](GapClassifier::calibrate_int8) on a slice of
    /// representative series, encoded and stacked with this classifier's
    /// input encoding. Panics on an empty slice.
    pub fn calibrate_int8_on(&mut self, series: &[MultivariateSeries]) {
        assert!(!series.is_empty(), "calibration needs at least one series");
        let mut data = Vec::new();
        let mut per_sample_dims = Vec::new();
        for s in series {
            let x = self.encoding.encode(s);
            per_sample_dims = x.dims().to_vec();
            data.extend_from_slice(x.data());
        }
        let mut dims = vec![series.len()];
        dims.extend_from_slice(&per_sample_dims);
        let xb = Tensor::from_vec(data, &dims).expect("calibration batch");
        self.calibrate_int8(&xb);
    }

    /// [`calibrate_int8`](GapClassifier::calibrate_int8) on a seeded
    /// synthetic batch — the fallback when no representative data is
    /// available (e.g. a served model switched to int8 without a
    /// calibration set). Values are standard-normal, matching z-normalized
    /// series; the same `(series_len, seed)` always produces the same
    /// scales, so replicas calibrated independently agree.
    ///
    /// Requires the classifier to know its input dimension count
    /// ([`GapClassifier::input_dims`]); panics otherwise.
    pub fn calibrate_int8_synthetic(&mut self, series_len: usize, seed: u64) {
        let d = self
            .input_dims
            .expect("synthetic calibration needs input_dims");
        let mut rng = dcam_tensor::SeededRng::new(seed);
        let samples: Vec<MultivariateSeries> = (0..4)
            .map(|_| {
                let rows: Vec<Vec<f32>> = (0..d)
                    .map(|_| (0..series_len).map(|_| rng.normal()).collect())
                    .collect();
                MultivariateSeries::from_rows(&rows)
            })
            .collect();
        self.calibrate_int8_on(&samples);
    }

    /// Encodes one series and returns its logits (batch of one).
    pub fn logits_for(&mut self, series: &MultivariateSeries) -> Tensor {
        let x = self.encoding.encode(series);
        let mut dims = vec![1usize];
        dims.extend_from_slice(x.dims());
        let xb = x.reshape(&dims).expect("batch of one");
        self.forward(&xb, false)
    }
}

impl Layer for GapClassifier {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let f = self.features.forward(x, train);
        let p = self.gap.forward(&f, train);
        self.head.forward(&p, train)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let g = self.head.backward(grad_out);
        let g = self.gap.backward(&g);
        self.features.backward(&g)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.features.visit_params(f);
        self.gap.visit_params(f);
        self.head.visit_params(f);
    }

    fn visit_buffers(&mut self, f: &mut dyn FnMut(&mut Vec<f32>)) {
        self.features.visit_buffers(f);
        self.gap.visit_buffers(f);
        self.head.visit_buffers(f);
    }

    fn visit_convs(&mut self, f: &mut dyn FnMut(&mut dcam_nn::layers::Conv2dRows)) {
        self.features.visit_convs(f);
    }

    fn visit_quant(&mut self, f: &mut dyn FnMut(&mut dcam_nn::QuantState)) {
        self.features.visit_quant(f);
        self.head.visit_quant(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcam_tensor::SeededRng;

    #[test]
    fn arch_descriptor_parse_inverts_render() {
        for family in [
            ArchFamily::Cnn,
            ArchFamily::ResNet,
            ArchFamily::InceptionTime,
        ] {
            for encoding in [
                InputEncoding::Cnn,
                InputEncoding::Ccnn,
                InputEncoding::Dcnn,
                InputEncoding::Rnn, // renders and parses, but does not build
            ] {
                let desc = ArchDescriptor {
                    family,
                    encoding,
                    dims: 4,
                    classes: 3,
                    scale: ModelScale::Tiny,
                };
                assert_eq!(ArchDescriptor::parse(&desc.render()), Ok(desc));
            }
        }
    }

    #[test]
    fn arch_descriptor_rejects_garbage() {
        for bad in [
            "",
            "family=cnn",
            "family=vit;enc=dcnn;d=3;classes=2;scale=tiny",
            "family=cnn;enc=dcnn;d=0;classes=2;scale=tiny",
            "family=cnn;enc=dcnn;d=3;classes=2;scale=tiny;extra=1",
            "family=cnn;enc=lstm;d=3;classes=2;scale=tiny",
            "notakv",
        ] {
            assert!(ArchDescriptor::parse(bad).is_err(), "{bad:?} must fail");
        }
        // An RNN encoding parses (so parse ∘ render stays the identity)
        // but cannot build a GAP classifier — the checkpoint loaders
        // catch this panic and surface a typed error.
        let rnn = ArchDescriptor::parse("family=cnn;enc=rnn;d=3;classes=2;scale=tiny").unwrap();
        assert!(std::panic::catch_unwind(|| rnn.build(0)).is_err());
    }

    #[test]
    fn auto_strategy_surfaces_fft_on_long_series() {
        // InceptionTime/Small carries a 15-tap branch kernel — past the
        // fft heuristic's tap floor — so on a long series the Auto
        // resolution visible through `resolved_conv_strategies` must
        // include the fft path, while a short series stays on O(W·ℓ)
        // paths throughout.
        let mut rng = SeededRng::new(3);
        let mut m = inception_time(InputEncoding::Dcnn, 3, 2, ModelScale::Small, &mut rng);
        let long = m.resolved_conv_strategies(3, 32768);
        let short = m.resolved_conv_strategies(3, 128);
        assert_eq!(long.len(), short.len());
        assert!(!long.is_empty());
        match std::env::var("DCAM_CONV_STRATEGY").as_deref() {
            // Under the CI matrix's global pin the heuristic is not
            // reachable; every layer must report the pinned strategy.
            Ok(v) if v != "auto" => {
                let pinned = ConvStrategy::parse(v);
                assert!(long.iter().chain(&short).all(|&s| s == pinned));
            }
            _ => {
                assert!(
                    long.contains(&ConvStrategy::Fft),
                    "long series must route at least one conv to fft: {long:?}"
                );
                assert!(
                    !short.contains(&ConvStrategy::Fft),
                    "short series must not use fft: {short:?}"
                );
            }
        }
        // A per-layer pin outranks both the heuristic and the env override.
        m.set_conv_strategy(ConvStrategy::Direct);
        assert!(m
            .resolved_conv_strategies(3, 32768)
            .iter()
            .all(|&s| s == ConvStrategy::Direct));
    }

    #[test]
    fn arch_descriptor_builds_working_model() {
        let desc = ArchDescriptor {
            family: ArchFamily::Cnn,
            encoding: InputEncoding::Dcnn,
            dims: 3,
            classes: 2,
            scale: ModelScale::Tiny,
        };
        let mut m = desc.build(1);
        assert_eq!(m.input_dims(), Some(3));
        assert_eq!(m.n_classes(), 2);
        assert_eq!(m.name(), "dCNN");
        let s = MultivariateSeries::from_rows(&[vec![0.1; 10], vec![0.2; 10], vec![0.3; 10]]);
        assert_eq!(m.logits_for(&s).dims(), &[1, 2]);
    }

    #[test]
    fn int8_logits_track_f32_after_calibration() {
        let mut rng = SeededRng::new(11);
        let mut m = cnn(InputEncoding::Dcnn, 3, 2, ModelScale::Tiny, &mut rng);
        let s = MultivariateSeries::from_rows(&[
            (0..24).map(|i| (i as f32 * 0.4).sin()).collect(),
            (0..24).map(|i| (i as f32 * 0.15).cos()).collect(),
            (0..24)
                .map(|i| if i % 5 == 0 { 0.8 } else { -0.2 })
                .collect(),
        ]);
        let want = m.logits_for(&s);
        assert_eq!(m.precision(), Precision::F32);
        assert!(!m.is_calibrated());

        m.calibrate_int8_synthetic(24, 7);
        assert_eq!(m.precision(), Precision::Int8);
        assert!(m.is_calibrated());
        let got = m.logits_for(&s);
        for (a, b) in got.data().iter().zip(want.data()) {
            assert!((a - b).abs() < 0.15, "int8 logit {a} vs f32 {b}");
        }

        // Switching back to f32 restores exact agreement; the calibrated
        // scales stay latched for a later int8 re-engage.
        m.set_precision(Precision::F32);
        assert!(m.logits_for(&s).allclose(&want, 1e-6));
        assert!(m.is_calibrated());
    }

    #[test]
    fn encoding_channels() {
        assert_eq!(InputEncoding::Cnn.in_channels(5), 5);
        assert_eq!(InputEncoding::Ccnn.in_channels(5), 1);
        assert_eq!(InputEncoding::Dcnn.in_channels(5), 5);
    }

    #[test]
    fn gap_classifier_logits_shape() {
        let mut rng = SeededRng::new(0);
        let clf = cnn(InputEncoding::Cnn, 3, 4, ModelScale::Tiny, &mut rng);
        let mut clf = clf;
        let s = MultivariateSeries::from_rows(&[vec![0.0; 16], vec![1.0; 16], vec![2.0; 16]]);
        let logits = clf.logits_for(&s);
        assert_eq!(logits.dims(), &[1, 4]);
    }

    #[test]
    fn features_preserve_spatial_extent() {
        let mut rng = SeededRng::new(1);
        for enc in [InputEncoding::Cnn, InputEncoding::Ccnn, InputEncoding::Dcnn] {
            let mut clf = cnn(enc, 4, 2, ModelScale::Tiny, &mut rng);
            let s = MultivariateSeries::from_rows(&[
                vec![0.1; 12],
                vec![0.2; 12],
                vec![0.3; 12],
                vec![0.4; 12],
            ]);
            let x = enc.encode(&s);
            let mut dims = vec![1usize];
            dims.extend_from_slice(x.dims());
            let xb = x.reshape(&dims).unwrap();
            let (f, _) = clf.forward_with_features(&xb);
            let expect_h = match enc {
                InputEncoding::Cnn => 1,
                _ => 4,
            };
            assert_eq!(f.dims()[2], expect_h, "{enc:?} H");
            assert_eq!(f.dims()[3], 12, "{enc:?} W");
        }
    }
}
