//! The ResNet family: ResNet / cResNet / dResNet (paper §2.1, §5.2).
//!
//! Three residual blocks of three convolutions each (kernels 8, 5, 3), with
//! batch norm + ReLU, projection shortcuts on channel changes, then
//! GAP + dense. Paper filter counts: 64 for the first two blocks, 128 for
//! the last.

use super::{GapClassifier, InputEncoding, ModelScale};
use dcam_nn::layers::{BatchNorm, Conv2dRows, Dense, Relu, Residual, Sequential};
use dcam_tensor::SeededRng;

fn block_filters(scale: ModelScale) -> [usize; 3] {
    match scale {
        ModelScale::Paper => [64, 64, 128],
        ModelScale::Small => [16, 16, 32],
        ModelScale::Tiny => [6, 6, 8],
    }
}

fn kernel_sizes(scale: ModelScale) -> [usize; 3] {
    match scale {
        ModelScale::Paper | ModelScale::Small => [8, 5, 3],
        ModelScale::Tiny => [5, 3, 3],
    }
}

/// One residual block: three `conv → BN → ReLU` stages plus a shortcut
/// (projection 1×1 conv + BN when the channel count changes).
fn residual_block(c_in: usize, c_out: usize, kernels: [usize; 3], rng: &mut SeededRng) -> Residual {
    let mut main = Sequential::new();
    let mut c = c_in;
    for (i, &k) in kernels.iter().enumerate() {
        main.add(Box::new(Conv2dRows::same(c, c_out, k, rng)));
        main.add(Box::new(BatchNorm::new(c_out)));
        // The final ReLU is applied after the residual sum, as in the
        // reference architecture; inner stages keep theirs.
        if i + 1 < kernels.len() {
            main.add(Box::new(Relu::new()));
        }
        c = c_out;
    }
    if c_in == c_out {
        Residual::identity(main)
    } else {
        let mut shortcut = Sequential::new();
        shortcut.add(Box::new(Conv2dRows::new(c_in, c_out, 1, 1, 0, rng)));
        shortcut.add(Box::new(BatchNorm::new(c_out)));
        Residual::with_shortcut(main, shortcut)
    }
}

/// Builds a ResNet/cResNet/dResNet classifier (selected by `encoding`).
pub fn resnet(
    encoding: InputEncoding,
    n_dims: usize,
    n_classes: usize,
    scale: ModelScale,
    rng: &mut SeededRng,
) -> GapClassifier {
    assert_ne!(
        encoding,
        InputEncoding::Rnn,
        "use `recurrent` for RNN baselines"
    );
    let filters = block_filters(scale);
    let kernels = kernel_sizes(scale);
    let mut features = Sequential::new();
    let mut c_in = encoding.in_channels(n_dims);
    for &c_out in &filters {
        features.add(Box::new(residual_block(c_in, c_out, kernels, rng)));
        features.add(Box::new(Relu::new()));
        c_in = c_out;
    }
    let head = Dense::new(c_in, n_classes, rng);
    let name = match encoding {
        InputEncoding::Cnn => "ResNet",
        InputEncoding::Ccnn => "cResNet",
        InputEncoding::Dcnn => "dResNet",
        InputEncoding::Rnn => unreachable!(),
    };
    GapClassifier::new(name, encoding, features, head).with_input_dims(n_dims)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcam_nn::layers::Layer;
    use dcam_tensor::Tensor;

    #[test]
    fn dresnet_forward_backward_smoke() {
        let mut rng = SeededRng::new(0);
        let mut clf = resnet(InputEncoding::Dcnn, 3, 2, ModelScale::Tiny, &mut rng);
        let x = Tensor::uniform(&[2, 3, 3, 12], -1.0, 1.0, &mut rng);
        let y = clf.forward(&x, true);
        assert_eq!(y.dims(), &[2, 2]);
        let g = clf.backward(&Tensor::ones(&[2, 2]));
        assert_eq!(g.dims(), x.dims());
    }

    #[test]
    fn width_preserved_through_blocks() {
        let mut rng = SeededRng::new(1);
        let mut clf = resnet(InputEncoding::Ccnn, 4, 2, ModelScale::Tiny, &mut rng);
        let x = Tensor::uniform(&[1, 1, 4, 17], -1.0, 1.0, &mut rng);
        let (f, _) = clf.forward_with_features(&x);
        assert_eq!(f.dims()[2..], [4, 17]);
    }

    #[test]
    fn resnet_larger_than_cnn_tiny() {
        // Sanity on composition: ResNet tiny has 3 blocks of 3 convs.
        let mut rng = SeededRng::new(2);
        let mut r = resnet(InputEncoding::Cnn, 4, 2, ModelScale::Tiny, &mut rng);
        assert!(r.param_count() > 500);
    }
}
