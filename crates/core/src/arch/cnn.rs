//! The CNN family: CNN / cCNN / dCNN (paper §2.1, §4.2, §5.2).
//!
//! Five convolutional layers with batch norm and ReLU, a GAP layer and a
//! dense classifier. The paper uses filter counts (64, 128, 256, 256, 256)
//! and kernel size 3; the `Small`/`Tiny` presets shrink widths for CPU runs.

use super::{GapClassifier, InputEncoding, ModelScale};
use dcam_nn::layers::{BatchNorm, Conv2dRows, Dense, Relu, Sequential};
use dcam_tensor::SeededRng;

fn filter_plan(scale: ModelScale) -> Vec<usize> {
    match scale {
        ModelScale::Paper => vec![64, 128, 256, 256, 256],
        ModelScale::Small => vec![16, 24, 32, 32],
        ModelScale::Tiny => vec![6, 8],
    }
}

/// Builds a CNN/cCNN/dCNN classifier (selected by `encoding`) for a
/// `D = n_dims` series and `n_classes` outputs.
pub fn cnn(
    encoding: InputEncoding,
    n_dims: usize,
    n_classes: usize,
    scale: ModelScale,
    rng: &mut SeededRng,
) -> GapClassifier {
    assert_ne!(
        encoding,
        InputEncoding::Rnn,
        "use `recurrent` for RNN baselines"
    );
    let kernel = 3;
    let mut features = Sequential::new();
    let mut c_in = encoding.in_channels(n_dims);
    let plan = filter_plan(scale);
    for &c_out in &plan {
        features.add(Box::new(Conv2dRows::same(c_in, c_out, kernel, rng)));
        features.add(Box::new(BatchNorm::new(c_out)));
        features.add(Box::new(Relu::new()));
        c_in = c_out;
    }
    let head = Dense::new(c_in, n_classes, rng);
    let name = match encoding {
        InputEncoding::Cnn => "CNN",
        InputEncoding::Ccnn => "cCNN",
        InputEncoding::Dcnn => "dCNN",
        InputEncoding::Rnn => unreachable!(),
    };
    GapClassifier::new(name, encoding, features, head).with_input_dims(n_dims)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcam_nn::layers::Layer;
    use dcam_tensor::Tensor;

    #[test]
    fn dcnn_forward_backward_smoke() {
        let mut rng = SeededRng::new(0);
        let mut clf = cnn(InputEncoding::Dcnn, 3, 2, ModelScale::Tiny, &mut rng);
        let x = Tensor::uniform(&[2, 3, 3, 10], -1.0, 1.0, &mut rng);
        let y = clf.forward(&x, true);
        assert_eq!(y.dims(), &[2, 2]);
        let g = clf.backward(&Tensor::ones(&[2, 2]));
        assert_eq!(g.dims(), x.dims());
    }

    #[test]
    fn scales_order_parameter_counts() {
        let mut rng = SeededRng::new(1);
        let mut tiny = cnn(InputEncoding::Cnn, 4, 2, ModelScale::Tiny, &mut rng);
        let mut small = cnn(InputEncoding::Cnn, 4, 2, ModelScale::Small, &mut rng);
        assert!(tiny.param_count() < small.param_count());
    }

    #[test]
    fn ccnn_has_single_input_channel() {
        let mut rng = SeededRng::new(2);
        let mut clf = cnn(InputEncoding::Ccnn, 5, 3, ModelScale::Tiny, &mut rng);
        // (N, 1, D, W) must be accepted.
        let x = Tensor::uniform(&[1, 1, 5, 9], -1.0, 1.0, &mut rng);
        let y = clf.forward(&x, false);
        assert_eq!(y.dims(), &[1, 3]);
    }
}
