//! MTEX-CNN baseline (Assaf et al., ICDM 2019) with grad-CAM explanations,
//! as used in the paper's comparison (§2.3, §5.2).
//!
//! Two blocks:
//!
//! 1. a *per-dimension* 2-D convolution block (kernels slide along time on
//!    each dimension independently, like cCNN), down-sampling with stride 2
//!    twice, followed by a 1×1 convolution that collapses the feature maps
//!    to one map per dimension;
//! 2. a *1-D* convolution block that treats the `D` collapsed maps as
//!    channels (this is where dimensions finally mix), followed by a dense
//!    classifier over the flattened activations (no GAP — hence grad-CAM
//!    rather than CAM).
//!
//! Explanations (per the MTEX paper): grad-CAM on the block-1 output gives
//! the per-dimension saliency map; grad-CAM on the block-2 output gives the
//! temporal saliency. The paper's finding that this architecture misses
//! features *spanning* dimensions follows from block 1 being
//! dimension-independent — our reproduction preserves exactly that
//! structure.

use dcam_nn::layers::{Conv2dRows, Dense, Dropout, Layer, Relu};
use dcam_nn::Param;
use dcam_tensor::{SeededRng, Tensor};

/// Saliency maps extracted from MTEX-CNN via grad-CAM.
#[derive(Debug, Clone)]
pub struct GradCamMaps {
    /// Per-dimension saliency `(D, n)` (upsampled back to input length).
    pub per_dimension: Tensor,
    /// Temporal saliency of length `n` (upsampled).
    pub temporal: Vec<f32>,
    /// Combined map: per-dimension saliency modulated by temporal saliency —
    /// the map the paper scores as "MTEX-grad" in Table 3.
    pub combined: Tensor,
}

/// The MTEX-CNN classifier.
pub struct MtexCnn {
    conv_a: Conv2dRows, // (1 -> f1), stride 2, per-dimension
    relu_a: Relu,
    conv_b: Conv2dRows, // (f1 -> f2), stride 2, per-dimension  [grad-CAM #1]
    relu_b: Relu,
    drop_b: Dropout,
    conv_1x1: Conv2dRows, // (f2 -> 1): one map per dimension
    relu_1x1: Relu,
    conv_c: Conv2dRows, // (D -> f3) 1-D over time               [grad-CAM #2]
    relu_c: Relu,
    drop_c: Dropout,
    head: Dense,
    n_dims: usize,
    n_len: usize,
    w2: usize,
    w3: usize,
    f3: usize,
    cache_shapes: Option<usize>, // batch size of last forward
}

impl MtexCnn {
    /// Builds MTEX-CNN for `D = n_dims` series of length `n_len` with
    /// `n_classes` outputs. The dense head's width depends on `n_len`, so
    /// unlike the GAP architectures this model is length-specific (as is
    /// the original).
    pub fn new(n_dims: usize, n_len: usize, n_classes: usize, rng: &mut SeededRng) -> Self {
        assert!(n_len >= 16, "MTEX-CNN needs series of at least 16 points");
        let (f1, f2, f3) = (8, 16, 32);
        let conv_a = Conv2dRows::new(1, f1, 8, 2, 4, rng);
        let w1 = conv_a.out_width(n_len);
        let conv_b = Conv2dRows::new(f1, f2, 6, 2, 3, rng);
        let w2 = conv_b.out_width(w1);
        let conv_1x1 = Conv2dRows::new(f2, 1, 1, 1, 0, rng);
        let conv_c = Conv2dRows::new(n_dims, f3, 4, 1, 2, rng);
        let w3 = conv_c.out_width(w2);
        let head = Dense::new(f3 * w3, n_classes, rng);
        MtexCnn {
            conv_a,
            relu_a: Relu::new(),
            conv_b,
            relu_b: Relu::new(),
            drop_b: Dropout::new(0.4, rng.fork(1).uniform().to_bits() as u64),
            conv_1x1,
            relu_1x1: Relu::new(),
            conv_c,
            relu_c: Relu::new(),
            drop_c: Dropout::new(0.4, rng.fork(2).uniform().to_bits() as u64),
            head,
            n_dims,
            n_len,
            w2,
            w3,
            f3,
            cache_shapes: None,
        }
    }

    /// Input length this model was built for.
    pub fn series_len(&self) -> usize {
        self.n_len
    }

    /// Number of input dimensions.
    pub fn n_dims(&self) -> usize {
        self.n_dims
    }

    /// Block-1 forward up to the per-dimension feature maps `(N, f2, D, w2)`.
    fn block1(&mut self, x: &Tensor, train: bool) -> Tensor {
        let a = self.conv_a.forward(x, train);
        let a = self.relu_a.forward(&a, train);
        let b = self.conv_b.forward(&a, train);
        let b = self.relu_b.forward(&b, train);
        self.drop_b.forward(&b, train)
    }

    /// Block-2 forward from block-1 features to logits. Also returns the
    /// block-2 feature maps `(N, f3, 1, w3)`.
    fn block2(&mut self, b1: &Tensor, train: bool) -> (Tensor, Tensor) {
        let n = b1.dims()[0];
        let collapsed = self.conv_1x1.forward(b1, train); // (N, 1, D, w2)
        let collapsed = self.relu_1x1.forward(&collapsed, train);
        // Reinterpret: dimensions become channels for the 1-D block.
        let reshaped = collapsed
            .reshape(&[n, self.n_dims, 1, self.w2])
            .expect("mtex reshape");
        let c = self.conv_c.forward(&reshaped, train);
        let c = self.relu_c.forward(&c, train);
        let c = self.drop_c.forward(&c, train);
        let flat = c.reshape(&[n, self.f3 * self.w3]).expect("mtex flatten");
        let logits = self.head.forward(&flat, train);
        (logits, c)
    }

    /// Grad-CAM maps for `class` on a single series input `(1, D, n)`
    /// encoded like cCNN.
    ///
    /// Runs a train-mode forward (dropout disabled by construction: grad-CAM
    /// is computed in eval semantics by temporarily zeroing drop rates is
    /// not needed because `forward(_, true)` is only used to populate
    /// caches; we instead run with `train = true` on all layers but the
    /// dropouts, which grad-CAM treats as identity).
    pub fn grad_cam(&mut self, x: &Tensor, class: usize) -> GradCamMaps {
        assert_eq!(
            x.dims(),
            &[1, 1, self.n_dims, self.n_len],
            "grad_cam expects one cCNN-encoded sample"
        );
        // Forward with caches. Dropout must act as identity: run eval for
        // dropout layers by draining them from the path (their train=false
        // behaviour is identity, so call with train=false).
        let a = self.conv_a.forward(x, true);
        let a = self.relu_a.forward(&a, true);
        let b = self.conv_b.forward(&a, true);
        let b_act = self.relu_b.forward(&b, true); // (1, f2, D, w2)
        let (logits, c_act) = {
            let collapsed = self.conv_1x1.forward(&b_act, true);
            let collapsed = self.relu_1x1.forward(&collapsed, true);
            let reshaped = collapsed
                .reshape(&[1, self.n_dims, 1, self.w2])
                .expect("mtex reshape");
            let c = self.conv_c.forward(&reshaped, true);
            let c_act = self.relu_c.forward(&c, true); // (1, f3, 1, w3)
            let flat = c_act.reshape(&[1, self.f3 * self.w3]).expect("flatten");
            let logits = self.head.forward(&flat, true);
            (logits, c_act)
        };
        let k = logits.dims()[1];
        assert!(class < k, "class out of range");

        // Backward from the class score (pre-softmax, as in grad-CAM).
        let mut g = Tensor::zeros(&[1, k]);
        g.data_mut()[class] = 1.0;
        let g = self.head.backward(&g);
        let g = g.reshape(&[1, self.f3, 1, self.w3]).expect("unflatten");
        let g_c = self.relu_c.backward(&g); // gradient at block-2 conv output
                                            // Continue to block-1 features.
        let g = self.conv_c.backward(&g_c);
        let g = g.reshape(&[1, 1, self.n_dims, self.w2]).expect("unshape");
        let g = self.relu_1x1.backward(&g);
        let g_b = self.conv_1x1.backward(&g); // gradient at block-1 output (1, f2, D, w2)
                                              // Drain remaining caches (keeps the layer contract tidy).
        let g = self.relu_b.backward(&g_b);
        let g = self.conv_b.backward(&g);
        let g = self.relu_a.backward(&g);
        let _ = self.conv_a.backward(&g);

        // grad-CAM #1: per-dimension map from block-1 features.
        let per_dim_small = gradcam_map(&b_act, &g_b, self.n_dims, self.w2);
        let per_dimension = upsample_rows(&per_dim_small, self.n_len);
        // grad-CAM #2: temporal map from block-2 features (H = 1).
        let temporal_small = gradcam_map(&c_act, &g_c, 1, self.w3);
        let temporal = upsample_vec(temporal_small.data(), self.n_len);
        // Combined: dimension saliency modulated by temporal saliency.
        let mut combined = per_dimension.clone();
        for d in 0..self.n_dims {
            let row = combined.row_mut(d).expect("row");
            for (v, t) in row.iter_mut().zip(&temporal) {
                *v *= t;
            }
        }
        GradCamMaps {
            per_dimension,
            temporal,
            combined,
        }
    }
}

/// grad-CAM over `(1, C, H, W)` activations/gradients: channel weights are
/// the spatially averaged gradients; the map is `ReLU(Σ_m α_m A_m)`.
fn gradcam_map(act: &Tensor, grad: &Tensor, h: usize, w: usize) -> Tensor {
    let c = act.dims()[1];
    assert_eq!(act.dims(), grad.dims());
    let plane = h * w;
    let mut alphas = vec![0.0f32; c];
    for (m, alpha) in alphas.iter_mut().enumerate() {
        let base = m * plane;
        *alpha = grad.data()[base..base + plane].iter().sum::<f32>() / plane as f32;
    }
    let mut map = Tensor::zeros(&[h, w]);
    for (m, &alpha) in alphas.iter().enumerate() {
        let base = m * plane;
        for (o, &a) in map
            .data_mut()
            .iter_mut()
            .zip(&act.data()[base..base + plane])
        {
            *o += alpha * a;
        }
    }
    map.map(|v| v.max(0.0))
}

/// Nearest-neighbour upsample of every row of a `(D, w)` map to length `n`.
fn upsample_rows(map: &Tensor, n: usize) -> Tensor {
    let d = map.dims()[0];
    let w = map.dims()[1];
    let mut out = Tensor::zeros(&[d, n]);
    for di in 0..d {
        let row = map.row(di).expect("row").to_vec();
        let dst = out.row_mut(di).expect("row");
        for (t, v) in dst.iter_mut().enumerate() {
            let src = (t * w) / n;
            *v = row[src.min(w - 1)];
        }
    }
    out
}

fn upsample_vec(v: &[f32], n: usize) -> Vec<f32> {
    let w = v.len();
    (0..n).map(|t| v[((t * w) / n).min(w - 1)]).collect()
}

impl Layer for MtexCnn {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        assert_eq!(x.dims()[1], 1, "MTEX expects cCNN-encoded input (N,1,D,n)");
        assert_eq!(x.dims()[2], self.n_dims);
        assert_eq!(x.dims()[3], self.n_len, "MTEX is length-specific");
        self.cache_shapes = Some(x.dims()[0]);
        let b1 = self.block1(x, train);
        let (logits, _) = self.block2(&b1, train);
        logits
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let n = self.cache_shapes.take().expect("backward without forward");
        let g = self.head.backward(grad_out);
        let g = g.reshape(&[n, self.f3, 1, self.w3]).expect("unflatten");
        let g = self.drop_c.backward(&g);
        let g = self.relu_c.backward(&g);
        let g = self.conv_c.backward(&g);
        let g = g.reshape(&[n, 1, self.n_dims, self.w2]).expect("unshape");
        let g = self.relu_1x1.backward(&g);
        let g = self.conv_1x1.backward(&g);
        let g = self.drop_b.backward(&g);
        let g = self.relu_b.backward(&g);
        let g = self.conv_b.backward(&g);
        let g = self.relu_a.backward(&g);
        self.conv_a.backward(&g)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.conv_a.visit_params(f);
        self.conv_b.visit_params(f);
        self.conv_1x1.visit_params(f);
        self.conv_c.visit_params(f);
        self.head.visit_params(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_backward_smoke() {
        let mut rng = SeededRng::new(0);
        let mut m = MtexCnn::new(4, 32, 3, &mut rng);
        let x = Tensor::uniform(&[2, 1, 4, 32], -1.0, 1.0, &mut rng);
        let y = m.forward(&x, true);
        assert_eq!(y.dims(), &[2, 3]);
        let g = m.backward(&Tensor::ones(&[2, 3]));
        assert_eq!(g.dims(), x.dims());
    }

    #[test]
    fn rejects_wrong_length() {
        let mut rng = SeededRng::new(1);
        let mut m = MtexCnn::new(4, 32, 2, &mut rng);
        let x = Tensor::zeros(&[1, 1, 4, 40]);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            m.forward(&x, false);
        }));
        assert!(r.is_err());
    }

    #[test]
    fn grad_cam_shapes() {
        let mut rng = SeededRng::new(2);
        let mut m = MtexCnn::new(3, 48, 2, &mut rng);
        let x = Tensor::uniform(&[1, 1, 3, 48], -1.0, 1.0, &mut rng);
        let maps = m.grad_cam(&x, 1);
        assert_eq!(maps.per_dimension.dims(), &[3, 48]);
        assert_eq!(maps.temporal.len(), 48);
        assert_eq!(maps.combined.dims(), &[3, 48]);
        // grad-CAM maps are ReLU'd: non-negative.
        assert!(maps.per_dimension.data().iter().all(|&v| v >= 0.0));
        assert!(maps.temporal.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn upsample_preserves_values() {
        let map = Tensor::from_vec(vec![1.0, 2.0], &[1, 2]).unwrap();
        let up = upsample_rows(&map, 4);
        assert_eq!(up.data(), &[1.0, 1.0, 2.0, 2.0]);
        assert_eq!(upsample_vec(&[3.0], 3), vec![3.0, 3.0, 3.0]);
    }
}
