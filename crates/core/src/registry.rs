//! Named, versioned model serving: the [`ModelRegistry`].
//!
//! A [`DcamService`] is one model behind one
//! worker pool. Production serving needs *several* — the paper trains one
//! CNN/ResNet/InceptionTime variant per dataset, and explanations are only
//! trustworthy relative to the model that produced them — so the registry
//! maps **names** to independently running services:
//!
//! * every entry owns its own worker pool,
//!   [`DcamBatcher`](crate::dcam_many::DcamBatcher) flush loop, queue
//!   lanes and [`ServiceStats`] — traffic to one model never queues
//!   behind another;
//! * entries are **versioned**: [`ModelRegistry::swap`] loads a binary
//!   checkpoint file ([`dcam_nn::checkpoint`]), rebuilds the architecture
//!   from the descriptor stored in the file, probe-validates it via the
//!   [`DcamService::spawn_with_recovery`] machinery, and only then replaces
//!   the entry — the old workers drain gracefully *after* the name already
//!   points at the new model, so a hot swap never turns requests away;
//! * while one model swaps, every other model keeps serving untouched —
//!   the registry lock is only held for map bookkeeping, never across
//!   model construction or draining.
//!
//! The HTTP layer (`dcam-server`) routes per-request by model name and
//! exposes `GET /v1/models` + `POST /v1/models/{name}/swap` on top of this
//! module.
//!
//! # Example
//!
//! ```
//! use dcam::arch::{ArchDescriptor, ArchFamily, InputEncoding, ModelScale};
//! use dcam::registry::{checkpoint_model, ModelRegistry};
//! use dcam::service::{DcamService, ServiceConfig};
//! use dcam::DcamConfig;
//!
//! let desc = ArchDescriptor {
//!     family: ArchFamily::Cnn,
//!     encoding: InputEncoding::Dcnn,
//!     dims: 3,
//!     classes: 2,
//!     scale: ModelScale::Tiny,
//! };
//! let mut cfg = ServiceConfig::default();
//! cfg.batcher.many.dcam = DcamConfig { k: 4, only_correct: false, ..Default::default() };
//!
//! // Persist a "trained" model, then serve it by name.
//! let dir = std::env::temp_dir().join("dcam-registry-doc");
//! std::fs::create_dir_all(&dir).unwrap();
//! let path = dir.join("starlight.ckpt");
//! dcam_nn::checkpoint::save_binary(&checkpoint_model(&mut desc.build(7), &desc), &path).unwrap();
//!
//! let registry = ModelRegistry::new();
//! registry
//!     .register_from_checkpoint("starlight", &path, cfg, 1)
//!     .unwrap();
//! assert_eq!(registry.names(), vec!["starlight".to_string()]);
//! let handle = registry.handle("starlight").unwrap();
//! # drop(handle);
//! registry.shutdown_all();
//! # std::fs::remove_file(&path).ok();
//! ```

use crate::arch::{ArchDescriptor, GapClassifier};
use crate::service::{replicate_model, DcamService, ServiceConfig, ServiceHandle, ServiceStats};
use dcam_nn::checkpoint::{self, Checkpoint};
use dcam_nn::Precision;
use std::collections::HashMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::{Mutex, MutexGuard};

/// Longest model name the registry accepts. Names travel in URL path
/// segments and log lines; anything longer is a client bug.
pub const MAX_MODEL_NAME: usize = 64;

/// Everything that can go wrong talking to a [`ModelRegistry`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// No model is registered under this name.
    UnknownModel {
        /// The name that was looked up.
        name: String,
        /// Names currently registered (sorted), for the error message.
        known: Vec<String>,
    },
    /// [`ModelRegistry::register`] on a name that is already taken — use
    /// [`ModelRegistry::swap`] to replace a live model.
    DuplicateModel {
        /// The contested name.
        name: String,
    },
    /// The model name is not acceptable (empty, oversized, or containing
    /// characters outside `[A-Za-z0-9._-]`).
    InvalidName {
        /// The offending name (possibly truncated for display).
        name: String,
        /// Why it was rejected.
        reason: String,
    },
    /// A request without a model name reached a registry holding several
    /// models — the caller must say which one it means.
    ModelRequired {
        /// Names currently registered (sorted).
        known: Vec<String>,
    },
    /// A swap tried to install a model with a different `(D, n_classes)`
    /// than the entry serves — that would silently change the API shape
    /// behind a name callers already depend on.
    GeometryMismatch {
        /// The entry being swapped.
        name: String,
        /// `(dims, classes)` currently served.
        current: (usize, usize),
        /// `(dims, classes)` of the incoming checkpoint.
        incoming: (usize, usize),
    },
    /// The checkpoint could not be loaded, its architecture descriptor
    /// could not be parsed/built, or the rebuilt model failed the
    /// probe-forward validation.
    Checkpoint(String),
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::UnknownModel { name, known } => {
                write!(f, "no model named {name:?} (registered: {known:?})")
            }
            RegistryError::DuplicateModel { name } => {
                write!(f, "a model named {name:?} is already registered")
            }
            RegistryError::InvalidName { name, reason } => {
                write!(f, "invalid model name {name:?}: {reason}")
            }
            RegistryError::ModelRequired { known } => {
                write!(
                    f,
                    "several models are registered; name one of {known:?} in the request"
                )
            }
            RegistryError::GeometryMismatch {
                name,
                current,
                incoming,
            } => write!(
                f,
                "model {name:?} serves (D={}, classes={}) but the checkpoint holds \
                 (D={}, classes={})",
                current.0, current.1, incoming.0, incoming.1
            ),
            RegistryError::Checkpoint(msg) => write!(f, "checkpoint rejected: {msg}"),
        }
    }
}

impl std::error::Error for RegistryError {}

/// Checks a model name against the registry's naming rules.
pub fn validate_model_name(name: &str) -> Result<(), RegistryError> {
    let invalid = |reason: &str| RegistryError::InvalidName {
        name: name.chars().take(MAX_MODEL_NAME + 8).collect(),
        reason: reason.to_string(),
    };
    if name.is_empty() {
        return Err(invalid("name is empty"));
    }
    if name.len() > MAX_MODEL_NAME {
        return Err(invalid("name exceeds 64 bytes"));
    }
    if !name
        .bytes()
        .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b'-'))
    {
        return Err(invalid("only [A-Za-z0-9._-] are allowed"));
    }
    Ok(())
}

/// A point-in-time description of one registered model, as listed by
/// [`ModelRegistry::list`] (and served on `GET /v1/models`).
#[derive(Debug, Clone)]
pub struct ModelInfo {
    /// Registered name.
    pub name: String,
    /// Monotonic version: 1 at registration, +1 per successful swap.
    pub version: u64,
    /// Architecture descriptor string (empty when registered from an
    /// in-memory service without one).
    pub arch: String,
    /// Series dimension count `D` the model expects.
    pub dims: usize,
    /// Number of classes.
    pub n_classes: usize,
    /// Worker threads serving this model.
    pub workers: usize,
    /// Inference precision the model's workers serve at.
    pub precision: Precision,
    /// This model's own service counters.
    pub stats: ServiceStats,
}

/// What [`ModelRegistry::swap`] hands back once the new model serves.
pub struct SwapOutcome {
    /// The entry's version after the swap.
    pub version: u64,
    /// The drained previous generation's models.
    pub old_models: Vec<GapClassifier>,
    /// Final stats of the previous generation.
    pub old_stats: ServiceStats,
}

/// One live entry: a running service plus the recipe to respawn it.
struct Entry {
    service: DcamService,
    arch: String,
    version: u64,
    /// Spawn-time service config, reused by [`ModelRegistry::swap`] so a
    /// swapped-in model inherits the entry's batching/queue semantics.
    cfg: ServiceConfig,
    workers: usize,
    /// Accumulated counters of every drained previous generation, folded
    /// into [`ModelInfo::stats`] so a name's counters stay monotonic
    /// across swaps (monitoring computes rates from them).
    retired_stats: ServiceStats,
}

/// Named, versioned model pools with graceful hot-swap. See the
/// [module docs](self).
///
/// All operations take `&self`; the registry is shared behind an
/// `Arc` between transports and operators. The internal lock guards only
/// the name→entry map — model construction, probe validation and drains
/// all happen outside it, so other models keep serving at full speed
/// through a swap.
pub struct ModelRegistry {
    entries: Mutex<HashMap<String, Entry>>,
}

impl Default for ModelRegistry {
    fn default() -> Self {
        Self::new()
    }
}

fn lock_entries(m: &Mutex<HashMap<String, Entry>>) -> MutexGuard<'_, HashMap<String, Entry>> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl ModelRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        ModelRegistry {
            entries: Mutex::new(HashMap::new()),
        }
    }

    /// Registers a pre-spawned service under `name` (version 1).
    ///
    /// `arch` is the descriptor string listed for the model (may be empty
    /// for models that never came from a checkpoint); `cfg` must be the
    /// config the service was spawned with — a later
    /// [`ModelRegistry::swap`] reuses it for the replacement pool.
    pub fn register(
        &self,
        name: &str,
        service: DcamService,
        arch: impl Into<String>,
        cfg: ServiceConfig,
    ) -> Result<u64, RegistryError> {
        validate_model_name(name)?;
        let workers = service.workers();
        let entry = Entry {
            service,
            arch: arch.into(),
            version: 1,
            cfg,
            workers,
            retired_stats: ServiceStats::default(),
        };
        let mut entries = lock_entries(&self.entries);
        if entries.contains_key(name) {
            // The rejected service would block this thread on drop (it
            // drains its workers); that is correct — the caller spawned
            // it, the caller eats the join.
            drop(entries);
            drop(entry);
            return Err(RegistryError::DuplicateModel {
                name: name.to_string(),
            });
        }
        entries.insert(name.to_string(), entry);
        Ok(1)
    }

    /// Loads a binary checkpoint file and registers it under `name`:
    /// the architecture is rebuilt from the descriptor stored in the
    /// file, the weights restored, the model replicated across `workers`
    /// worker threads and probe-validated before serving (version 1).
    pub fn register_from_checkpoint(
        &self,
        name: &str,
        path: impl AsRef<Path>,
        cfg: ServiceConfig,
        workers: usize,
    ) -> Result<u64, RegistryError> {
        validate_model_name(name)?;
        // Refuse a taken name before the expensive load + spawn (and the
        // blocking drain of the rejected pool). `register` re-checks
        // under the lock for the registration race.
        if lock_entries(&self.entries).contains_key(name) {
            return Err(RegistryError::DuplicateModel {
                name: name.to_string(),
            });
        }
        let (service, arch) = spawn_from_checkpoint(path, cfg.clone(), workers)?;
        self.register(name, service, arch, cfg)
    }

    /// Removes `name` from the registry, drains its workers and returns
    /// the models plus final stats. In-flight requests resolve normally;
    /// new lookups fail with [`RegistryError::UnknownModel`] immediately.
    pub fn unregister(
        &self,
        name: &str,
    ) -> Result<(Vec<GapClassifier>, ServiceStats), RegistryError> {
        let entry = {
            let mut entries = lock_entries(&self.entries);
            entries
                .remove(name)
                .ok_or_else(|| RegistryError::UnknownModel {
                    name: name.to_string(),
                    known: sorted_names(&entries),
                })?
        };
        // Drain outside the lock: other models must keep serving while
        // this one's workers finish.
        Ok(entry.service.shutdown())
    }

    /// **Hot swap**: replaces the model behind `name` with the checkpoint
    /// at `path`, without the name ever going dark.
    ///
    /// The sequence is: load + rebuild + probe-validate the new pool
    /// (expensive, outside the lock, old model still serving) → verify the
    /// geometry matches → atomically repoint the name (version + 1) →
    /// drain the old workers (outside the lock; requests they already
    /// accepted resolve normally). Other registry entries are untouched
    /// throughout. On any error the entry keeps serving its current model.
    pub fn swap(&self, name: &str, path: impl AsRef<Path>) -> Result<SwapOutcome, RegistryError> {
        let (cfg, workers, current_geometry) = {
            let entries = lock_entries(&self.entries);
            let entry = entries
                .get(name)
                .ok_or_else(|| RegistryError::UnknownModel {
                    name: name.to_string(),
                    known: sorted_names(&entries),
                })?;
            (
                entry.cfg.clone(),
                entry.workers,
                (entry.service.expected_dims(), entry.service.n_classes()),
            )
        };
        let (new_service, new_arch) = spawn_from_checkpoint(path, cfg, workers)?;
        let incoming = (new_service.expected_dims(), new_service.n_classes());
        if incoming != current_geometry {
            // new_service drains on drop (it served nothing).
            return Err(RegistryError::GeometryMismatch {
                name: name.to_string(),
                current: current_geometry,
                incoming,
            });
        }
        let (old_service, version, pre_drain) = {
            let mut entries = lock_entries(&self.entries);
            let Some(entry) = entries.get_mut(name) else {
                // Concurrently unregistered while we were building: the
                // caller raced an operator; report the name gone.
                return Err(RegistryError::UnknownModel {
                    name: name.to_string(),
                    known: sorted_names(&entries),
                });
            };
            entry.version += 1;
            entry.arch = new_arch;
            // Fold the outgoing generation's counters into the retired
            // totals in the SAME critical section that repoints the name:
            // a stats scrape landing mid-drain must never see the name's
            // counters drop (monitoring computes rates from them).
            let pre_drain = entry.service.stats();
            entry.retired_stats.absorb(&pre_drain);
            let old = std::mem::replace(&mut entry.service, new_service);
            (old, entry.version, pre_drain)
        };
        let (old_models, old_stats) = old_service.shutdown();
        // The drain itself ran outside the lock, so requests the old pool
        // answered after the snapshot are not in `pre_drain` yet — fold
        // only that difference (the entry may have been unregistered
        // meanwhile; then its counters go with it).
        if let Some(entry) = lock_entries(&self.entries).get_mut(name) {
            entry
                .retired_stats
                .absorb(&stats_delta(&old_stats, &pre_drain));
        }
        Ok(SwapOutcome {
            version,
            old_models,
            old_stats,
        })
    }

    /// A submission handle to the model currently behind `name`.
    ///
    /// The handle pins the *generation* it was resolved against: after a
    /// swap, requests submitted through an old handle fail with
    /// [`ServiceError::ShuttingDown`](crate::service::ServiceError::ShuttingDown)
    /// once the old pool has drained — resolve a fresh handle per request
    /// (they cost one `Arc` clone).
    pub fn handle(&self, name: &str) -> Result<ServiceHandle, RegistryError> {
        let entries = lock_entries(&self.entries);
        entries
            .get(name)
            .map(|e| e.service.handle())
            .ok_or_else(|| RegistryError::UnknownModel {
                name: name.to_string(),
                known: sorted_names(&entries),
            })
    }

    /// Resolves an optional model name the way the HTTP API does: a named
    /// lookup when given, otherwise the registry's single model — or the
    /// one named `"default"` — with [`RegistryError::ModelRequired`] when
    /// the choice is ambiguous.
    pub fn resolve(&self, name: Option<&str>) -> Result<(String, ServiceHandle), RegistryError> {
        if let Some(name) = name {
            validate_model_name(name)?;
            return Ok((name.to_string(), self.handle(name)?));
        }
        let entries = lock_entries(&self.entries);
        if let Some(e) = entries.get("default") {
            return Ok(("default".to_string(), e.service.handle()));
        }
        let mut it = entries.iter();
        match (it.next(), it.next()) {
            (Some((name, e)), None) => Ok((name.clone(), e.service.handle())),
            (None, _) => Err(RegistryError::UnknownModel {
                name: "<unspecified>".to_string(),
                known: Vec::new(),
            }),
            _ => Err(RegistryError::ModelRequired {
                known: sorted_names(&entries),
            }),
        }
    }

    /// Registered names, sorted.
    pub fn names(&self) -> Vec<String> {
        sorted_names(&lock_entries(&self.entries))
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        lock_entries(&self.entries).len()
    }

    /// True when no model is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Worker threads across all models.
    pub fn total_workers(&self) -> usize {
        lock_entries(&self.entries)
            .values()
            .map(|e| e.workers)
            .sum()
    }

    /// Requests waiting in any model's queue right now — the cheap
    /// liveness number (`GET /healthz`); no latency snapshots are built.
    pub fn total_queue_depth(&self) -> usize {
        lock_entries(&self.entries)
            .values()
            .map(|e| e.service.queue_depth())
            .sum()
    }

    /// A snapshot of every registered model, sorted by name. A swapped
    /// entry's stats include every drained previous generation, so the
    /// counters behind a name never go backwards.
    pub fn list(&self) -> Vec<ModelInfo> {
        let entries = lock_entries(&self.entries);
        let mut out: Vec<ModelInfo> = entries
            .iter()
            .map(|(name, e)| {
                let mut stats = e.retired_stats.clone();
                stats.absorb(&e.service.stats());
                ModelInfo {
                    name: name.clone(),
                    version: e.version,
                    arch: e.arch.clone(),
                    dims: e.service.expected_dims(),
                    n_classes: e.service.n_classes(),
                    workers: e.workers,
                    precision: e.service.precision(),
                    stats,
                }
            })
            .collect();
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }

    /// Drains every model (graceful: queued requests resolve first) and
    /// returns each entry's name, models and final stats (including every
    /// generation retired by swaps), sorted by name. The registry is left
    /// empty but usable.
    pub fn shutdown_all(&self) -> Vec<(String, Vec<GapClassifier>, ServiceStats)> {
        let drained: Vec<(String, Entry)> = {
            let mut entries = lock_entries(&self.entries);
            entries.drain().collect()
        };
        let mut out: Vec<(String, Vec<GapClassifier>, ServiceStats)> = drained
            .into_iter()
            .map(|(name, entry)| {
                let mut stats = entry.retired_stats.clone();
                let (models, live) = entry.service.shutdown();
                stats.absorb(&live);
                (name, models, stats)
            })
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

/// Counter-wise difference `newer − older` of two snapshots of the *same*
/// service (the counters only ever grow, so saturating subtraction is
/// exact). Used by [`ModelRegistry::swap`] to fold a drained generation's
/// post-snapshot activity into the retired totals without double counting
/// what was already folded at repoint time. Gauges keep the newer
/// snapshot's values (`queue_depth` is 0 after a drain); the latency
/// summary keeps the newer percentiles/mean, which
/// [`ServiceStats::absorb`] then merges conservatively.
fn stats_delta(newer: &ServiceStats, older: &ServiceStats) -> ServiceStats {
    let mut batch_size_hist = newer.batch_size_hist.clone();
    for (h, &prev) in batch_size_hist.iter_mut().zip(&older.batch_size_hist) {
        *h = h.saturating_sub(prev);
    }
    ServiceStats {
        submitted: newer.submitted.saturating_sub(older.submitted),
        completed: newer.completed.saturating_sub(older.completed),
        classified: newer.classified.saturating_sub(older.classified),
        failed: newer.failed.saturating_sub(older.failed),
        rejected: newer.rejected.saturating_sub(older.rejected),
        cancelled: newer.cancelled.saturating_sub(older.cancelled),
        worker_respawns: newer.worker_respawns.saturating_sub(older.worker_respawns),
        queue_depth: newer.queue_depth,
        max_queue_depth: newer.max_queue_depth,
        flushes_full: newer.flushes_full.saturating_sub(older.flushes_full),
        flushes_deadline: newer
            .flushes_deadline
            .saturating_sub(older.flushes_deadline),
        flushes_drained: newer.flushes_drained.saturating_sub(older.flushes_drained),
        flushes_shutdown: newer
            .flushes_shutdown
            .saturating_sub(older.flushes_shutdown),
        batch_size_hist,
        mean_batch: 0.0,
        p50_latency: newer.p50_latency,
        p99_latency: newer.p99_latency,
        mean_latency: newer.mean_latency,
    }
}

fn sorted_names(entries: &HashMap<String, Entry>) -> Vec<String> {
    let mut names: Vec<String> = entries.keys().cloned().collect();
    names.sort();
    names
}

/// Captures a model's parameters as a [`Checkpoint`] carrying the
/// architecture descriptor, ready for [`dcam_nn::checkpoint::save_binary`].
/// The counterpart of [`spawn_from_checkpoint`].
pub fn checkpoint_model(model: &mut GapClassifier, desc: &ArchDescriptor) -> Checkpoint {
    let tag = model.name().to_string();
    checkpoint::save(model, tag).with_arch(desc.render())
}

/// Writes a checkpoint to `path` in the binary format — a
/// registry-flavoured wrapper over [`dcam_nn::checkpoint::save_binary`] so
/// transports need not depend on `dcam-nn` directly.
pub fn save_checkpoint(ckpt: &Checkpoint, path: impl AsRef<Path>) -> Result<(), RegistryError> {
    let path = path.as_ref();
    checkpoint::save_binary(ckpt, path)
        .map_err(|e| RegistryError::Checkpoint(format!("{}: {e}", path.display())))
}

/// Loads a binary checkpoint file and spawns a ready-to-register
/// [`DcamService`] from it: parse the embedded [`ArchDescriptor`], build
/// the architecture, restore the weights (tag-checked against the built
/// model's name), replicate across `workers` threads, and spawn with the
/// re-spawn recovery machinery armed — which also runs the probe-forward
/// round-trip validation before any worker serves. Every failure is a
/// typed [`RegistryError::Checkpoint`]; the returned service is already
/// serving (its queue is empty).
pub fn spawn_from_checkpoint(
    path: impl AsRef<Path>,
    cfg: ServiceConfig,
    workers: usize,
) -> Result<(DcamService, String), RegistryError> {
    let path = path.as_ref();
    let ckpt = checkpoint::load_binary(path)
        .map_err(|e| RegistryError::Checkpoint(format!("{}: {e}", path.display())))?;
    if ckpt.arch.is_empty() {
        return Err(RegistryError::Checkpoint(format!(
            "{}: no architecture descriptor in the file",
            path.display()
        )));
    }
    let desc = ArchDescriptor::parse(&ckpt.arch)
        .map_err(|e| RegistryError::Checkpoint(format!("{}: {e}", path.display())))?;
    let arch = ckpt.arch.clone();
    // Building can assert (e.g. an RNN encoding smuggled into a GAP
    // family); surface that as a typed error, not a server crash.
    let mut model = catch_unwind(AssertUnwindSafe(|| desc.build(0)))
        .map_err(|_| RegistryError::Checkpoint(format!("cannot build architecture {arch:?}")))?;
    let tag = model.name().to_string();
    checkpoint::restore(&mut model, &ckpt, &tag)
        .map_err(|e| RegistryError::Checkpoint(e.to_string()))?;
    let workers = workers.max(1);
    let spawned = catch_unwind(AssertUnwindSafe(|| {
        let build = move || desc.build(0);
        let models = replicate_model(model, workers, build);
        DcamService::spawn_with_recovery(models, cfg, move || desc.build(0))
    }))
    .map_err(|_| {
        RegistryError::Checkpoint(format!(
            "restored model failed spawn-time probe validation ({arch:?})"
        ))
    })?;
    Ok((spawned, arch))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::{ArchFamily, InputEncoding, ModelScale};
    use crate::dcam::DcamConfig;
    use crate::dcam_many::{DcamBatcherConfig, DcamManyConfig};
    use crate::service::Backpressure;
    use std::time::Duration;

    fn quick_cfg() -> ServiceConfig {
        ServiceConfig {
            batcher: DcamBatcherConfig {
                many: DcamManyConfig {
                    dcam: DcamConfig {
                        k: 4,
                        only_correct: false,
                        ..Default::default()
                    },
                    max_batch: 4,
                },
                max_pending: 4,
                max_wait: Some(Duration::from_millis(2)),
            },
            queue_capacity: 64,
            backpressure: Backpressure::Block,
            queue_policy: Default::default(),
            latency_window: 128,
            precision: Precision::F32,
        }
    }

    fn desc(dims: usize, classes: usize) -> ArchDescriptor {
        ArchDescriptor {
            family: ArchFamily::Cnn,
            encoding: InputEncoding::Dcnn,
            dims,
            classes,
            scale: ModelScale::Tiny,
        }
    }

    fn write_ckpt(name: &str, d: &ArchDescriptor, seed: u64) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("dcam-registry-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{name}-{seed}.ckpt"));
        let mut model = d.build(seed);
        checkpoint::save_binary(&checkpoint_model(&mut model, d), &path).unwrap();
        path
    }

    #[test]
    fn name_validation() {
        assert!(validate_model_name("starlight-v2.1_a").is_ok());
        assert!(matches!(
            validate_model_name(""),
            Err(RegistryError::InvalidName { .. })
        ));
        assert!(matches!(
            validate_model_name(&"x".repeat(65)),
            Err(RegistryError::InvalidName { .. })
        ));
        assert!(matches!(
            validate_model_name("no/slashes"),
            Err(RegistryError::InvalidName { .. })
        ));
        assert!(matches!(
            validate_model_name("no spaces"),
            Err(RegistryError::InvalidName { .. })
        ));
    }

    #[test]
    fn register_list_unregister_round_trip() {
        let registry = ModelRegistry::new();
        let d = desc(3, 2);
        let path = write_ckpt("a", &d, 1);
        assert_eq!(
            registry
                .register_from_checkpoint("a", &path, quick_cfg(), 1)
                .unwrap(),
            1
        );
        // Duplicate name is refused.
        assert!(matches!(
            registry.register_from_checkpoint("a", &path, quick_cfg(), 1),
            Err(RegistryError::DuplicateModel { .. })
        ));
        let infos = registry.list();
        assert_eq!(infos.len(), 1);
        assert_eq!(infos[0].name, "a");
        assert_eq!(infos[0].version, 1);
        assert_eq!((infos[0].dims, infos[0].n_classes), (3, 2));
        assert_eq!(infos[0].arch, d.render());
        let (models, _) = registry.unregister("a").unwrap();
        assert_eq!(models.len(), 1);
        assert!(registry.is_empty());
        assert!(matches!(
            registry.unregister("a"),
            Err(RegistryError::UnknownModel { .. })
        ));
    }

    #[test]
    fn resolve_rules() {
        let registry = ModelRegistry::new();
        assert!(matches!(
            registry.resolve(None),
            Err(RegistryError::UnknownModel { .. })
        ));
        let d = desc(3, 2);
        let path = write_ckpt("resolve", &d, 2);
        registry
            .register_from_checkpoint("only", &path, quick_cfg(), 1)
            .unwrap();
        // One model: anonymous resolution finds it.
        assert_eq!(registry.resolve(None).unwrap().0, "only");
        registry
            .register_from_checkpoint("second", &path, quick_cfg(), 1)
            .unwrap();
        // Two models, neither called "default": ambiguous.
        assert!(matches!(
            registry.resolve(None),
            Err(RegistryError::ModelRequired { .. })
        ));
        registry
            .register_from_checkpoint("default", &path, quick_cfg(), 1)
            .unwrap();
        assert_eq!(registry.resolve(None).unwrap().0, "default");
        assert_eq!(registry.resolve(Some("second")).unwrap().0, "second");
        assert!(matches!(
            registry.resolve(Some("missing")),
            Err(RegistryError::UnknownModel { .. })
        ));
        registry.shutdown_all();
    }

    #[test]
    fn swap_bumps_version_and_changes_answers() {
        use dcam_series::MultivariateSeries;
        let registry = ModelRegistry::new();
        let d = desc(3, 2);
        let path_v1 = write_ckpt("swapv", &d, 10);
        let path_v2 = write_ckpt("swapv", &d, 11);
        registry
            .register_from_checkpoint("m", &path_v1, quick_cfg(), 1)
            .unwrap();
        let series = MultivariateSeries::from_rows(&[vec![0.4; 12], vec![-0.2; 12], vec![0.1; 12]]);
        let before = registry
            .handle("m")
            .unwrap()
            .submit_classify(&series)
            .unwrap()
            .wait()
            .unwrap();
        let outcome = registry.swap("m", &path_v2).unwrap();
        assert_eq!(outcome.version, 2);
        assert_eq!(outcome.old_models.len(), 1);
        assert_eq!(registry.list()[0].version, 2);
        let after = registry
            .handle("m")
            .unwrap()
            .submit_classify(&series)
            .unwrap()
            .wait()
            .unwrap();
        // Different seeds ⇒ different weights ⇒ different logits, and the
        // new ones must equal a direct forward on the v2 checkpoint.
        assert_ne!(before.logits, after.logits);
        let mut reference = d.build(11);
        let want = reference.logits_for(&series);
        for (a, b) in after.logits.iter().zip(want.data()) {
            assert!((a - b).abs() < 1e-6, "post-swap logits: {a} vs {b}");
        }
        registry.shutdown_all();
    }

    #[test]
    fn swap_geometry_mismatch_is_rejected_and_old_model_keeps_serving() {
        use dcam_series::MultivariateSeries;
        let registry = ModelRegistry::new();
        let path_3d = write_ckpt("geo3", &desc(3, 2), 20);
        let path_4d = write_ckpt("geo4", &desc(4, 2), 21);
        registry
            .register_from_checkpoint("m", &path_3d, quick_cfg(), 1)
            .unwrap();
        assert!(matches!(
            registry.swap("m", &path_4d),
            Err(RegistryError::GeometryMismatch { .. })
        ));
        assert_eq!(registry.list()[0].version, 1, "failed swap must not bump");
        let series = MultivariateSeries::from_rows(&[vec![0.4; 10], vec![0.2; 10], vec![0.1; 10]]);
        registry
            .handle("m")
            .unwrap()
            .submit_classify(&series)
            .unwrap()
            .wait()
            .unwrap();
        registry.shutdown_all();
    }

    #[test]
    fn swap_and_unregister_of_unknown_names_fail_typed() {
        let registry = ModelRegistry::new();
        let path = write_ckpt("unk", &desc(3, 2), 30);
        assert!(matches!(
            registry.swap("ghost", &path),
            Err(RegistryError::UnknownModel { .. })
        ));
        assert!(matches!(
            registry.handle("ghost"),
            Err(RegistryError::UnknownModel { .. })
        ));
    }

    #[test]
    fn bad_checkpoint_files_are_typed_errors() {
        let dir = std::env::temp_dir().join("dcam-registry-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let registry = ModelRegistry::new();
        // Missing file.
        assert!(matches!(
            registry.register_from_checkpoint("m", dir.join("absent.ckpt"), quick_cfg(), 1),
            Err(RegistryError::Checkpoint(_))
        ));
        // Garbage bytes.
        let garbage = dir.join("garbage.ckpt");
        std::fs::write(&garbage, b"not a checkpoint at all").unwrap();
        assert!(matches!(
            registry.register_from_checkpoint("m", &garbage, quick_cfg(), 1),
            Err(RegistryError::Checkpoint(_))
        ));
        // Valid checkpoint without a descriptor.
        let d = desc(3, 2);
        let mut model = d.build(1);
        let no_arch = dir.join("noarch.ckpt");
        checkpoint::save_binary(&checkpoint::save(&mut model, "dCNN"), &no_arch).unwrap();
        assert!(matches!(
            registry.register_from_checkpoint("m", &no_arch, quick_cfg(), 1),
            Err(RegistryError::Checkpoint(_))
        ));
        assert!(registry.is_empty());
    }
}
