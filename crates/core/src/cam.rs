//! Class Activation Maps (paper §2.2–§2.3).
//!
//! For a GAP-headed network with last-conv feature maps `A_m` and dense
//! weights `w^{C_j}_m`, the CAM for class `C_j` is
//! `CAM_{C_j,i} = Σ_m w^{C_j}_m · A_{m,i}`. Depending on the input encoding
//! the map is univariate (CNN), per-dimension (cCNN) or per-row-of-`C(T)`
//! (dCNN — which [`crate::dcam`] then disentangles into dimensions).

use crate::arch::{GapClassifier, InputEncoding};
use dcam_series::MultivariateSeries;
use dcam_tensor::{argmax, Tensor};

/// Weighted sum of feature maps: `(n_f, H, W)` activations × class weights
/// → `(H, W)` map. This is the shared CAM primitive.
pub fn weighted_map(features: &Tensor, class_weights: &Tensor, class: usize) -> Tensor {
    let d = features.dims();
    assert_eq!(d.len(), 4, "expected (1, n_f, H, W) features");
    assert_eq!(d[0], 1, "one sample at a time");
    let mut out = Tensor::zeros(&[d[2], d[3]]);
    weighted_map_batch(features, class_weights, class, out.data_mut());
    out
}

/// Batched CAM primitive: `(B, n_f, H, W)` feature maps × class weights →
/// `B` maps written into `out` (`B·H·W`, row-major per sample).
///
/// Reads each sample's feature planes in place — no per-sample feature
/// copies — which is what lets [`crate::dcam::compute_dcam`] score a whole
/// permutation batch without allocating. `out` is fully overwritten.
pub fn weighted_map_batch(
    features: &Tensor,
    class_weights: &Tensor,
    class: usize,
    out: &mut [f32],
) {
    let d = features.dims();
    assert_eq!(d.len(), 4, "expected (B, n_f, H, W) features");
    let (b, n_f, h, w) = (d[0], d[1], d[2], d[3]);
    let cw = class_weights.dims();
    assert_eq!(cw[1], n_f, "class weights must match feature count");
    assert!(class < cw[0], "class out of range");
    let plane = h * w;
    assert_eq!(out.len(), b * plane, "output length mismatch");
    let wrow = &class_weights.data()[class * n_f..(class + 1) * n_f];
    out.fill(0.0);
    for bi in 0..b {
        weighted_map_sample(
            &features.data()[bi * n_f * plane..(bi + 1) * n_f * plane],
            wrow,
            plane,
            &mut out[bi * plane..(bi + 1) * plane],
        );
    }
}

/// The shared CAM inner loop: one sample's feature planes × one weight row
/// accumulated into the (already zeroed) output plane.
fn weighted_map_sample(f_sample: &[f32], wrow: &[f32], plane: usize, o: &mut [f32]) {
    for (m, &wm) in wrow.iter().enumerate() {
        for (ov, &fv) in o.iter_mut().zip(&f_sample[m * plane..(m + 1) * plane]) {
            *ov += wm * fv;
        }
    }
}

/// [`weighted_map_batch`] with a *per-sample* target class: sample `bi`'s
/// map is weighted by `class_weights` row `classes[bi]`.
///
/// The cross-instance batched dCAM engine packs permutations of different
/// requests — each with its own explained class — into one forward
/// mega-batch; this is the scatter that keeps their CAMs per-request.
pub fn weighted_map_batch_classes(
    features: &Tensor,
    class_weights: &Tensor,
    classes: &[usize],
    out: &mut [f32],
) {
    let d = features.dims();
    assert_eq!(d.len(), 4, "expected (B, n_f, H, W) features");
    let (b, n_f, h, w) = (d[0], d[1], d[2], d[3]);
    let cw = class_weights.dims();
    assert_eq!(cw[1], n_f, "class weights must match feature count");
    assert_eq!(classes.len(), b, "one class per sample");
    let plane = h * w;
    assert_eq!(out.len(), b * plane, "output length mismatch");
    out.fill(0.0);
    for (bi, &class) in classes.iter().enumerate() {
        assert!(class < cw[0], "class out of range");
        weighted_map_sample(
            &features.data()[bi * n_f * plane..(bi + 1) * n_f * plane],
            &class_weights.data()[class * n_f..(class + 1) * n_f],
            plane,
            &mut out[bi * plane..(bi + 1) * plane],
        );
    }
}

/// Result of a CAM computation on one instance.
#[derive(Debug, Clone)]
pub struct CamResult {
    /// The activation map: `(1, n)` for CNN, `(D, n)` for cCNN/dCNN rows.
    pub map: Tensor,
    /// Predicted class of the instance.
    pub predicted: usize,
    /// Logits of the instance.
    pub logits: Vec<f32>,
}

/// Computes the CAM of `series` for `class` under the classifier's own
/// input encoding.
///
/// * CNN encoding → univariate CAM `(1, n)` (§2.2);
/// * cCNN encoding → the cCAM `(D, n)` (§2.3);
/// * dCNN encoding → the row-wise CAM of `C(T)` `(D, n)` — **not** yet a
///   per-dimension attribution; use [`crate::dcam::compute_dcam`] for that.
pub fn cam(model: &mut GapClassifier, series: &MultivariateSeries, class: usize) -> CamResult {
    let x = model.encoding().encode(series);
    let mut dims = vec![1usize];
    dims.extend_from_slice(x.dims());
    let xb = x.reshape(&dims).expect("batch of one");
    let (features, logits) = model.forward_with_features(&xb);
    let map = weighted_map(&features, model.class_weights(), class);
    let predicted = argmax(logits.data()).unwrap_or(0);
    CamResult {
        map,
        predicted,
        logits: logits.data().to_vec(),
    }
}

/// Univariate CAM as a vector (CNN encoding only).
pub fn cam_univariate(
    model: &mut GapClassifier,
    series: &MultivariateSeries,
    class: usize,
) -> Vec<f32> {
    assert_eq!(
        model.encoding(),
        InputEncoding::Cnn,
        "univariate CAM requires the CNN encoding"
    );
    cam(model, series, class).map.into_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::{cnn, ModelScale};
    use dcam_tensor::SeededRng;

    fn toy_series(d: usize, n: usize, seed: u64) -> MultivariateSeries {
        let mut rng = SeededRng::new(seed);
        let rows: Vec<Vec<f32>> = (0..d)
            .map(|_| (0..n).map(|_| rng.normal()).collect())
            .collect();
        MultivariateSeries::from_rows(&rows)
    }

    #[test]
    fn weighted_map_linear_in_weights() {
        let mut rng = SeededRng::new(0);
        let features = Tensor::uniform(&[1, 3, 2, 4], -1.0, 1.0, &mut rng);
        let w1 = Tensor::from_vec(vec![1.0, 0.0, 0.0, 0.0, 1.0, 0.0], &[2, 3]).unwrap();
        // Class 0 selects feature map 0 exactly.
        let m = weighted_map(&features, &w1, 0);
        assert_eq!(m.data(), &features.data()[..8]);
        // Class 1 selects feature map 1.
        let m1 = weighted_map(&features, &w1, 1);
        assert_eq!(m1.data(), &features.data()[8..16]);
    }

    #[test]
    fn cam_shapes_by_encoding() {
        let mut rng = SeededRng::new(1);
        let s = toy_series(4, 12, 0);
        let mut plain = cnn(InputEncoding::Cnn, 4, 2, ModelScale::Tiny, &mut rng);
        assert_eq!(cam(&mut plain, &s, 0).map.dims(), &[1, 12]);
        let mut c = cnn(InputEncoding::Ccnn, 4, 2, ModelScale::Tiny, &mut rng);
        assert_eq!(cam(&mut c, &s, 0).map.dims(), &[4, 12]);
        let mut d = cnn(InputEncoding::Dcnn, 4, 2, ModelScale::Tiny, &mut rng);
        assert_eq!(cam(&mut d, &s, 0).map.dims(), &[4, 12]);
    }

    #[test]
    fn cam_gap_consistency() {
        // Mean of CAM over all positions must equal the class logit minus
        // bias: z_c = Σ_m w_m · mean(A_m) = mean_i Σ_m w_m A_{m,i}.
        let mut rng = SeededRng::new(2);
        let s = toy_series(3, 10, 1);
        let mut model = cnn(InputEncoding::Dcnn, 3, 2, ModelScale::Tiny, &mut rng);
        let result = cam(&mut model, &s, 1);
        let cam_mean = result.map.mean();
        // Recover bias: logit = cam_mean + bias. Verify via class 0 too.
        let r0 = cam(&mut model, &s, 0);
        let b1 = result.logits[1] - cam_mean;
        let b0 = r0.logits[0] - r0.map.mean();
        // Biases are the head's bias parameters; we can't read them directly
        // here, but they must be consistent across repeated computations.
        let again = cam(&mut model, &s, 1);
        let b1_again = again.logits[1] - again.map.mean();
        assert!((b1 - b1_again).abs() < 1e-4);
        assert!(b0.is_finite() && b1.is_finite());
    }

    #[test]
    fn univariate_cam_requires_cnn_encoding() {
        let mut rng = SeededRng::new(3);
        let s = toy_series(3, 8, 2);
        let mut c = cnn(InputEncoding::Ccnn, 3, 2, ModelScale::Tiny, &mut rng);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cam_univariate(&mut c, &s, 0);
        }));
        assert!(r.is_err());
    }
}
