//! Cross-instance batching is convolution-strategy-invariant: the same
//! requests through `compute_dcam_many` produce the same explanations (to
//! float noise) whether every conv runs direct sliding windows, im2col+GEMM
//! or the overlap-save fft path. This is what entitles `ConvStrategy::Auto`
//! (and the `DCAM_CONV_STRATEGY` override the CI matrix pins) to switch
//! execution paths underneath the serving engine without anyone noticing.

use dcam::arch::{cnn, GapClassifier, InputEncoding, ModelScale};
use dcam::dcam::DcamConfig;
use dcam::dcam_many::{compute_dcam_many, DcamManyConfig, DcamRequest};
use dcam_nn::layers::ConvStrategy;
use dcam_series::MultivariateSeries;
use dcam_tensor::{SeededRng, Tensor};

fn toy_series(d: usize, n: usize, seed: u64) -> MultivariateSeries {
    let mut rng = SeededRng::new(seed);
    let rows: Vec<Vec<f32>> = (0..d)
        .map(|_| (0..n).map(|_| rng.normal()).collect())
        .collect();
    MultivariateSeries::from_rows(&rows)
}

fn toy_model(d: usize, classes: usize, seed: u64) -> GapClassifier {
    let mut rng = SeededRng::new(seed);
    cnn(InputEncoding::Dcnn, d, classes, ModelScale::Tiny, &mut rng)
}

/// Relative 1e-4 agreement with an absolute floor — the fft path
/// reassociates every sum through the frequency domain, so exact equality
/// is out, but the dCAM rankings the paper's metrics depend on require
/// agreement far tighter than this.
fn close(a: &Tensor, b: &Tensor, what: &str) {
    assert_eq!(a.dims(), b.dims(), "{what}: shape mismatch");
    for (i, (&x, &y)) in a.data().iter().zip(b.data()).enumerate() {
        assert!(
            (x - y).abs() <= 1e-4 * x.abs().max(y.abs()).max(1.0),
            "{what}: mismatch at flat index {i}: {x} vs {y}"
        );
    }
}

#[test]
fn compute_dcam_many_is_strategy_invariant() {
    let d = 4;
    let n = 96;
    let series: Vec<MultivariateSeries> = (0..3).map(|i| toy_series(d, n, 60 + i)).collect();
    let classes = [0usize, 1, 0];
    let requests: Vec<DcamRequest<'_>> = series
        .iter()
        .zip(&classes)
        .map(|(series, &class)| DcamRequest { series, class })
        .collect();
    let cfg = DcamManyConfig {
        dcam: DcamConfig {
            k: 6,
            only_correct: false,
            seed: 11,
            ..Default::default()
        },
        // Misaligned with k so mega-batches span request boundaries.
        max_batch: 4,
    };

    let mut baseline = toy_model(d, 2, 9);
    baseline.set_conv_strategy(ConvStrategy::Direct);
    let want = compute_dcam_many(&mut baseline, &requests, &cfg);

    for strategy in [ConvStrategy::Im2col, ConvStrategy::Fft] {
        // Identical weights (same seed), different execution path.
        let mut model = toy_model(d, 2, 9);
        model.set_conv_strategy(strategy);
        let got = compute_dcam_many(&mut model, &requests, &cfg);
        assert_eq!(got.len(), want.len());
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            close(&g.dcam, &w.dcam, &format!("{strategy:?} request {i}: dcam"));
            close(&g.mbar, &w.mbar, &format!("{strategy:?} request {i}: mbar"));
            assert_eq!(g.ng, w.ng, "{strategy:?} request {i}: ng");
        }
    }
}
