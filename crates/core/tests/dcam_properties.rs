//! Behavioural properties of the dCAM computation beyond unit shape checks.

use dcam::arch::{cnn, GapClassifier};
use dcam::dcam::{compute_dcam, DcamConfig};
use dcam::{InputEncoding, ModelScale};
use dcam_series::MultivariateSeries;
use dcam_tensor::SeededRng;

fn toy_series(d: usize, n: usize, seed: u64) -> MultivariateSeries {
    let mut rng = SeededRng::new(seed);
    let rows: Vec<Vec<f32>> = (0..d)
        .map(|_| (0..n).map(|_| rng.normal()).collect())
        .collect();
    MultivariateSeries::from_rows(&rows)
}

fn toy_model(d: usize, seed: u64) -> GapClassifier {
    let mut rng = SeededRng::new(seed);
    cnn(InputEncoding::Dcnn, d, 2, ModelScale::Tiny, &mut rng)
}

#[test]
fn batching_does_not_change_the_result() {
    // Permutation evaluation is batched for throughput; the batch size is a
    // pure implementation detail and must not affect the output.
    let s = toy_series(4, 12, 1);
    let mut model = toy_model(4, 2);
    let base = DcamConfig {
        k: 7,
        only_correct: false,
        seed: 5,
        ..Default::default()
    };
    let r1 = compute_dcam(
        &mut model,
        &s,
        0,
        &DcamConfig {
            batch: 1,
            ..base.clone()
        },
    );
    let r8 = compute_dcam(
        &mut model,
        &s,
        0,
        &DcamConfig {
            batch: 8,
            ..base.clone()
        },
    );
    let r3 = compute_dcam(&mut model, &s, 0, &DcamConfig { batch: 3, ..base });
    assert!(r1.dcam.allclose(&r8.dcam, 1e-4));
    assert!(r1.dcam.allclose(&r3.dcam, 1e-4));
    assert_eq!(r1.ng, r8.ng);
    assert_eq!(r1.ng, r3.ng);
}

#[test]
fn only_correct_fallback_when_nothing_classified() {
    // Force ng = 0 by asking for a class the model never predicts: with
    // only_correct = true the implementation must fall back to averaging all
    // permutations instead of returning a zero map.
    let s = toy_series(3, 10, 3);
    let mut model = toy_model(3, 4);
    // Find the class the untrained model predicts for every permutation,
    // then request the other one.
    let probe = compute_dcam(
        &mut model,
        &s,
        0,
        &DcamConfig {
            k: 6,
            only_correct: false,
            seed: 7,
            ..Default::default()
        },
    );
    let always_predicted = if probe.ng == 6 { 0 } else { 1 };
    let target = 1 - always_predicted;
    let r = compute_dcam(
        &mut model,
        &s,
        target,
        &DcamConfig {
            k: 6,
            only_correct: true,
            seed: 7,
            ..Default::default()
        },
    );
    // Result must be non-degenerate even though ng may be 0.
    assert!(
        r.dcam.data().iter().any(|&v| v != 0.0),
        "fallback produced a zero map"
    );
}

#[test]
fn k_one_identity_reduces_variance_to_zero_only_for_constant_rows() {
    // With a single permutation, M̄[d, p, t] enumerates D distinct CAM rows;
    // the variance over positions is zero only if those rows coincide at t.
    let s = toy_series(3, 8, 5);
    let mut model = toy_model(3, 6);
    let r = compute_dcam(
        &mut model,
        &s,
        0,
        &DcamConfig {
            k: 1,
            only_correct: false,
            include_identity: true,
            ..Default::default()
        },
    );
    // mbar rows per dimension must be permutations of the same 3 CAM rows:
    // total mass per dimension is identical.
    let d = 3;
    let n = 8;
    let mass: Vec<f32> = (0..d)
        .map(|dim| {
            (0..d)
                .flat_map(|p| (0..n).map(move |t| (p, t)))
                .map(|(p, t)| r.mbar.at(&[dim, p, t]).unwrap())
                .sum()
        })
        .collect();
    for w in mass.windows(2) {
        assert!(
            (w[0] - w[1]).abs() < 1e-3,
            "per-dimension M̄ mass differs under the single identity permutation: {mass:?}"
        );
    }
}

#[test]
fn more_permutations_stabilize_the_map() {
    // dCAM with k=40 from two different permutation seeds must agree far
    // more than dCAM with k=2: convergence in k (the premise of Fig. 10).
    let s = toy_series(4, 10, 8);
    let mut model = toy_model(4, 9);
    let dist = |k: usize, s1: u64, s2: u64, model: &mut GapClassifier| {
        let base = DcamConfig {
            k,
            only_correct: false,
            include_identity: false,
            ..Default::default()
        };
        let a = compute_dcam(
            model,
            &s,
            0,
            &DcamConfig {
                seed: s1,
                ..base.clone()
            },
        );
        let b = compute_dcam(model, &s, 0, &DcamConfig { seed: s2, ..base });
        a.dcam
            .data()
            .iter()
            .zip(b.dcam.data())
            .map(|(x, y)| (x - y).abs())
            .sum::<f32>()
    };
    let d_small = dist(2, 100, 200, &mut model);
    let d_large = dist(48, 100, 200, &mut model);
    assert!(
        d_large < d_small,
        "k=48 disagreement {d_large} should be below k=2 disagreement {d_small}"
    );
}

#[test]
fn mu_is_shared_across_dimensions() {
    // Definition 3 multiplies every dimension's variance by the same μ_t;
    // timestamps where μ is zero must zero the whole dCAM column.
    let s = toy_series(3, 6, 10);
    let mut model = toy_model(3, 11);
    let r = compute_dcam(
        &mut model,
        &s,
        1,
        &DcamConfig {
            k: 4,
            only_correct: false,
            ..Default::default()
        },
    );
    for (t, &mu) in r.mu.iter().enumerate() {
        if mu == 0.0 {
            for dim in 0..3 {
                assert_eq!(r.dcam.at(&[dim, t]).unwrap(), 0.0);
            }
        }
    }
    // And μ must equal Σ_{d,p} M̄ / (2D) recomputed from mbar.
    let d = 3;
    for (t, &mu) in r.mu.iter().enumerate() {
        let mut sum = 0.0f32;
        for dim in 0..d {
            for p in 0..d {
                sum += r.mbar.at(&[dim, p, t]).unwrap();
            }
        }
        let expect = sum / (2.0 * d as f32);
        assert!((mu - expect).abs() < 1e-4, "t={t}: μ {mu} vs {expect}");
    }
}
