//! Gradient-descent optimizers.
//!
//! The paper trains with Adam (Kingma & Ba) and cross-entropy; plain SGD
//! with momentum is provided for ablations. Optimizers keep state indexed by
//! the position of each parameter in the model's stable `visit_params`
//! order, so one optimizer instance must stay paired with one model.

use crate::layers::Layer;
use dcam_tensor::Tensor;

/// A first-order optimizer stepping a model's parameters in place.
pub trait Optimizer {
    /// Applies one update step using the gradients currently accumulated in
    /// the model's parameters (does not zero them).
    fn step(&mut self, model: &mut dyn Layer);

    /// Current learning rate.
    fn learning_rate(&self) -> f32;

    /// Overrides the learning rate (e.g. for decay schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Stochastic gradient descent with optional classical momentum.
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Creates plain SGD (`momentum = 0`).
    pub fn new(lr: f32) -> Self {
        Sgd {
            lr,
            momentum: 0.0,
            velocity: Vec::new(),
        }
    }

    /// Creates SGD with classical momentum.
    pub fn with_momentum(lr: f32, momentum: f32) -> Self {
        assert!((0.0..1.0).contains(&momentum));
        Sgd {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, model: &mut dyn Layer) {
        let lr = self.lr;
        let momentum = self.momentum;
        let velocity = &mut self.velocity;
        let mut idx = 0;
        model.visit_params(&mut |p| {
            if momentum == 0.0 {
                let grads = p.grad.clone();
                p.value.axpy(-lr, &grads).expect("sgd step");
            } else {
                if velocity.len() == idx {
                    velocity.push(Tensor::zeros(p.value.dims()));
                }
                let v = &mut velocity[idx];
                v.scale_in_place(momentum);
                v.axpy(1.0, &p.grad).expect("velocity update");
                p.value.axpy(-lr, v).expect("sgd momentum step");
            }
            idx += 1;
        });
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam optimizer with bias-corrected first and second moments
/// (β₁ = 0.9, β₂ = 0.999, ε = 1e-8 — the defaults the paper uses).
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Creates Adam with standard hyperparameters.
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Creates Adam with custom betas.
    pub fn with_betas(lr: f32, beta1: f32, beta2: f32) -> Self {
        Adam {
            lr,
            beta1,
            beta2,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, model: &mut dyn Layer) {
        self.t += 1;
        let (lr, b1, b2, eps, t) = (self.lr, self.beta1, self.beta2, self.eps, self.t);
        let bc1 = 1.0 - b1.powi(t as i32);
        let bc2 = 1.0 - b2.powi(t as i32);
        let (m, v) = (&mut self.m, &mut self.v);
        let mut idx = 0;
        model.visit_params(&mut |p| {
            if m.len() == idx {
                m.push(Tensor::zeros(p.value.dims()));
                v.push(Tensor::zeros(p.value.dims()));
            }
            let mi = &mut m[idx];
            let vi = &mut v[idx];
            for ((mv, vv), (pv, gv)) in mi
                .data_mut()
                .iter_mut()
                .zip(vi.data_mut())
                .zip(p.value.data_mut().iter_mut().zip(p.grad.data()))
            {
                *mv = b1 * *mv + (1.0 - b1) * gv;
                *vv = b2 * *vv + (1.0 - b2) * gv * gv;
                let m_hat = *mv / bc1;
                let v_hat = *vv / bc2;
                *pv -= lr * m_hat / (v_hat.sqrt() + eps);
            }
            idx += 1;
        });
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Dense;
    use crate::loss::softmax_cross_entropy;
    use dcam_tensor::SeededRng;

    /// One optimizer step must reduce the loss on a fixed batch.
    fn loss_decreases(opt: &mut dyn Optimizer) {
        let mut rng = SeededRng::new(0);
        let mut model = Dense::new(4, 3, &mut rng);
        let x = Tensor::uniform(&[8, 4], -1.0, 1.0, &mut rng);
        let labels: Vec<usize> = (0..8).map(|i| i % 3).collect();
        let mut prev = f32::INFINITY;
        for _ in 0..50 {
            model.zero_grads();
            let logits = model.forward(&x, true);
            let (loss, grad) = softmax_cross_entropy(&logits, &labels);
            model.backward(&grad);
            opt.step(&mut model);
            prev = loss;
        }
        let logits = model.forward(&x, false);
        let (final_loss, _) = softmax_cross_entropy(&logits, &labels);
        assert!(
            final_loss < prev.max(1.2),
            "optimization diverged: {final_loss}"
        );
        assert!(
            final_loss < 1.0,
            "loss should drop below ln(3): {final_loss}"
        );
    }

    #[test]
    fn sgd_reduces_loss() {
        loss_decreases(&mut Sgd::new(0.5));
    }

    #[test]
    fn sgd_momentum_reduces_loss() {
        loss_decreases(&mut Sgd::with_momentum(0.2, 0.9));
    }

    #[test]
    fn adam_reduces_loss() {
        loss_decreases(&mut Adam::new(0.05));
    }

    #[test]
    fn adam_first_step_size_is_lr() {
        // With bias correction, the very first Adam update has magnitude ~lr
        // regardless of gradient scale.
        let mut rng = SeededRng::new(1);
        let mut model = Dense::new(2, 2, &mut rng);
        let before: Vec<f32> = {
            let mut vals = Vec::new();
            model.visit_params(&mut |p| vals.extend_from_slice(p.value.data()));
            vals
        };
        // Manually plant a gradient.
        model.visit_params(&mut |p| p.grad.fill(123.0));
        let mut adam = Adam::new(0.01);
        adam.step(&mut model);
        let mut after = Vec::new();
        model.visit_params(&mut |p| after.extend_from_slice(p.value.data()));
        for (b, a) in before.iter().zip(&after) {
            let delta = (b - a).abs();
            assert!((delta - 0.01).abs() < 1e-4, "step size {delta}");
        }
    }

    #[test]
    fn set_learning_rate_round_trips() {
        let mut opt = Adam::new(0.1);
        opt.set_learning_rate(0.02);
        assert_eq!(opt.learning_rate(), 0.02);
    }
}
