//! Inference precision selection and per-layer quantization state.
//!
//! The int8 path keeps f32 as the storage and training format: weights
//! stay f32 `Param`s, and quantized copies are derived on demand (keyed on
//! the layer's weight version, so optimizer steps and checkpoint restores
//! invalidate them). What *persists* per layer is only this module's
//! [`QuantState`]: the selected [`Precision`] plus the calibrated
//! per-tensor activation scale. Calibration is a recording pass — set
//! [`QuantState::calibrating`], run f32 forwards over a representative
//! batch so each layer tracks its input absolute maximum, then latch the
//! scales with [`QuantState::finish_calibration`].

use std::fmt;

/// Numeric precision of a model's inference path. Training always runs
/// f32; `Int8` only changes `forward_eval` (and the eval-mode dense
/// forward), quantizing per layer and dequantizing at layer boundaries.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Precision {
    /// Full-precision float path (the accuracy oracle).
    #[default]
    F32,
    /// Quantized path: per-output-channel 7-bit symmetric weights,
    /// per-tensor unsigned 8-bit activations, exact i32 accumulation.
    Int8,
}

impl Precision {
    /// Parses `"f32"` / `"int8"` (the CLI / env / wire spelling).
    pub fn parse(s: &str) -> Option<Precision> {
        match s {
            "f32" => Some(Precision::F32),
            "int8" => Some(Precision::Int8),
            _ => None,
        }
    }

    /// The canonical wire spelling (`"f32"` / `"int8"`).
    pub fn as_str(self) -> &'static str {
        match self {
            Precision::F32 => "f32",
            Precision::Int8 => "int8",
        }
    }
}

impl fmt::Display for Precision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Per-layer quantization state, visited through
/// [`Layer::visit_quant`](crate::layers::Layer::visit_quant).
#[derive(Clone, Debug, Default)]
pub struct QuantState {
    /// Selected inference precision. The quantized path additionally
    /// requires a calibrated [`QuantState::act_scale`] before it engages,
    /// so a model switched to `Int8` without calibration keeps serving
    /// f32 answers instead of garbage.
    pub precision: Precision,
    /// When set, eval-mode forwards record the input absolute maximum
    /// into [`QuantState::absmax`] and stay on the f32 path.
    pub calibrating: bool,
    /// Largest input magnitude observed during the current calibration
    /// pass.
    pub absmax: f32,
    /// Calibrated per-tensor activation scale (`absmax / 127`); `None`
    /// until a calibration pass or checkpoint restore provides one.
    pub act_scale: Option<f32>,
}

impl QuantState {
    /// True when the quantized kernels should run: precision is `Int8`,
    /// an activation scale has been calibrated, and this is not a
    /// calibration (recording) pass.
    pub fn engaged(&self) -> bool {
        self.precision == Precision::Int8 && !self.calibrating && self.act_scale.is_some()
    }

    /// Folds one observed input magnitude into the calibration record.
    #[inline]
    pub fn record(&mut self, absmax: f32) {
        if absmax > self.absmax {
            self.absmax = absmax;
        }
    }

    /// Ends a calibration pass, latching the recorded maximum into the
    /// activation scale.
    pub fn finish_calibration(&mut self) {
        self.calibrating = false;
        self.act_scale = Some(dcam_tensor::activation_scale(self.absmax));
    }
}
