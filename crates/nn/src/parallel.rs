//! Minimal data-parallel helpers built on `std::thread::scope`.
//!
//! The convolution kernels parallelize over batch samples: each sample's
//! output (or gradient) slice is disjoint, so work splits without locking.
//! Thread count defaults to the machine's available parallelism and can be
//! pinned with the `DCAM_THREADS` environment variable (useful to make
//! benchmark runs comparable).

/// Number of worker threads used by the parallel helpers — the single
/// workspace-wide setting, shared with the GEMM row-band split so
/// `DCAM_THREADS` governs every parallel path identically.
pub fn thread_count() -> usize {
    dcam_tensor::thread_count()
}

/// Splits `out` into consecutive `chunk_len`-sized pieces and calls
/// `f(chunk_index, chunk)` for each, distributing chunks across threads.
///
/// `out.len()` must be a multiple of `chunk_len`. Falls back to a sequential
/// loop when only one thread is available or there is a single chunk.
pub fn par_chunk_zip<F>(out: &mut [f32], chunk_len: usize, f: &F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    assert!(chunk_len > 0, "chunk_len must be positive");
    assert_eq!(out.len() % chunk_len, 0, "output not divisible into chunks");
    let n_chunks = out.len() / chunk_len;
    let threads = thread_count().min(n_chunks);
    if threads <= 1 {
        for (i, c) in out.chunks_mut(chunk_len).enumerate() {
            f(i, c);
        }
        return;
    }
    let mut buckets: Vec<Vec<(usize, &mut [f32])>> = (0..threads)
        .map(|_| Vec::with_capacity(n_chunks / threads + 1))
        .collect();
    for (i, c) in out.chunks_mut(chunk_len).enumerate() {
        buckets[i % threads].push((i, c));
    }
    std::thread::scope(|s| {
        for bucket in buckets {
            s.spawn(move || {
                for (i, c) in bucket {
                    f(i, c);
                }
            });
        }
    });
}

/// Runs `f(item, local_accumulator)` for every item in `0..n_items`,
/// giving each thread a private `acc_len` accumulator, and returns the
/// elementwise sum of all thread-local accumulators.
///
/// Used for weight gradients: samples contribute additively, so per-thread
/// partial sums followed by one reduction avoid both locks and races.
pub fn par_accumulate<F>(n_items: usize, acc_len: usize, f: &F) -> Vec<f32>
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    let threads = thread_count().min(n_items.max(1));
    if threads <= 1 {
        let mut acc = vec![0.0f32; acc_len];
        for i in 0..n_items {
            f(i, &mut acc);
        }
        return acc;
    }
    let partials: Vec<Vec<f32>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                s.spawn(move || {
                    let mut acc = vec![0.0f32; acc_len];
                    let mut i = t;
                    while i < n_items {
                        f(i, &mut acc);
                        i += threads;
                    }
                    acc
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });

    let mut total = vec![0.0f32; acc_len];
    for p in partials {
        for (t, v) in total.iter_mut().zip(p) {
            *t += v;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_chunk_zip_touches_every_chunk_once() {
        let mut out = vec![0.0f32; 24];
        par_chunk_zip(&mut out, 4, &|i, chunk| {
            for (j, c) in chunk.iter_mut().enumerate() {
                *c = (i * 4 + j) as f32;
            }
        });
        let want: Vec<f32> = (0..24).map(|i| i as f32).collect();
        assert_eq!(out, want);
    }

    #[test]
    fn par_accumulate_sums_all_items() {
        // Each item i adds i to slot i % 3.
        let acc = par_accumulate(100, 3, &|i, acc| {
            acc[i % 3] += i as f32;
        });
        let mut want = vec![0.0f32; 3];
        for i in 0..100 {
            want[i % 3] += i as f32;
        }
        assert_eq!(acc, want);
    }

    #[test]
    fn par_accumulate_zero_items() {
        let acc = par_accumulate(0, 4, &|_, _| panic!("should not run"));
        assert_eq!(acc, vec![0.0; 4]);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn par_chunk_zip_rejects_ragged() {
        let mut out = vec![0.0f32; 5];
        par_chunk_zip(&mut out, 2, &|_, _| {});
    }
}
