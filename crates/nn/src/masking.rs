//! Slice-level perturbation kernels for the explanation-faithfulness
//! harness (Serramazza et al. 2023): replace masked samples of one series
//! row with a neutral value, or bridge them by linear interpolation from
//! the surviving neighbours.
//!
//! The kernels operate on raw `&mut [f32]` rows plus a parallel `&[bool]`
//! mask so they stay independent of any series container; `dcam-eval`
//! applies them per dimension of an owned series when building the masked
//! re-classification sweeps.

/// Replaces every sample with `masked[t] == true` by `value`.
///
/// # Panics
///
/// Panics when `row` and `masked` disagree on length.
pub fn fill_masked(row: &mut [f32], masked: &[bool], value: f32) {
    assert_eq!(row.len(), masked.len(), "mask/row length mismatch");
    for (x, &m) in row.iter_mut().zip(masked) {
        if m {
            *x = value;
        }
    }
}

/// Replaces every masked run by linear interpolation between the nearest
/// surviving samples on each side.
///
/// Runs touching the row's start (or end) have only one surviving
/// neighbour and extend it as a constant; a fully masked row falls back
/// to `0.0` (there is nothing left to interpolate from).
///
/// # Panics
///
/// Panics when `row` and `masked` disagree on length.
pub fn interp_masked(row: &mut [f32], masked: &[bool]) {
    assert_eq!(row.len(), masked.len(), "mask/row length mismatch");
    let n = row.len();
    let mut t = 0;
    while t < n {
        if !masked[t] {
            t += 1;
            continue;
        }
        // Masked run [t, end).
        let mut end = t;
        while end < n && masked[end] {
            end += 1;
        }
        let left = (t > 0).then(|| row[t - 1]);
        let right = (end < n).then(|| row[end]);
        match (left, right) {
            (Some(a), Some(b)) => {
                // Interpolate strictly between the two anchors: position
                // t-1 holds `a`, position `end` holds `b`.
                let span = (end - (t - 1)) as f32;
                for (i, x) in row[t..end].iter_mut().enumerate() {
                    let frac = (i + 1) as f32 / span;
                    *x = a + (b - a) * frac;
                }
            }
            (Some(a), None) => row[t..end].fill(a),
            (None, Some(b)) => row[t..end].fill(b),
            (None, None) => row[t..end].fill(0.0),
        }
        t = end;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_replaces_only_masked_cells() {
        let mut row = [1.0, 2.0, 3.0, 4.0];
        fill_masked(&mut row, &[false, true, true, false], -1.0);
        assert_eq!(row, [1.0, -1.0, -1.0, 4.0]);
    }

    #[test]
    fn fill_with_empty_mask_is_identity() {
        let mut row = [0.5, -0.5, 2.0];
        let orig = row;
        fill_masked(&mut row, &[false; 3], 9.0);
        assert_eq!(row, orig);
    }

    #[test]
    fn interp_bridges_interior_run() {
        let mut row = [0.0, 9.0, 9.0, 9.0, 4.0];
        interp_masked(&mut row, &[false, true, true, true, false]);
        assert_eq!(row, [0.0, 1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn interp_extends_edges_as_constants() {
        let mut row = [7.0, 7.0, 2.0, 8.0, 8.0];
        interp_masked(&mut row, &[true, true, false, true, true]);
        assert_eq!(row, [2.0, 2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn interp_fully_masked_row_zeroes() {
        let mut row = [3.0, 4.0, 5.0];
        interp_masked(&mut row, &[true; 3]);
        assert_eq!(row, [0.0, 0.0, 0.0]);
    }

    #[test]
    fn interp_two_separate_runs() {
        let mut row = [0.0, 9.0, 2.0, 9.0, 9.0, 8.0];
        interp_masked(&mut row, &[false, true, false, true, true, false]);
        assert_eq!(row, [0.0, 1.0, 2.0, 4.0, 6.0, 8.0]);
    }
}
