//! Finite-difference gradient checking.
//!
//! Every layer's analytic backward pass in this crate is validated against
//! central finite differences of a scalar probe loss `L = Σ R ⊙ forward(x)`,
//! where `R` is a fixed random weighting. With `f32` arithmetic, tolerances
//! are necessarily loose (relative error ~1e-2); the check still catches any
//! structural mistake (wrong index, missing term, transposed matrix), which
//! is what gradient bugs in hand-written backprop actually look like.

use crate::layers::Layer;
use dcam_tensor::{SeededRng, Tensor};

/// Result of a gradient check: worst relative error over parameters and input.
#[derive(Debug, Clone, Copy)]
pub struct GradCheckReport {
    /// Maximum relative error across all parameter elements.
    pub max_param_err: f32,
    /// Maximum relative error across all input elements.
    pub max_input_err: f32,
}

impl GradCheckReport {
    /// True when both errors are within `tol`.
    pub fn passes(&self, tol: f32) -> bool {
        self.max_param_err <= tol && self.max_input_err <= tol
    }
}

fn rel_err(analytic: f32, numeric: f32) -> f32 {
    let denom = analytic.abs().max(numeric.abs()).max(1.0);
    (analytic - numeric).abs() / denom
}

/// Probe loss: sum of the layer output weighted by fixed random `r`.
fn probe_loss(layer: &mut dyn Layer, x: &Tensor, r: &Tensor) -> f32 {
    let y = layer.forward(x, false);
    y.data()
        .iter()
        .zip(r.data())
        .map(|(a, b)| (a * b) as f64)
        .sum::<f64>() as f32
}

/// Checks a layer's parameter and input gradients at point `x`.
///
/// `eps` is the finite-difference step (1e-2 works well for f32 with inputs
/// of unit scale). The layer is restored to its original parameters.
pub fn check_layer(layer: &mut dyn Layer, x: &Tensor, eps: f32, seed: u64) -> GradCheckReport {
    let mut rng = SeededRng::new(seed);
    // Shape of output needed for the probe weights: do a dry forward.
    let y = layer.forward(x, false);
    let r = Tensor::uniform(y.dims(), -1.0, 1.0, &mut rng);

    // Analytic gradients.
    layer.zero_grads();
    let _ = layer.forward(x, true);
    let grad_x = layer.backward(&r);

    // Collect analytic parameter grads.
    let mut analytic_param_grads: Vec<Vec<f32>> = Vec::new();
    layer.visit_params(&mut |p| analytic_param_grads.push(p.grad.data().to_vec()));

    // Numeric parameter gradients (central differences).
    let mut max_param_err = 0.0f32;
    let n_params = analytic_param_grads.len();
    for pi in 0..n_params {
        let plen = analytic_param_grads[pi].len();
        for ei in 0..plen {
            // Nudge +eps.
            with_param(layer, pi, ei, eps);
            let fp = probe_loss(layer, x, &r);
            // Nudge -2eps (net -eps).
            with_param(layer, pi, ei, -2.0 * eps);
            let fm = probe_loss(layer, x, &r);
            // Restore.
            with_param(layer, pi, ei, eps);
            let numeric = (fp - fm) / (2.0 * eps);
            let err = rel_err(analytic_param_grads[pi][ei], numeric);
            max_param_err = max_param_err.max(err);
        }
    }

    // Numeric input gradients.
    let mut max_input_err = 0.0f32;
    let mut xp = x.clone();
    for ei in 0..x.len() {
        let orig = xp.data()[ei];
        xp.data_mut()[ei] = orig + eps;
        let fp = probe_loss(layer, &xp, &r);
        xp.data_mut()[ei] = orig - eps;
        let fm = probe_loss(layer, &xp, &r);
        xp.data_mut()[ei] = orig;
        let numeric = (fp - fm) / (2.0 * eps);
        let err = rel_err(grad_x.data()[ei], numeric);
        max_input_err = max_input_err.max(err);
    }

    GradCheckReport {
        max_param_err,
        max_input_err,
    }
}

/// Like [`check_layer`] but probes in **train mode**, which is required for
/// layers whose eval path differs from the differentiated train path
/// (BatchNorm normalizes with running statistics at eval time). Train-mode
/// batch-norm output is a pure function of parameters and input (running
/// stats only accumulate, they are not read), so central differences are
/// exact up to f32 noise.
pub fn check_layer_train(
    layer: &mut dyn Layer,
    x: &Tensor,
    eps: f32,
    seed: u64,
) -> GradCheckReport {
    let mut rng = SeededRng::new(seed);
    let y = layer.forward(x, true);
    let r = Tensor::uniform(y.dims(), -1.0, 1.0, &mut rng);
    let _ = layer.backward(&r); // drain the shape-probe cache

    layer.zero_grads();
    let _ = layer.forward(x, true);
    let grad_x = layer.backward(&r);
    let mut analytic: Vec<Vec<f32>> = Vec::new();
    layer.visit_params(&mut |p| analytic.push(p.grad.data().to_vec()));

    let probe = |layer: &mut dyn Layer, x: &Tensor| -> f32 {
        let y = layer.forward(x, true);
        let l = y
            .data()
            .iter()
            .zip(r.data())
            .map(|(a, b)| (a * b) as f64)
            .sum::<f64>() as f32;
        let _ = layer.backward(&r); // drain cache; grads polluted but unused
        l
    };

    let mut max_param_err = 0.0f32;
    for pi in 0..analytic.len() {
        for ei in 0..analytic[pi].len() {
            with_param(layer, pi, ei, eps);
            let fp = probe(layer, x);
            with_param(layer, pi, ei, -2.0 * eps);
            let fm = probe(layer, x);
            with_param(layer, pi, ei, eps);
            let numeric = (fp - fm) / (2.0 * eps);
            max_param_err = max_param_err.max(rel_err(analytic[pi][ei], numeric));
        }
    }
    let mut max_input_err = 0.0f32;
    let mut xp = x.clone();
    for ei in 0..x.len() {
        let orig = xp.data()[ei];
        xp.data_mut()[ei] = orig + eps;
        let fp = probe(layer, &xp);
        xp.data_mut()[ei] = orig - eps;
        let fm = probe(layer, &xp);
        xp.data_mut()[ei] = orig;
        let numeric = (fp - fm) / (2.0 * eps);
        max_input_err = max_input_err.max(rel_err(grad_x.data()[ei], numeric));
    }
    GradCheckReport {
        max_param_err,
        max_input_err,
    }
}

fn with_param(layer: &mut dyn Layer, pi: usize, ei: usize, delta: f32) {
    let mut idx = 0;
    layer.visit_params(&mut |p| {
        if idx == pi {
            p.value.data_mut()[ei] += delta;
        }
        idx += 1;
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{
        BatchNorm, Conv2dRows, Dense, GlobalAvgPool, Layer, MaxPoolW, Relu, Residual, Sequential,
        Sigmoid, Tanh,
    };
    use crate::recurrent::{Gru, Lstm, Rnn};

    const TOL: f32 = 2e-2;
    const EPS: f32 = 1e-2;

    fn assert_passes(layer: &mut dyn Layer, x: &Tensor, name: &str) {
        let report = check_layer(layer, x, EPS, 12345);
        assert!(
            report.passes(TOL),
            "{name} failed gradcheck: param {:.4}, input {:.4}",
            report.max_param_err,
            report.max_input_err
        );
    }

    #[test]
    fn dense_gradients() {
        let mut rng = SeededRng::new(0);
        let mut layer = Dense::new(5, 4, &mut rng);
        let x = Tensor::uniform(&[3, 5], -1.0, 1.0, &mut rng);
        assert_passes(&mut layer, &x, "Dense");
    }

    #[test]
    fn conv_gradients_same_padding() {
        let mut rng = SeededRng::new(1);
        let mut layer = Conv2dRows::same(2, 3, 3, &mut rng);
        let x = Tensor::uniform(&[2, 2, 2, 7], -1.0, 1.0, &mut rng);
        assert_passes(&mut layer, &x, "Conv2dRows(same)");
    }

    #[test]
    fn conv_gradients_strided_no_padding() {
        let mut rng = SeededRng::new(2);
        let mut layer = Conv2dRows::new(2, 2, 4, 2, 0, &mut rng);
        let x = Tensor::uniform(&[2, 2, 1, 12], -1.0, 1.0, &mut rng);
        assert_passes(&mut layer, &x, "Conv2dRows(stride 2)");
    }

    #[test]
    fn conv_gradients_even_kernel_same_padding() {
        let mut rng = SeededRng::new(14);
        let mut layer = Conv2dRows::same(2, 2, 4, &mut rng);
        let x = Tensor::uniform(&[2, 2, 1, 9], -1.0, 1.0, &mut rng);
        assert_passes(&mut layer, &x, "Conv2dRows(even same)");
    }

    #[test]
    fn conv_gradients_multi_row() {
        let mut rng = SeededRng::new(3);
        let mut layer = Conv2dRows::same(3, 2, 5, &mut rng);
        let x = Tensor::uniform(&[1, 3, 4, 9], -1.0, 1.0, &mut rng);
        assert_passes(&mut layer, &x, "Conv2dRows(multi-row)");
    }

    #[test]
    fn batchnorm_gradients() {
        let mut rng = SeededRng::new(4);
        let mut layer = BatchNorm::new(2);
        let x = Tensor::uniform(&[3, 2, 2, 4], -1.0, 1.0, &mut rng);
        // BatchNorm differs between train and eval; the probe uses eval mode
        // after a train-mode forward, so running stats shift slightly. Use a
        // dedicated check: analytic backward in train mode vs numeric in
        // train mode via a custom probe.
        let report = check_layer_train(&mut layer, &x, EPS, 99);
        assert!(
            report.passes(6e-2),
            "BatchNorm failed: param {:.4}, input {:.4}",
            report.max_param_err,
            report.max_input_err
        );
    }

    #[test]
    fn activations_gradients() {
        let mut rng = SeededRng::new(5);
        // Offset away from ReLU's kink at 0 to keep finite differences valid.
        let x = Tensor::uniform(&[4, 6], 0.1, 1.0, &mut rng);
        assert_passes(&mut Relu::new(), &x, "Relu");
        let x2 = Tensor::uniform(&[4, 6], -1.0, 1.0, &mut rng);
        assert_passes(&mut Tanh::new(), &x2, "Tanh");
        assert_passes(&mut Sigmoid::new(), &x2, "Sigmoid");
    }

    #[test]
    fn pooling_gradients() {
        let mut rng = SeededRng::new(6);
        let x = Tensor::uniform(&[2, 3, 2, 6], -1.0, 1.0, &mut rng);
        assert_passes(&mut GlobalAvgPool::new(), &x, "GlobalAvgPool");
        // MaxPool has kinks where elements tie; random input avoids ties a.s.
        assert_passes(&mut MaxPoolW::new(2, 2, 0), &x, "MaxPoolW");
    }

    #[test]
    fn sequential_conv_relu_gap_dense_gradients() {
        // Seed re-rolled from 7: that draw placed a pre-activation within
        // eps of a ReLU kink, where central differences disagree with the
        // (correct) one-sided analytic gradient by construction.
        let mut rng = SeededRng::new(17);
        let mut features = Sequential::new()
            .push(Conv2dRows::same(2, 3, 3, &mut rng))
            .push(Relu::new())
            .push(GlobalAvgPool::new())
            .push(Dense::new(3, 2, &mut rng));
        let x = Tensor::uniform(&[2, 2, 2, 8], -1.0, 1.0, &mut rng);
        assert_passes(&mut features, &x, "Sequential CNN head");
    }

    #[test]
    fn residual_block_gradients() {
        let mut rng = SeededRng::new(8);
        let main = Sequential::new()
            .push(Conv2dRows::same(2, 2, 3, &mut rng))
            .push(Tanh::new());
        let mut res = Residual::identity(main);
        let x = Tensor::uniform(&[2, 2, 1, 6], -1.0, 1.0, &mut rng);
        assert_passes(&mut res, &x, "Residual(identity)");

        let main2 = Sequential::new().push(Conv2dRows::same(2, 4, 3, &mut rng));
        let short = Sequential::new().push(Conv2dRows::new(2, 4, 1, 1, 0, &mut rng));
        let mut res2 = Residual::with_shortcut(main2, short);
        assert_passes(&mut res2, &x, "Residual(projection)");
    }

    #[test]
    fn rnn_gradients() {
        let mut rng = SeededRng::new(9);
        let mut rnn = Rnn::new(2, 3, &mut rng);
        let x = Tensor::uniform(&[2, 2, 4], -1.0, 1.0, &mut rng);
        assert_passes(&mut rnn, &x, "Rnn");
    }

    #[test]
    fn lstm_gradients() {
        let mut rng = SeededRng::new(10);
        let mut lstm = Lstm::new(2, 3, &mut rng);
        let x = Tensor::uniform(&[2, 2, 4], -1.0, 1.0, &mut rng);
        assert_passes(&mut lstm, &x, "Lstm");
    }

    #[test]
    fn gru_gradients() {
        let mut rng = SeededRng::new(11);
        let mut gru = Gru::new(2, 3, &mut rng);
        let x = Tensor::uniform(&[2, 2, 4], -1.0, 1.0, &mut rng);
        assert_passes(&mut gru, &x, "Gru");
    }
}
