//! Buffer arena for the allocation-free inference path.
//!
//! The evaluation forward of a deep net ping-pongs between a handful of
//! activation buffers whose sizes are fixed by the largest mega-batch it
//! serves. [`BatchArena`] keeps those buffers alive between layers and
//! between forward calls: a layer *takes* a destination buffer, moves its
//! (consumed) input buffer back into the arena, and the next mega-batch —
//! or the next layer — reuses them. After the first forward at a given
//! mega-batch size, the steady state performs no allocation and no
//! redundant zeroing; the arena's footprint is keyed on the largest batch
//! it has seen.

/// A recycling pool of `f32` buffers shared by an inference session.
///
/// Buffers handed out by [`BatchArena::take`] contain arbitrary stale data;
/// the caller contract is to fully overwrite them (every consumer in the
/// eval path writes its complete output). [`BatchArena::give`] returns a
/// buffer to the pool; [`BatchArena::recycle`] does the same for a spent
/// `Tensor`.
#[derive(Debug, Default)]
pub struct BatchArena {
    free: Vec<Vec<f32>>,
}

impl BatchArena {
    /// Maximum number of pooled buffers (see [`BatchArena::give`]).
    pub const MAX_POOLED: usize = 16;

    /// An empty arena.
    pub fn new() -> Self {
        BatchArena::default()
    }

    /// Hands out a buffer of exactly `len` elements with **arbitrary
    /// contents**: the best-fitting free buffer (smallest capacity ≥ `len`),
    /// else the largest free buffer grown to size, else a fresh allocation.
    pub fn take(&mut self, len: usize) -> Vec<f32> {
        let mut pick: Option<usize> = None;
        for (i, b) in self.free.iter().enumerate() {
            let better = match pick {
                None => true,
                Some(j) => {
                    let (cp, cj) = (b.capacity(), self.free[j].capacity());
                    if cj >= len {
                        cp >= len && cp < cj
                    } else {
                        cp > cj
                    }
                }
            };
            if better {
                pick = Some(i);
            }
        }
        let mut buf = match pick {
            Some(i) => self.free.swap_remove(i),
            None => Vec::new(),
        };
        buf.resize(len, 0.0);
        buf
    }

    /// Returns a buffer to the pool for reuse.
    ///
    /// The pool is capped at [`BatchArena::MAX_POOLED`] buffers: execution
    /// paths that donate buffers without ever taking any (the direct-conv
    /// fallback allocates its outputs itself) must not grow a long-lived
    /// arena without bound. When full, the incoming buffer replaces the
    /// smallest pooled one if it is larger, and is dropped otherwise.
    pub fn give(&mut self, buf: Vec<f32>) {
        if buf.capacity() == 0 {
            return;
        }
        if self.free.len() < Self::MAX_POOLED {
            self.free.push(buf);
            return;
        }
        if let Some(smallest) = (0..self.free.len()).min_by_key(|&i| self.free[i].capacity()) {
            if self.free[smallest].capacity() < buf.capacity() {
                self.free[smallest] = buf;
            }
        }
    }

    /// Returns a spent tensor's backing storage to the pool.
    pub fn recycle(&mut self, t: dcam_tensor::Tensor) {
        self.give(t.into_vec());
    }

    /// Number of buffers currently pooled (for tests/diagnostics).
    pub fn pooled(&self) -> usize {
        self.free.len()
    }

    /// Total pooled capacity in elements (for tests/diagnostics).
    pub fn pooled_elems(&self) -> usize {
        self.free.iter().map(|b| b.capacity()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_prefers_best_fit() {
        let mut a = BatchArena::new();
        a.give(Vec::with_capacity(100));
        a.give(Vec::with_capacity(10));
        let b = a.take(8);
        assert!(
            b.capacity() >= 8 && b.capacity() < 100,
            "picked the big one"
        );
        assert_eq!(b.len(), 8);
        assert_eq!(a.pooled(), 1);
    }

    #[test]
    fn take_grows_largest_when_nothing_fits() {
        let mut a = BatchArena::new();
        a.give(Vec::with_capacity(4));
        a.give(Vec::with_capacity(16));
        let b = a.take(32);
        assert_eq!(b.len(), 32);
        // The 16-capacity buffer was grown; the 4-capacity one remains.
        assert_eq!(a.pooled(), 1);
        assert!(a.pooled_elems() <= 8);
    }

    #[test]
    fn pool_is_capped() {
        let mut a = BatchArena::new();
        for i in 0..3 * BatchArena::MAX_POOLED {
            a.give(Vec::with_capacity(8 + i));
        }
        assert_eq!(a.pooled(), BatchArena::MAX_POOLED);
        // The survivors are the largest donations.
        let min_cap = 8 + 3 * BatchArena::MAX_POOLED - BatchArena::MAX_POOLED;
        for i in 0..BatchArena::MAX_POOLED {
            let b = a.take(1);
            assert!(b.capacity() >= min_cap, "buffer {i} too small");
        }
    }

    #[test]
    fn steady_state_reuses_one_buffer() {
        let mut a = BatchArena::new();
        let b = a.take(64);
        let ptr = b.as_ptr();
        a.give(b);
        let b2 = a.take(64);
        assert_eq!(b2.as_ptr(), ptr, "buffer was not reused");
    }
}
