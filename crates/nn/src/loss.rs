//! Softmax cross-entropy loss, the paper's training objective.

use dcam_tensor::Tensor;

/// Numerically stable softmax over the last axis of a `(N, K)` tensor.
pub fn softmax(logits: &Tensor) -> Tensor {
    let d = logits.dims();
    assert_eq!(d.len(), 2, "softmax expects (N, K), got {d:?}");
    let (n, k) = (d[0], d[1]);
    let mut out = Tensor::zeros(&[n, k]);
    for ni in 0..n {
        let row = &logits.data()[ni * k..(ni + 1) * k];
        let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut denom = 0.0f32;
        let o = &mut out.data_mut()[ni * k..(ni + 1) * k];
        for (ov, &lv) in o.iter_mut().zip(row) {
            let e = (lv - m).exp();
            *ov = e;
            denom += e;
        }
        for ov in o.iter_mut() {
            *ov /= denom;
        }
    }
    out
}

/// Mean softmax cross-entropy over a batch, plus the gradient w.r.t. logits.
///
/// Returns `(loss, grad)` where `grad[n, k] = (softmax − onehot)/N`, ready to
/// feed straight into the network's `backward`.
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
    let d = logits.dims();
    assert_eq!(d.len(), 2, "loss expects (N, K) logits");
    let (n, k) = (d[0], d[1]);
    assert_eq!(labels.len(), n, "label count must match batch");
    let probs = softmax(logits);
    let mut loss = 0.0f64;
    let mut grad = probs.clone();
    let inv_n = 1.0 / n as f32;
    for (ni, &label) in labels.iter().enumerate() {
        assert!(label < k, "label {label} out of range for {k} classes");
        let p = probs.data()[ni * k + label].max(1e-12);
        loss -= (p as f64).ln();
        let row = &mut grad.data_mut()[ni * k..(ni + 1) * k];
        row[label] -= 1.0;
        for g in row.iter_mut() {
            *g *= inv_n;
        }
    }
    ((loss / n as f64) as f32, grad)
}

/// Predicted class per batch row (shared lowest-index-tie-break argmax).
pub fn predictions(logits: &Tensor) -> Vec<usize> {
    let d = logits.dims();
    assert_eq!(d.len(), 2);
    let (n, k) = (d[0], d[1]);
    (0..n)
        .map(|ni| dcam_tensor::argmax(&logits.data()[ni * k..(ni + 1) * k]).unwrap_or(0))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let logits = Tensor::from_vec(vec![1.0, 2.0, 3.0, -10.0, 0.0, 10.0], &[2, 3]).unwrap();
        let p = softmax(&logits);
        for ni in 0..2 {
            let s: f32 = p.data()[ni * 3..(ni + 1) * 3].iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
        // Large logits dominate.
        assert!(p.at(&[1, 2]).unwrap() > 0.999);
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]).unwrap();
        let b = Tensor::from_vec(vec![101.0, 102.0, 103.0], &[1, 3]).unwrap();
        assert!(softmax(&a).allclose(&softmax(&b), 1e-6));
    }

    #[test]
    fn uniform_logits_give_ln_k_loss() {
        let logits = Tensor::zeros(&[4, 5]);
        let (loss, _) = softmax_cross_entropy(&logits, &[0, 1, 2, 3]);
        assert!((loss - (5.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn perfect_prediction_has_near_zero_loss() {
        let logits = Tensor::from_vec(vec![30.0, 0.0, 0.0, 0.0, 30.0, 0.0], &[2, 3]).unwrap();
        let (loss, grad) = softmax_cross_entropy(&logits, &[0, 1]);
        assert!(loss < 1e-6);
        assert!(grad.data().iter().all(|g| g.abs() < 1e-6));
    }

    #[test]
    fn grad_matches_finite_difference() {
        let logits = Tensor::from_vec(vec![0.5, -0.3, 0.8, 0.1, 0.0, -0.2], &[2, 3]).unwrap();
        let labels = [2usize, 0];
        let (_, grad) = softmax_cross_entropy(&logits, &labels);
        let eps = 1e-3;
        for i in 0..logits.len() {
            let mut lp = logits.clone();
            lp.data_mut()[i] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[i] -= eps;
            let (fp, _) = softmax_cross_entropy(&lp, &labels);
            let (fm, _) = softmax_cross_entropy(&lm, &labels);
            let numeric = (fp - fm) / (2.0 * eps);
            assert!(
                (numeric - grad.data()[i]).abs() < 1e-3,
                "element {i}: numeric {numeric} vs analytic {}",
                grad.data()[i]
            );
        }
    }

    #[test]
    fn predictions_pick_argmax() {
        let logits = Tensor::from_vec(vec![0.1, 0.9, 0.0, 2.0, -1.0, 1.0], &[2, 3]).unwrap();
        assert_eq!(predictions(&logits), vec![1, 0]);
    }
}
