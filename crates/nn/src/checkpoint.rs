//! Model checkpointing: save and restore the parameters of any [`Layer`].
//!
//! The paper's workflow trains once and explains many times; persisting the
//! trained weights makes that practical. Parameters are captured in the
//! model's stable `visit_params` order, so a checkpoint can only be restored
//! into an identically constructed architecture — shapes are verified on
//! load.
//!
//! Two persistence formats exist:
//!
//! * the **versioned binary format** ([`Checkpoint::to_bytes`] /
//!   [`Checkpoint::from_bytes`], [`save_binary`] / [`load_binary`]) — an
//!   8-byte magic, a format-version word, an FNV-1a payload checksum, a
//!   free-form architecture-descriptor string, and the raw `f32`
//!   parameters. This is the format models cross process boundaries in
//!   (the `dcam-server` model registry loads it for hot swaps). Corrupt,
//!   truncated or future-versioned bytes surface as typed
//!   [`CheckpointError`]s, never panics;
//! * a JSON dump behind the `serde` feature (`save_file` / `load_file`),
//!   kept for debugging.

use crate::layers::Layer;
use dcam_tensor::Tensor;
use std::fmt;
use std::path::{Path, PathBuf};

/// A snapshot of every trainable parameter of a model.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Checkpoint {
    /// Free-form tag (e.g. architecture name) checked on restore.
    pub tag: String,
    /// Free-form architecture descriptor carried alongside the weights so
    /// a loader that only has the file can rebuild the network before
    /// restoring into it (`dcam::arch::ArchDescriptor` renders into /
    /// parses from this). Empty when the checkpoint never leaves the
    /// process.
    pub arch: String,
    /// Parameter values in `visit_params` order.
    pub params: Vec<Tensor>,
    /// Non-trainable buffers (batch-norm running statistics) in
    /// `visit_buffers` order.
    pub buffers: Vec<Vec<f32>>,
    /// Calibrated int8 activation scales in `visit_quant` order, one per
    /// quantization-capable layer; `0.0` encodes "no scale calibrated".
    /// Empty for models that never calibrated — such checkpoints are
    /// written in binary format version 1, byte-identical to pre-quant
    /// builds; a non-empty vector bumps the written version to 2.
    #[cfg_attr(feature = "serde", serde(default))]
    pub quant: Vec<f32>,
}

/// Errors from checkpoint restore / IO.
#[derive(Debug)]
pub enum CheckpointError {
    /// The checkpoint's tag does not match the model's.
    TagMismatch {
        /// Tag stored in the checkpoint.
        stored: String,
        /// Tag expected by the caller.
        expected: String,
    },
    /// Parameter count differs between checkpoint and model.
    ParamCountMismatch {
        /// Parameters in the checkpoint.
        stored: usize,
        /// Parameters in the model.
        model: usize,
    },
    /// The checkpoint carries int8 activation scales for a different
    /// number of quantization-capable layers than the model has.
    QuantCountMismatch {
        /// Scales in the checkpoint.
        stored: usize,
        /// Quantization-capable layers in the model.
        model: usize,
    },
    /// A parameter's shape differs.
    ShapeMismatch {
        /// Index in `visit_params` order.
        index: usize,
        /// Shape in the checkpoint.
        stored: Vec<usize>,
        /// Shape in the model.
        model: Vec<usize>,
    },
    /// The bytes do not start with the checkpoint magic — whatever the
    /// file is, it is not a dCAM checkpoint.
    NotACheckpoint,
    /// The checkpoint was written by a format version this build does not
    /// understand.
    UnsupportedVersion {
        /// Version stored in the file.
        found: u32,
        /// Newest version this build reads.
        supported: u32,
    },
    /// Structurally invalid bytes: truncated payload, impossible lengths,
    /// or trailing garbage. The message names the offending section.
    Malformed(String),
    /// The payload checksum does not match — the bytes were corrupted
    /// after the checkpoint was written.
    ChecksumMismatch {
        /// Checksum stored in the header.
        stored: u64,
        /// Checksum of the payload as read.
        computed: u64,
    },
    /// Filesystem or serialization failure.
    Io(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::TagMismatch { stored, expected } => {
                write!(
                    f,
                    "checkpoint tag {stored:?} does not match expected {expected:?}"
                )
            }
            CheckpointError::ParamCountMismatch { stored, model } => {
                write!(f, "checkpoint has {stored} parameters, model has {model}")
            }
            CheckpointError::QuantCountMismatch { stored, model } => {
                write!(
                    f,
                    "checkpoint has {stored} activation scales, model has {model} \
                     quantization-capable layers"
                )
            }
            CheckpointError::ShapeMismatch {
                index,
                stored,
                model,
            } => {
                write!(
                    f,
                    "parameter {index}: checkpoint shape {stored:?} vs model {model:?}"
                )
            }
            CheckpointError::NotACheckpoint => {
                write!(f, "not a dCAM checkpoint (bad magic)")
            }
            CheckpointError::UnsupportedVersion { found, supported } => {
                write!(
                    f,
                    "checkpoint format version {found} not supported (this build reads \
                     up to {supported})"
                )
            }
            CheckpointError::Malformed(msg) => write!(f, "malformed checkpoint: {msg}"),
            CheckpointError::ChecksumMismatch { stored, computed } => {
                write!(
                    f,
                    "checkpoint checksum mismatch: header says {stored:#018x}, \
                     payload hashes to {computed:#018x}"
                )
            }
            CheckpointError::Io(e) => write!(f, "checkpoint IO error: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Captures a checkpoint from a model.
///
/// Calibrated int8 activation scales (if any layer carries one) are
/// captured alongside the weights, so restoring the checkpoint into a
/// fresh replica reproduces the quantized model without re-calibrating.
pub fn save(model: &mut dyn Layer, tag: impl Into<String>) -> Checkpoint {
    let mut params = Vec::new();
    model.visit_params(&mut |p| params.push(p.value.clone()));
    let mut buffers = Vec::new();
    model.visit_buffers(&mut |b| buffers.push(b.clone()));
    let mut quant = Vec::new();
    let mut any_scale = false;
    model.visit_quant(&mut |q| {
        let s = q.act_scale.unwrap_or(0.0);
        any_scale |= s != 0.0;
        quant.push(s);
    });
    if !any_scale {
        // Never-calibrated models keep the version-1 byte layout.
        quant.clear();
    }
    Checkpoint {
        tag: tag.into(),
        arch: String::new(),
        params,
        buffers,
        quant,
    }
}

/// Magic prefix of the binary checkpoint format.
const MAGIC: &[u8; 8] = b"DCAMCKPT";
/// Version written for checkpoints without quantization scales — the
/// original layout, still produced so non-quantized checkpoints stay
/// readable by older builds.
const FORMAT_V1: u32 = 1;
/// Newest binary format version this build writes and reads. Version 2
/// appends the int8 activation-scale section after the buffers.
const FORMAT_VERSION: u32 = 2;

/// FNV-1a 64-bit hash — the payload checksum of the binary format. Not
/// cryptographic; it exists to catch bit rot and truncation, not tampering.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_f32s(out: &mut Vec<u8>, xs: &[f32]) {
    put_u64(out, xs.len() as u64);
    for &x in xs {
        out.extend_from_slice(&x.to_le_bytes());
    }
}

/// Bounds-checked reader over the payload bytes. Every accessor returns a
/// typed error on truncation, so malformed input can never panic.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], CheckpointError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.bytes.len())
            .ok_or_else(|| {
                CheckpointError::Malformed(format!(
                    "truncated while reading {what} ({n} bytes wanted, {} left)",
                    self.bytes.len() - self.pos
                ))
            })?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u32(&mut self, what: &str) -> Result<u32, CheckpointError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, what: &str) -> Result<u64, CheckpointError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn string(&mut self, what: &str) -> Result<String, CheckpointError> {
        let len = self.u32(what)? as usize;
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| CheckpointError::Malformed(format!("{what} is not UTF-8")))
    }

    fn f32s(&mut self, what: &str) -> Result<Vec<f32>, CheckpointError> {
        let len = self.u64(what)? as usize;
        // Reject the length before allocating: a corrupt 2^60 length must
        // fail with a typed error, not abort on an impossible allocation.
        let byte_len = len.checked_mul(4).ok_or_else(|| {
            CheckpointError::Malformed(format!("{what} length overflows ({len} elements)"))
        })?;
        let bytes = self.take(byte_len, what)?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect())
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }
}

impl Checkpoint {
    /// Attaches an architecture-descriptor string (carried verbatim by the
    /// binary format; see [`Checkpoint::arch`]).
    pub fn with_arch(mut self, arch: impl Into<String>) -> Self {
        self.arch = arch.into();
        self
    }

    /// Serializes the checkpoint into the versioned binary format:
    ///
    /// ```text
    /// magic "DCAMCKPT" | version u32 | checksum u64 | payload…
    /// payload v1: tag | arch | params (shape + f32 data each) | buffers
    /// payload v2: …v1 | quant scales (f32s)
    /// ```
    ///
    /// All integers are little-endian; the checksum is FNV-1a 64 over the
    /// payload bytes. [`Checkpoint::from_bytes`] inverts it exactly — the
    /// `f32` bits round-trip untouched. Checkpoints without quantization
    /// scales are written as version 1 (byte-identical to pre-quant
    /// builds); a calibrated model's scales append a version-2 section.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut payload = Vec::new();
        put_str(&mut payload, &self.tag);
        put_str(&mut payload, &self.arch);
        put_u32(&mut payload, self.params.len() as u32);
        for p in &self.params {
            put_u32(&mut payload, p.dims().len() as u32);
            for &d in p.dims() {
                put_u64(&mut payload, d as u64);
            }
            put_f32s(&mut payload, p.data());
        }
        put_u32(&mut payload, self.buffers.len() as u32);
        for b in &self.buffers {
            put_f32s(&mut payload, b);
        }
        let version = if self.quant.is_empty() {
            FORMAT_V1
        } else {
            put_f32s(&mut payload, &self.quant);
            FORMAT_VERSION
        };

        let mut out = Vec::with_capacity(MAGIC.len() + 12 + payload.len());
        out.extend_from_slice(MAGIC);
        put_u32(&mut out, version);
        put_u64(&mut out, fnv1a(&payload));
        out.extend_from_slice(&payload);
        out
    }

    /// Parses the binary format written by [`Checkpoint::to_bytes`].
    ///
    /// Every failure mode — wrong magic, unsupported version, truncation,
    /// impossible lengths, trailing garbage, checksum mismatch — returns
    /// the matching [`CheckpointError`]; no input can panic this function.
    pub fn from_bytes(bytes: &[u8]) -> Result<Checkpoint, CheckpointError> {
        if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
            return Err(CheckpointError::NotACheckpoint);
        }
        let mut cur = Cursor {
            bytes,
            pos: MAGIC.len(),
        };
        let version = cur.u32("format version")?;
        if version == 0 || version > FORMAT_VERSION {
            return Err(CheckpointError::UnsupportedVersion {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        let stored = cur.u64("checksum")?;
        let computed = fnv1a(&bytes[cur.pos..]);
        if stored != computed {
            return Err(CheckpointError::ChecksumMismatch { stored, computed });
        }

        let tag = cur.string("tag")?;
        let arch = cur.string("arch descriptor")?;
        let n_params = cur.u32("parameter count")? as usize;
        let mut params = Vec::new();
        for i in 0..n_params {
            let what = format!("parameter {i}");
            let n_dims = cur.u32(&what)? as usize;
            if n_dims > 16 {
                return Err(CheckpointError::Malformed(format!(
                    "{what} claims {n_dims} axes"
                )));
            }
            let mut dims = Vec::with_capacity(n_dims);
            for _ in 0..n_dims {
                dims.push(cur.u64(&what)? as usize);
            }
            // Validate the element count ourselves before handing the
            // dims to the tensor layer: its shape product is unchecked,
            // so crafted dims like [2^33, 2^33] would overflow (panic in
            // debug builds, wrap in release) despite a valid checksum.
            let len = dims
                .iter()
                .try_fold(1usize, |acc, &d| acc.checked_mul(d))
                .ok_or_else(|| {
                    CheckpointError::Malformed(format!("{what}: shape {dims:?} overflows"))
                })?;
            let data = cur.f32s(&what)?;
            if data.len() != len {
                return Err(CheckpointError::Malformed(format!(
                    "{what}: shape {dims:?} wants {len} values, {} stored",
                    data.len()
                )));
            }
            params.push(Tensor::from_vec(data, &dims).map_err(|e| {
                CheckpointError::Malformed(format!("{what}: shape/data mismatch ({e:?})"))
            })?);
        }
        let n_buffers = cur.u32("buffer count")? as usize;
        let mut buffers = Vec::new();
        for i in 0..n_buffers {
            buffers.push(cur.f32s(&format!("buffer {i}"))?);
        }
        // The quant section only exists in version 2; parsing it
        // structurally (rather than "whatever bytes remain") keeps the
        // trailing-garbage check meaningful for both versions.
        let quant = if version >= 2 {
            cur.f32s("quant scales")?
        } else {
            Vec::new()
        };
        if cur.remaining() != 0 {
            return Err(CheckpointError::Malformed(format!(
                "{} trailing bytes after the last section",
                cur.remaining()
            )));
        }
        Ok(Checkpoint {
            tag,
            arch,
            params,
            buffers,
            quant,
        })
    }
}

/// Writes `bytes` to `path` crash-safely: the bytes go to a fresh temp
/// file *in the target directory* (same filesystem, so the final rename is
/// atomic), are fsynced, and only then renamed over `path`. A writer
/// killed at any instant leaves either the old complete file or the new
/// complete file — never a half-written checkpoint for a later
/// `swap` to trip on. Stray temp files from killed writers are
/// distinguishable by their `.tmp-` infix and never parse as checkpoints
/// under the final name.
fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), CheckpointError> {
    use std::io::Write;
    static TMP_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let file_name = path
        .file_name()
        .ok_or_else(|| CheckpointError::Io(format!("path {} has no file name", path.display())))?;
    let dir = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => PathBuf::from("."),
    };
    let tmp = dir.join(format!(
        ".{}.tmp-{}-{}",
        file_name.to_string_lossy(),
        std::process::id(),
        TMP_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
    ));
    let io_err = |e: std::io::Error| CheckpointError::Io(e.to_string());
    let result = (|| {
        let mut f = std::fs::File::create(&tmp).map_err(io_err)?;
        f.write_all(bytes).map_err(io_err)?;
        // Flush to disk before the rename: otherwise a crash could leave
        // the *new* name pointing at not-yet-durable bytes.
        f.sync_all().map_err(io_err)?;
        drop(f);
        std::fs::rename(&tmp, path).map_err(io_err)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// Writes a checkpoint to `path` in the binary format
/// ([`Checkpoint::to_bytes`]), atomically: temp file in the target
/// directory + fsync + rename, so a crash mid-save can never leave a
/// truncated checkpoint under the final name.
pub fn save_binary(checkpoint: &Checkpoint, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
    write_atomic(path.as_ref(), &checkpoint.to_bytes())
}

/// Reads a binary checkpoint from `path` ([`Checkpoint::from_bytes`]).
pub fn load_binary(path: impl AsRef<Path>) -> Result<Checkpoint, CheckpointError> {
    let bytes = std::fs::read(path).map_err(|e| CheckpointError::Io(e.to_string()))?;
    Checkpoint::from_bytes(&bytes)
}

/// Restores a checkpoint into a model, verifying tag and shapes first (the
/// model is untouched on error).
pub fn restore(
    model: &mut dyn Layer,
    checkpoint: &Checkpoint,
    expected_tag: &str,
) -> Result<(), CheckpointError> {
    if checkpoint.tag != expected_tag {
        return Err(CheckpointError::TagMismatch {
            stored: checkpoint.tag.clone(),
            expected: expected_tag.to_string(),
        });
    }
    // Validate before mutating.
    let mut shapes = Vec::new();
    model.visit_params(&mut |p| shapes.push(p.value.dims().to_vec()));
    if shapes.len() != checkpoint.params.len() {
        return Err(CheckpointError::ParamCountMismatch {
            stored: checkpoint.params.len(),
            model: shapes.len(),
        });
    }
    for (i, (shape, stored)) in shapes.iter().zip(&checkpoint.params).enumerate() {
        if shape != stored.dims() {
            return Err(CheckpointError::ShapeMismatch {
                index: i,
                stored: stored.dims().to_vec(),
                model: shape.clone(),
            });
        }
    }
    let mut n_buffers = 0;
    model.visit_buffers(&mut |_| n_buffers += 1);
    if n_buffers != checkpoint.buffers.len() {
        return Err(CheckpointError::ParamCountMismatch {
            stored: checkpoint.buffers.len(),
            model: n_buffers,
        });
    }
    if !checkpoint.quant.is_empty() {
        let mut n_quant = 0;
        model.visit_quant(&mut |_| n_quant += 1);
        if n_quant != checkpoint.quant.len() {
            return Err(CheckpointError::QuantCountMismatch {
                stored: checkpoint.quant.len(),
                model: n_quant,
            });
        }
    }
    let mut idx = 0;
    model.visit_params(&mut |p| {
        p.value = checkpoint.params[idx].clone();
        idx += 1;
    });
    let mut bidx = 0;
    model.visit_buffers(&mut |b| {
        b.clone_from(&checkpoint.buffers[bidx]);
        bidx += 1;
    });
    if !checkpoint.quant.is_empty() {
        // Restore calibrated activation scales (0.0 = none for that
        // layer). Precision selection stays with the caller — scales
        // alone do not switch a model to int8.
        let mut qidx = 0;
        model.visit_quant(&mut |q| {
            let s = checkpoint.quant[qidx];
            q.act_scale = (s != 0.0).then_some(s);
            q.calibrating = false;
            qidx += 1;
        });
    }
    Ok(())
}

/// Copies every parameter and buffer of `src` into the identically
/// constructed `dst` — the in-memory "save + restore" used to replicate a
/// trained model across explanation-service workers. Shapes are verified
/// first; `dst` is untouched on error.
///
/// ```
/// use dcam_nn::checkpoint::copy_params;
/// use dcam_nn::layers::{Dense, Layer};
/// use dcam_tensor::{SeededRng, Tensor};
///
/// let mut trained = Dense::new(3, 2, &mut SeededRng::new(1));
/// let mut replica = Dense::new(3, 2, &mut SeededRng::new(2));
/// copy_params(&mut trained, &mut replica).unwrap();
/// let x = Tensor::ones(&[1, 3]);
/// let (a, b) = (trained.forward(&x, false), replica.forward(&x, false));
/// assert!(a.allclose(&b, 1e-6));
/// ```
pub fn copy_params(src: &mut dyn Layer, dst: &mut dyn Layer) -> Result<(), CheckpointError> {
    let snapshot = save(src, "copy");
    restore(dst, &snapshot, "copy")
}

/// Serializes a checkpoint to a JSON file (crash-safely, like
/// [`save_binary`]).
#[cfg(feature = "serde")]
pub fn save_file(checkpoint: &Checkpoint, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
    let json = serde_json::to_string(checkpoint).map_err(|e| CheckpointError::Io(e.to_string()))?;
    write_atomic(path.as_ref(), json.as_bytes())
}

/// Loads a checkpoint from a JSON file.
#[cfg(feature = "serde")]
pub fn load_file(path: impl AsRef<Path>) -> Result<Checkpoint, CheckpointError> {
    let json = std::fs::read_to_string(path).map_err(|e| CheckpointError::Io(e.to_string()))?;
    serde_json::from_str(&json).map_err(|e| CheckpointError::Io(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, Relu, Sequential};
    use dcam_tensor::SeededRng;

    fn model(seed: u64) -> Sequential {
        let mut rng = SeededRng::new(seed);
        Sequential::new()
            .push(Dense::new(3, 5, &mut rng))
            .push(Relu::new())
            .push(Dense::new(5, 2, &mut rng))
    }

    #[test]
    fn save_restore_round_trip() {
        let mut m1 = model(1);
        let ckpt = save(&mut m1, "toy");
        let mut m2 = model(2); // different init
        restore(&mut m2, &ckpt, "toy").unwrap();
        // Outputs must now coincide.
        let x = Tensor::ones(&[2, 3]);
        let y1 = m1.forward(&x, false);
        let y2 = m2.forward(&x, false);
        assert!(y1.allclose(&y2, 1e-6));
    }

    #[test]
    fn tag_mismatch_rejected_without_mutation() {
        let mut m1 = model(3);
        let ckpt = save(&mut m1, "a");
        let mut m2 = model(4);
        let before = save(&mut m2, "b");
        let err = restore(&mut m2, &ckpt, "other").unwrap_err();
        assert!(matches!(err, CheckpointError::TagMismatch { .. }));
        let after = save(&mut m2, "b");
        assert_eq!(
            before.params, after.params,
            "model mutated on failed restore"
        );
    }

    #[test]
    fn shape_mismatch_rejected() {
        let mut m1 = model(5);
        let ckpt = save(&mut m1, "toy");
        let mut rng = SeededRng::new(6);
        let mut other = Sequential::new().push(Dense::new(3, 4, &mut rng));
        let err = restore(&mut other, &ckpt, "toy").unwrap_err();
        assert!(matches!(
            err,
            CheckpointError::ParamCountMismatch { .. } | CheckpointError::ShapeMismatch { .. }
        ));
    }

    #[test]
    fn binary_round_trip_is_exact() {
        let mut m = model(8);
        let ckpt = save(&mut m, "bin-test").with_arch("family=toy;d=3");
        let bytes = ckpt.to_bytes();
        let loaded = Checkpoint::from_bytes(&bytes).unwrap();
        assert_eq!(ckpt, loaded, "binary round-trip must be bit-exact");
        assert_eq!(loaded.arch, "family=toy;d=3");
    }

    #[test]
    fn binary_file_round_trip() {
        let dir = std::env::temp_dir().join("dcam-ckpt-bin-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.ckpt");
        let mut m = model(9);
        let ckpt = save(&mut m, "bin-file").with_arch("a=b");
        save_binary(&ckpt, &path).unwrap();
        let loaded = load_binary(&path).unwrap();
        assert_eq!(ckpt, loaded);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_magic_and_version_are_typed_errors() {
        let mut m = model(10);
        let mut bytes = save(&mut m, "x").to_bytes();
        assert!(matches!(
            Checkpoint::from_bytes(b"nonsense"),
            Err(CheckpointError::NotACheckpoint)
        ));
        assert!(matches!(
            Checkpoint::from_bytes(&[]),
            Err(CheckpointError::NotACheckpoint)
        ));
        // Future format version.
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            Checkpoint::from_bytes(&bytes),
            Err(CheckpointError::UnsupportedVersion {
                found: 99,
                supported: FORMAT_VERSION
            })
        ));
    }

    #[test]
    fn corruption_and_truncation_are_typed_errors() {
        let mut m = model(11);
        let bytes = save(&mut m, "x").to_bytes();
        // Flip one payload byte: checksum must catch it.
        let mut corrupt = bytes.clone();
        *corrupt.last_mut().unwrap() ^= 0x01;
        assert!(matches!(
            Checkpoint::from_bytes(&corrupt),
            Err(CheckpointError::ChecksumMismatch { .. })
        ));
        // Truncations anywhere must error, never panic.
        for len in 0..bytes.len() {
            assert!(
                Checkpoint::from_bytes(&bytes[..len]).is_err(),
                "truncation at {len} must be rejected"
            );
        }
        // Trailing garbage invalidates the checksum.
        let mut padded = bytes;
        padded.push(0);
        assert!(Checkpoint::from_bytes(&padded).is_err());
    }

    /// A hostile writer can produce a *valid checksum* over an impossible
    /// shape — the parser must reject the shape itself, not rely on the
    /// checksum (whose only job is catching accidental corruption).
    #[test]
    fn overflowing_shape_with_valid_checksum_is_rejected() {
        let mut payload = Vec::new();
        put_str(&mut payload, "x"); // tag
        put_str(&mut payload, ""); // arch
        put_u32(&mut payload, 1); // one parameter ...
        put_u32(&mut payload, 2); // ... with 2 axes ...
        put_u64(&mut payload, 1u64 << 33); // ... whose product overflows
        put_u64(&mut payload, 1u64 << 33);
        put_u64(&mut payload, 0); // zero f32 values stored
        put_u32(&mut payload, 0); // no buffers
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        put_u32(&mut bytes, FORMAT_VERSION);
        put_u64(&mut bytes, fnv1a(&payload));
        bytes.extend_from_slice(&payload);
        assert!(matches!(
            Checkpoint::from_bytes(&bytes),
            Err(CheckpointError::Malformed(_))
        ));

        // Same writer trick with a consistent-but-short payload: shape
        // says 4 values, data holds 2.
        let mut payload = Vec::new();
        put_str(&mut payload, "x");
        put_str(&mut payload, "");
        put_u32(&mut payload, 1);
        put_u32(&mut payload, 1);
        put_u64(&mut payload, 4);
        put_f32s(&mut payload, &[1.0, 2.0]);
        put_u32(&mut payload, 0);
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        put_u32(&mut bytes, FORMAT_VERSION);
        put_u64(&mut bytes, fnv1a(&payload));
        bytes.extend_from_slice(&payload);
        assert!(matches!(
            Checkpoint::from_bytes(&bytes),
            Err(CheckpointError::Malformed(_))
        ));
    }

    #[test]
    fn uncalibrated_models_still_write_version_1() {
        let mut m = model(12);
        let bytes = save(&mut m, "v1").to_bytes();
        let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        assert_eq!(version, 1, "no quant scales must keep the v1 layout");
        let loaded = Checkpoint::from_bytes(&bytes).unwrap();
        assert!(loaded.quant.is_empty());
    }

    #[test]
    fn quant_scales_round_trip_as_version_2() {
        let mut m = model(13);
        // Calibrate both dense layers so save() captures their scales.
        m.visit_quant(&mut |q| {
            q.calibrating = true;
            q.record(2.5);
            q.finish_calibration();
        });
        let ckpt = save(&mut m, "v2");
        assert_eq!(ckpt.quant.len(), 2);
        assert!(ckpt.quant.iter().all(|&s| s > 0.0));
        let bytes = ckpt.to_bytes();
        let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        assert_eq!(version, 2);
        let loaded = Checkpoint::from_bytes(&bytes).unwrap();
        assert_eq!(ckpt, loaded, "v2 round-trip must be bit-exact");

        // Restoring into a fresh replica reproduces the scales.
        let mut replica = model(14);
        restore(&mut replica, &loaded, "v2").unwrap();
        let mut scales = Vec::new();
        replica.visit_quant(&mut |q| scales.push(q.act_scale));
        assert_eq!(scales.len(), 2);
        for (got, want) in scales.iter().zip(&ckpt.quant) {
            assert_eq!(got.unwrap(), *want);
        }
    }

    #[test]
    fn quant_count_mismatch_rejected_without_mutation() {
        let mut m = model(15);
        let mut ckpt = save(&mut m, "q");
        ckpt.quant = vec![1.0, 2.0, 3.0]; // model has 2 quant layers
        let mut target = model(16);
        let before = save(&mut target, "q");
        let err = restore(&mut target, &ckpt, "q").unwrap_err();
        assert!(matches!(err, CheckpointError::QuantCountMismatch { .. }));
        let after = save(&mut target, "q");
        assert_eq!(
            before.params, after.params,
            "model mutated on failed restore"
        );
    }

    #[cfg(feature = "serde")]
    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("dcam-ckpt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        let mut m = model(7);
        let ckpt = save(&mut m, "file-test");
        save_file(&ckpt, &path).unwrap();
        let loaded = load_file(&path).unwrap();
        assert_eq!(ckpt, loaded);
        std::fs::remove_file(&path).ok();
    }
}
