//! Model checkpointing: save and restore the parameters of any [`Layer`].
//!
//! The paper's workflow trains once and explains many times; persisting the
//! trained weights makes that practical. Parameters are captured in the
//! model's stable `visit_params` order, so a checkpoint can only be restored
//! into an identically constructed architecture — shapes are verified on
//! load.

use crate::layers::Layer;
use dcam_tensor::Tensor;
use std::fmt;
#[cfg(feature = "serde")]
use std::path::Path;

/// A snapshot of every trainable parameter of a model.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Checkpoint {
    /// Free-form tag (e.g. architecture name) checked on restore.
    pub tag: String,
    /// Parameter values in `visit_params` order.
    pub params: Vec<Tensor>,
    /// Non-trainable buffers (batch-norm running statistics) in
    /// `visit_buffers` order.
    pub buffers: Vec<Vec<f32>>,
}

/// Errors from checkpoint restore / IO.
#[derive(Debug)]
pub enum CheckpointError {
    /// The checkpoint's tag does not match the model's.
    TagMismatch {
        /// Tag stored in the checkpoint.
        stored: String,
        /// Tag expected by the caller.
        expected: String,
    },
    /// Parameter count differs between checkpoint and model.
    ParamCountMismatch {
        /// Parameters in the checkpoint.
        stored: usize,
        /// Parameters in the model.
        model: usize,
    },
    /// A parameter's shape differs.
    ShapeMismatch {
        /// Index in `visit_params` order.
        index: usize,
        /// Shape in the checkpoint.
        stored: Vec<usize>,
        /// Shape in the model.
        model: Vec<usize>,
    },
    /// Filesystem or serialization failure.
    Io(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::TagMismatch { stored, expected } => {
                write!(
                    f,
                    "checkpoint tag {stored:?} does not match expected {expected:?}"
                )
            }
            CheckpointError::ParamCountMismatch { stored, model } => {
                write!(f, "checkpoint has {stored} parameters, model has {model}")
            }
            CheckpointError::ShapeMismatch {
                index,
                stored,
                model,
            } => {
                write!(
                    f,
                    "parameter {index}: checkpoint shape {stored:?} vs model {model:?}"
                )
            }
            CheckpointError::Io(e) => write!(f, "checkpoint IO error: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Captures a checkpoint from a model.
pub fn save(model: &mut dyn Layer, tag: impl Into<String>) -> Checkpoint {
    let mut params = Vec::new();
    model.visit_params(&mut |p| params.push(p.value.clone()));
    let mut buffers = Vec::new();
    model.visit_buffers(&mut |b| buffers.push(b.clone()));
    Checkpoint {
        tag: tag.into(),
        params,
        buffers,
    }
}

/// Restores a checkpoint into a model, verifying tag and shapes first (the
/// model is untouched on error).
pub fn restore(
    model: &mut dyn Layer,
    checkpoint: &Checkpoint,
    expected_tag: &str,
) -> Result<(), CheckpointError> {
    if checkpoint.tag != expected_tag {
        return Err(CheckpointError::TagMismatch {
            stored: checkpoint.tag.clone(),
            expected: expected_tag.to_string(),
        });
    }
    // Validate before mutating.
    let mut shapes = Vec::new();
    model.visit_params(&mut |p| shapes.push(p.value.dims().to_vec()));
    if shapes.len() != checkpoint.params.len() {
        return Err(CheckpointError::ParamCountMismatch {
            stored: checkpoint.params.len(),
            model: shapes.len(),
        });
    }
    for (i, (shape, stored)) in shapes.iter().zip(&checkpoint.params).enumerate() {
        if shape != stored.dims() {
            return Err(CheckpointError::ShapeMismatch {
                index: i,
                stored: stored.dims().to_vec(),
                model: shape.clone(),
            });
        }
    }
    let mut n_buffers = 0;
    model.visit_buffers(&mut |_| n_buffers += 1);
    if n_buffers != checkpoint.buffers.len() {
        return Err(CheckpointError::ParamCountMismatch {
            stored: checkpoint.buffers.len(),
            model: n_buffers,
        });
    }
    let mut idx = 0;
    model.visit_params(&mut |p| {
        p.value = checkpoint.params[idx].clone();
        idx += 1;
    });
    let mut bidx = 0;
    model.visit_buffers(&mut |b| {
        b.clone_from(&checkpoint.buffers[bidx]);
        bidx += 1;
    });
    Ok(())
}

/// Copies every parameter and buffer of `src` into the identically
/// constructed `dst` — the in-memory "save + restore" used to replicate a
/// trained model across explanation-service workers. Shapes are verified
/// first; `dst` is untouched on error.
///
/// ```
/// use dcam_nn::checkpoint::copy_params;
/// use dcam_nn::layers::{Dense, Layer};
/// use dcam_tensor::{SeededRng, Tensor};
///
/// let mut trained = Dense::new(3, 2, &mut SeededRng::new(1));
/// let mut replica = Dense::new(3, 2, &mut SeededRng::new(2));
/// copy_params(&mut trained, &mut replica).unwrap();
/// let x = Tensor::ones(&[1, 3]);
/// let (a, b) = (trained.forward(&x, false), replica.forward(&x, false));
/// assert!(a.allclose(&b, 1e-6));
/// ```
pub fn copy_params(src: &mut dyn Layer, dst: &mut dyn Layer) -> Result<(), CheckpointError> {
    let snapshot = save(src, "copy");
    restore(dst, &snapshot, "copy")
}

/// Serializes a checkpoint to a JSON file.
#[cfg(feature = "serde")]
pub fn save_file(checkpoint: &Checkpoint, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
    let json = serde_json::to_string(checkpoint).map_err(|e| CheckpointError::Io(e.to_string()))?;
    std::fs::write(path, json).map_err(|e| CheckpointError::Io(e.to_string()))
}

/// Loads a checkpoint from a JSON file.
#[cfg(feature = "serde")]
pub fn load_file(path: impl AsRef<Path>) -> Result<Checkpoint, CheckpointError> {
    let json = std::fs::read_to_string(path).map_err(|e| CheckpointError::Io(e.to_string()))?;
    serde_json::from_str(&json).map_err(|e| CheckpointError::Io(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, Relu, Sequential};
    use dcam_tensor::SeededRng;

    fn model(seed: u64) -> Sequential {
        let mut rng = SeededRng::new(seed);
        Sequential::new()
            .push(Dense::new(3, 5, &mut rng))
            .push(Relu::new())
            .push(Dense::new(5, 2, &mut rng))
    }

    #[test]
    fn save_restore_round_trip() {
        let mut m1 = model(1);
        let ckpt = save(&mut m1, "toy");
        let mut m2 = model(2); // different init
        restore(&mut m2, &ckpt, "toy").unwrap();
        // Outputs must now coincide.
        let x = Tensor::ones(&[2, 3]);
        let y1 = m1.forward(&x, false);
        let y2 = m2.forward(&x, false);
        assert!(y1.allclose(&y2, 1e-6));
    }

    #[test]
    fn tag_mismatch_rejected_without_mutation() {
        let mut m1 = model(3);
        let ckpt = save(&mut m1, "a");
        let mut m2 = model(4);
        let before = save(&mut m2, "b");
        let err = restore(&mut m2, &ckpt, "other").unwrap_err();
        assert!(matches!(err, CheckpointError::TagMismatch { .. }));
        let after = save(&mut m2, "b");
        assert_eq!(
            before.params, after.params,
            "model mutated on failed restore"
        );
    }

    #[test]
    fn shape_mismatch_rejected() {
        let mut m1 = model(5);
        let ckpt = save(&mut m1, "toy");
        let mut rng = SeededRng::new(6);
        let mut other = Sequential::new().push(Dense::new(3, 4, &mut rng));
        let err = restore(&mut other, &ckpt, "toy").unwrap_err();
        assert!(matches!(
            err,
            CheckpointError::ParamCountMismatch { .. } | CheckpointError::ShapeMismatch { .. }
        ));
    }

    #[cfg(feature = "serde")]
    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("dcam-ckpt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        let mut m = model(7);
        let ckpt = save(&mut m, "file-test");
        save_file(&ckpt, &path).unwrap();
        let loaded = load_file(&path).unwrap();
        assert_eq!(ckpt, loaded);
        std::fs::remove_file(&path).ok();
    }
}
