use dcam_tensor::Tensor;

/// A trainable parameter: its current value plus an accumulated gradient.
///
/// Layers own their `Param`s; [`crate::Layer::visit_params`] exposes them in
/// a construction-stable order so optimizers can keep index-aligned state
/// (e.g. Adam moments).
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Param {
    /// Current parameter value.
    pub value: Tensor,
    /// Gradient accumulated by the latest backward pass(es).
    pub grad: Tensor,
}

impl Param {
    /// Wraps an initial value with a zeroed gradient of matching shape.
    pub fn new(value: Tensor) -> Self {
        let grad = Tensor::zeros(value.dims());
        Param { value, grad }
    }

    /// Resets the accumulated gradient to zero.
    pub fn zero_grad(&mut self) {
        self.grad.fill(0.0);
    }

    /// Number of scalar elements in this parameter.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// True when the parameter holds no elements.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_param_has_zero_grad() {
        let p = Param::new(Tensor::ones(&[2, 3]));
        assert_eq!(p.grad.dims(), &[2, 3]);
        assert!(p.grad.data().iter().all(|&g| g == 0.0));
        assert_eq!(p.len(), 6);
    }

    #[test]
    fn zero_grad_clears() {
        let mut p = Param::new(Tensor::ones(&[4]));
        p.grad.fill(3.0);
        p.zero_grad();
        assert!(p.grad.data().iter().all(|&g| g == 0.0));
    }
}
