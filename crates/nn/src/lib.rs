//! CPU neural-network substrate for the dCAM reproduction.
//!
//! The dCAM paper builds on PyTorch; this crate replaces it with a compact,
//! fully hand-written framework providing exactly what the paper's models
//! need:
//!
//! * [`layers`] — the row-wise 2-D convolution unifying CNN/cCNN/dCNN,
//!   batch norm, dense, activations, pooling (incl. the Global Average
//!   Pooling layer CAM requires), dropout, and sequential/residual
//!   containers;
//! * [`recurrent`] — RNN/LSTM/GRU baselines with backpropagation through
//!   time;
//! * [`loss`] — softmax cross-entropy;
//! * [`optim`] — Adam and SGD;
//! * [`trainer`] — mini-batch training with validation-based early stopping;
//! * [`gradcheck`] — finite-difference verification used by the test suite
//!   to validate every analytic backward pass;
//! * [`masking`] — slice-level perturbation kernels (constant fill, linear
//!   interpolation) behind the explanation-faithfulness harness.
//!
//! Layers follow a simple contract ([`Layer`]): `forward` caches what
//! `backward` needs, `backward` accumulates parameter gradients in place.
//! Convolution kernels parallelize over batch samples with scoped threads.
//!
//! # Example: train a tiny CNN
//!
//! ```
//! use dcam_nn::layers::{Conv2dRows, Dense, GlobalAvgPool, Layer, Relu, Sequential};
//! use dcam_nn::optim::Adam;
//! use dcam_nn::trainer::{fit, LabelledSet, TrainConfig};
//! use dcam_tensor::{SeededRng, Tensor};
//!
//! let mut rng = SeededRng::new(0);
//! let mut model = Sequential::new()
//!     .push(Conv2dRows::same(1, 4, 3, &mut rng))
//!     .push(Relu::new())
//!     .push(GlobalAvgPool::new())
//!     .push(Dense::new(4, 2, &mut rng));
//!
//! // Two trivially separable classes: constant −1 vs +1 signals.
//! let mut inputs = Vec::new();
//! let mut labels = Vec::new();
//! for i in 0..16 {
//!     let v = if i % 2 == 0 { -1.0 } else { 1.0 };
//!     inputs.push(Tensor::filled(&[1, 1, 8], v));
//!     labels.push(i % 2);
//! }
//! let set = LabelledSet::new(inputs, labels);
//! let cfg = TrainConfig { epochs: 30, batch_size: 4, patience: None, ..Default::default() };
//! let history = fit(&mut model, &mut Adam::new(0.05), &set, None, &cfg);
//! assert!(history.train_loss.last().unwrap() < &0.2);
//! ```

pub mod arena;
pub mod checkpoint;
pub mod gradcheck;
mod init;
pub mod layers;
pub mod loss;
pub mod masking;
pub mod optim;
mod parallel;
mod param;
pub mod quant;
pub mod recurrent;
pub mod trainer;

pub use arena::BatchArena;
pub use init::{kaiming, xavier};
pub use layers::Layer;
pub use parallel::{par_accumulate, par_chunk_zip, thread_count};
pub use param::Param;
pub use quant::{Precision, QuantState};
