//! Weight initialization schemes.
//!
//! Kaiming (He) initialization is used for every convolution and dense layer
//! feeding a ReLU, matching the PyTorch defaults the paper's artifact relies
//! on; Xavier (Glorot) is used for recurrent cells with tanh/sigmoid gates.

use dcam_tensor::{SeededRng, Tensor};

/// Kaiming-normal initialization: `N(0, sqrt(2 / fan_in))`.
pub fn kaiming(dims: &[usize], fan_in: usize, rng: &mut SeededRng) -> Tensor {
    let std = (2.0 / fan_in.max(1) as f32).sqrt();
    Tensor::randn(dims, 0.0, std, rng)
}

/// Xavier-uniform initialization: `U(-a, a)` with `a = sqrt(6 / (fan_in + fan_out))`.
pub fn xavier(dims: &[usize], fan_in: usize, fan_out: usize, rng: &mut SeededRng) -> Tensor {
    let a = (6.0 / (fan_in + fan_out).max(1) as f32).sqrt();
    Tensor::uniform(dims, -a, a, rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kaiming_std_tracks_fan_in() {
        let mut rng = SeededRng::new(0);
        let t = kaiming(&[4096], 8, &mut rng);
        let var = t.variance();
        // Expected variance 2/8 = 0.25.
        assert!((var - 0.25).abs() < 0.03, "variance {var}");
    }

    #[test]
    fn xavier_bounds() {
        let mut rng = SeededRng::new(1);
        let t = xavier(&[1000], 10, 20, &mut rng);
        let a = (6.0f32 / 30.0).sqrt();
        assert!(t.max() <= a && t.min() >= -a);
        // Should actually use the range, not collapse near zero.
        assert!(t.max() > 0.8 * a);
    }
}
