//! Training loop with mini-batching, validation, early stopping and
//! best-weights restoration — the procedure of §5.2 of the paper
//! (Adam, cross-entropy, early stopping when the validation loss stalls).

use crate::layers::Layer;
use crate::loss::{predictions, softmax_cross_entropy};
use crate::optim::Optimizer;
use dcam_tensor::{shuffled_indices, Tensor};

/// A labelled set of pre-encoded samples. Every sample tensor must share the
/// same shape; the trainer stacks them along a new leading batch axis.
#[derive(Debug, Clone, Default)]
pub struct LabelledSet {
    /// Per-sample network inputs (e.g. `(C, H, W)` for conv nets).
    pub inputs: Vec<Tensor>,
    /// Class index per sample.
    pub labels: Vec<usize>,
}

impl LabelledSet {
    /// Creates a set, checking that inputs and labels align.
    pub fn new(inputs: Vec<Tensor>, labels: Vec<usize>) -> Self {
        assert_eq!(inputs.len(), labels.len(), "inputs/labels length mismatch");
        LabelledSet { inputs, labels }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.inputs.len()
    }

    /// True when the set is empty.
    pub fn is_empty(&self) -> bool {
        self.inputs.is_empty()
    }
}

/// Stacks per-sample tensors into one batch tensor with a leading batch axis.
pub fn stack(samples: &[&Tensor]) -> Tensor {
    assert!(!samples.is_empty(), "cannot stack an empty batch");
    let sample_dims = samples[0].dims().to_vec();
    let mut dims = vec![samples.len()];
    dims.extend_from_slice(&sample_dims);
    let sample_len = samples[0].len();
    let mut data = Vec::with_capacity(samples.len() * sample_len);
    for s in samples {
        assert_eq!(s.dims(), &sample_dims[..], "ragged batch");
        data.extend_from_slice(s.data());
    }
    Tensor::from_vec(data, &dims).expect("stack shape")
}

/// Hyperparameters of a training run.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Maximum number of epochs.
    pub epochs: usize,
    /// Mini-batch size (the paper uses up to 16).
    pub batch_size: usize,
    /// Early-stopping patience in epochs on validation loss; `None` disables.
    pub patience: Option<usize>,
    /// Shuffle the training set each epoch.
    pub shuffle: bool,
    /// Seed for shuffling.
    pub seed: u64,
    /// Clip the global gradient L2 norm to this value (stabilizes RNNs).
    pub clip_grad: Option<f32>,
    /// Print one line per epoch to stderr.
    pub verbose: bool,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 100,
            batch_size: 16,
            patience: Some(20),
            shuffle: true,
            seed: 0,
            clip_grad: None,
            verbose: false,
        }
    }
}

/// Per-epoch record of a training run.
#[derive(Debug, Clone, Default)]
pub struct History {
    /// Mean training loss per epoch.
    pub train_loss: Vec<f32>,
    /// Validation loss per epoch (empty without a validation set).
    pub val_loss: Vec<f32>,
    /// Validation accuracy per epoch.
    pub val_acc: Vec<f32>,
    /// Epoch index with the best validation (or training) loss.
    pub best_epoch: usize,
    /// Number of epochs actually run (≤ configured epochs with early stop).
    pub epochs_run: usize,
}

impl History {
    /// The best monitored loss value seen.
    pub fn best_loss(&self) -> f32 {
        let series = if self.val_loss.is_empty() {
            &self.train_loss
        } else {
            &self.val_loss
        };
        series
            .get(self.best_epoch)
            .copied()
            .unwrap_or(f32::INFINITY)
    }

    /// Epochs needed to first reach `fraction` of the way down from the
    /// initial loss to the best loss (used by the Fig. 12(c) convergence
    /// experiment with `fraction = 0.9`).
    pub fn epochs_to_fraction_of_best(&self, fraction: f32) -> Option<usize> {
        let series = if self.val_loss.is_empty() {
            &self.train_loss
        } else {
            &self.val_loss
        };
        let first = *series.first()?;
        let best = series.iter().copied().fold(f32::INFINITY, f32::min);
        let target = first - fraction * (first - best);
        series.iter().position(|&l| l <= target)
    }
}

/// Snapshot of all parameter values (for best-weights restoration).
fn snapshot(model: &mut dyn Layer) -> Vec<Tensor> {
    let mut out = Vec::new();
    model.visit_params(&mut |p| out.push(p.value.clone()));
    out
}

fn restore(model: &mut dyn Layer, snap: &[Tensor]) {
    let mut idx = 0;
    model.visit_params(&mut |p| {
        p.value = snap[idx].clone();
        idx += 1;
    });
}

/// Rescales all gradients so their global L2 norm is at most `max_norm`.
fn clip_gradients(model: &mut dyn Layer, max_norm: f32) {
    let mut norm_sq = 0.0f32;
    model.visit_params(&mut |p| norm_sq += p.grad.norm_sq());
    let norm = norm_sq.sqrt();
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        model.visit_params(&mut |p| p.grad.scale_in_place(scale));
    }
}

/// Mean loss and accuracy of `model` on `set` (evaluation mode).
pub fn evaluate(model: &mut dyn Layer, set: &LabelledSet, batch_size: usize) -> (f32, f32) {
    if set.is_empty() {
        return (0.0, 0.0);
    }
    let mut total_loss = 0.0f64;
    let mut correct = 0usize;
    let n = set.len();
    let mut i = 0;
    while i < n {
        let end = (i + batch_size).min(n);
        let refs: Vec<&Tensor> = set.inputs[i..end].iter().collect();
        let x = stack(&refs);
        let labels = &set.labels[i..end];
        let logits = model.forward(&x, false);
        let (loss, _) = softmax_cross_entropy(&logits, labels);
        total_loss += loss as f64 * (end - i) as f64;
        let preds = predictions(&logits);
        correct += preds.iter().zip(labels).filter(|(p, l)| p == l).count();
        i = end;
    }
    ((total_loss / n as f64) as f32, correct as f32 / n as f32)
}

/// Predicted class for every sample in `set`.
pub fn predict_all(model: &mut dyn Layer, set: &LabelledSet, batch_size: usize) -> Vec<usize> {
    let mut out = Vec::with_capacity(set.len());
    let n = set.len();
    let mut i = 0;
    while i < n {
        let end = (i + batch_size).min(n);
        let refs: Vec<&Tensor> = set.inputs[i..end].iter().collect();
        let x = stack(&refs);
        let logits = model.forward(&x, false);
        out.extend(predictions(&logits));
        i = end;
    }
    out
}

/// Trains `model` on `train`, monitoring `val` for early stopping.
///
/// On return the model holds the weights of the best monitored epoch (not
/// the last one), matching the early-stopping protocol of §5.2.
pub fn fit(
    model: &mut dyn Layer,
    optimizer: &mut dyn Optimizer,
    train: &LabelledSet,
    val: Option<&LabelledSet>,
    cfg: &TrainConfig,
) -> History {
    assert!(!train.is_empty(), "training set is empty");
    assert!(cfg.batch_size > 0);
    let n = train.len();
    let mut history = History::default();
    let mut best_loss = f32::INFINITY;
    let mut best_snap: Option<Vec<Tensor>> = None;
    let mut since_best = 0usize;

    for epoch in 0..cfg.epochs {
        let order = if cfg.shuffle {
            shuffled_indices(n, cfg.seed.wrapping_add(epoch as u64))
        } else {
            (0..n).collect()
        };

        let mut epoch_loss = 0.0f64;
        let mut i = 0;
        while i < n {
            let end = (i + cfg.batch_size).min(n);
            let idx = &order[i..end];
            let refs: Vec<&Tensor> = idx.iter().map(|&j| &train.inputs[j]).collect();
            let labels: Vec<usize> = idx.iter().map(|&j| train.labels[j]).collect();
            let x = stack(&refs);
            model.zero_grads();
            let logits = model.forward(&x, true);
            let (loss, grad) = softmax_cross_entropy(&logits, &labels);
            model.backward(&grad);
            if let Some(max_norm) = cfg.clip_grad {
                clip_gradients(model, max_norm);
            }
            optimizer.step(model);
            epoch_loss += loss as f64 * (end - i) as f64;
            i = end;
        }
        let train_loss = (epoch_loss / n as f64) as f32;
        history.train_loss.push(train_loss);

        let monitored = if let Some(vset) = val {
            let (vl, va) = evaluate(model, vset, cfg.batch_size);
            history.val_loss.push(vl);
            history.val_acc.push(va);
            vl
        } else {
            train_loss
        };
        if cfg.verbose {
            eprintln!("epoch {epoch:4}  train_loss {train_loss:.4}  monitored {monitored:.4}");
        }

        if monitored < best_loss - 1e-6 {
            best_loss = monitored;
            history.best_epoch = epoch;
            since_best = 0;
            if cfg.patience.is_some() {
                best_snap = Some(snapshot(model));
            }
        } else {
            since_best += 1;
        }
        history.epochs_run = epoch + 1;
        if let Some(patience) = cfg.patience {
            if since_best >= patience {
                break;
            }
        }
    }

    if let Some(snap) = best_snap {
        restore(model, &snap);
    }
    history
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, Relu, Sequential};
    use crate::optim::Adam;
    use dcam_tensor::SeededRng;

    /// Linearly separable 2-class toy problem.
    fn toy_set(n: usize, seed: u64) -> LabelledSet {
        let mut rng = SeededRng::new(seed);
        let mut inputs = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..n {
            let label = rng.index(2);
            let offset = if label == 0 { -1.0 } else { 1.0 };
            let x = Tensor::from_vec(
                vec![offset + 0.3 * rng.normal(), -offset + 0.3 * rng.normal()],
                &[2],
            )
            .unwrap();
            inputs.push(x);
            labels.push(label);
        }
        LabelledSet::new(inputs, labels)
    }

    fn toy_model(seed: u64) -> Sequential {
        let mut rng = SeededRng::new(seed);
        Sequential::new()
            .push(Dense::new(2, 8, &mut rng))
            .push(Relu::new())
            .push(Dense::new(8, 2, &mut rng))
    }

    #[test]
    fn fit_learns_separable_data() {
        let train = toy_set(64, 0);
        let val = toy_set(32, 1);
        let mut model = toy_model(7);
        let mut opt = Adam::new(0.01);
        let cfg = TrainConfig {
            epochs: 60,
            batch_size: 16,
            ..Default::default()
        };
        let history = fit(&mut model, &mut opt, &train, Some(&val), &cfg);
        let (_, acc) = evaluate(&mut model, &val, 16);
        assert!(acc > 0.9, "val accuracy {acc}");
        assert!(history.train_loss.last().unwrap() < &0.3);
    }

    #[test]
    fn early_stopping_halts_and_restores_best() {
        let train = toy_set(32, 2);
        let val = toy_set(16, 3);
        let mut model = toy_model(8);
        let mut opt = Adam::new(0.05);
        let cfg = TrainConfig {
            epochs: 500,
            batch_size: 8,
            patience: Some(5),
            ..Default::default()
        };
        let history = fit(&mut model, &mut opt, &train, Some(&val), &cfg);
        assert!(history.epochs_run < 500, "early stopping never triggered");
        // Restored weights must reproduce (approximately) the best val loss.
        let (vl, _) = evaluate(&mut model, &val, 8);
        let best = history.best_loss();
        assert!(
            (vl - best).abs() < 1e-4,
            "restored loss {vl} differs from best {best}"
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let train = toy_set(32, 4);
        let cfg = TrainConfig {
            epochs: 5,
            batch_size: 8,
            patience: None,
            ..Default::default()
        };
        let mut m1 = toy_model(9);
        let mut m2 = toy_model(9);
        let h1 = fit(&mut m1, &mut Adam::new(0.01), &train, None, &cfg);
        let h2 = fit(&mut m2, &mut Adam::new(0.01), &train, None, &cfg);
        assert_eq!(h1.train_loss, h2.train_loss);
    }

    #[test]
    fn stack_builds_batch_axis() {
        let a = Tensor::ones(&[2, 3]);
        let b = Tensor::zeros(&[2, 3]);
        let s = stack(&[&a, &b]);
        assert_eq!(s.dims(), &[2, 2, 3]);
        assert_eq!(&s.data()[..6], a.data());
        assert_eq!(&s.data()[6..], b.data());
    }

    #[test]
    fn epochs_to_fraction_of_best() {
        let h = History {
            train_loss: vec![1.0, 0.8, 0.5, 0.2, 0.1],
            ..Default::default()
        };
        // target = 1.0 - 0.9*(1.0-0.1) = 0.19 -> first epoch <= 0.19 is 4.
        assert_eq!(h.epochs_to_fraction_of_best(0.9), Some(4));
        // fraction 0.5 -> target 0.55 -> epoch 2.
        assert_eq!(h.epochs_to_fraction_of_best(0.5), Some(2));
    }

    #[test]
    fn clip_gradients_bounds_norm() {
        let mut model = toy_model(10);
        model.visit_params(&mut |p| p.grad.fill(10.0));
        clip_gradients(&mut model, 1.0);
        let mut norm_sq = 0.0;
        model.visit_params(&mut |p| norm_sq += p.grad.norm_sq());
        assert!((norm_sq.sqrt() - 1.0).abs() < 1e-4);
    }
}
