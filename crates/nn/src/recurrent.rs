//! Recurrent baselines: RNN, LSTM and GRU layers with truncated-free BPTT.
//!
//! The paper's experimental study (§2.1, Table 2) includes vanilla RNN,
//! LSTM and GRU classifiers with one recurrent hidden layer followed by a
//! dense classification head. These layers consume `(N, D, n)` inputs
//! (batch, input features per step, time steps) and emit the final hidden
//! state `(N, H)`.

use crate::layers::Layer;
use crate::{init, Param};
use dcam_tensor::{gemm_nn, gemm_nt, gemm_tn, SeededRng, Tensor};

/// Extracts time slice `t` from an `(N, D, n)` tensor into `out` (`N·D`,
/// row-major `(N, D)`). The buffer is reused across every step of a
/// forward/backward pass, so slicing allocates nothing per step.
fn time_slice_into(x: &Tensor, t: usize, out: &mut [f32]) {
    let d = x.dims();
    let (n, feat, steps) = (d[0], d[1], d[2]);
    debug_assert_eq!(out.len(), n * feat);
    for ni in 0..n {
        for fi in 0..feat {
            out[ni * feat + fi] = x.data()[(ni * feat + fi) * steps + t];
        }
    }
}

/// Adds an `(N, D)` gradient slice into time step `t` of an `(N, D, n)`
/// gradient tensor.
fn scatter_time(grad_x: &mut Tensor, g: &[f32], t: usize) {
    let d = grad_x.dims();
    let (n, feat, steps) = (d[0], d[1], d[2]);
    debug_assert_eq!(g.len(), n * feat);
    for ni in 0..n {
        for fi in 0..feat {
            grad_x.data_mut()[(ni * feat + fi) * steps + t] += g[ni * feat + fi];
        }
    }
}

/// `z = x Wxᵀ + h Whᵀ + b` for a batch — the shared affine step of every
/// cell, running on the slice-level GEMM entry points straight into the
/// caller's reused `z` buffer (`nb × hidden`): zero per-step allocation.
fn affine_into(
    x: &[f32],
    h: &[f32],
    wx: &Tensor,
    wh: &Tensor,
    b: &Tensor,
    nb: usize,
    z: &mut [f32],
) {
    let (hd, feat) = (wx.dims()[0], wx.dims()[1]);
    debug_assert_eq!(z.len(), nb * hd);
    gemm_nt(nb, feat, hd, x, wx.data(), z, false);
    gemm_nt(nb, hd, hd, h, wh.data(), z, true);
    for row in z.chunks_mut(hd) {
        for (v, &bv) in row.iter_mut().zip(b.data()) {
            *v += bv;
        }
    }
}

/// Accumulates the parameter gradients of one affine step —
/// `dWx += gᵀ x`, `dWh += gᵀ h`, `db += column-sums(g)`, all straight into
/// the parameter gradient buffers — and writes (or, with `acc`,
/// accumulates) the input-side gradients `g·Wx` / `g·Wh` into the caller's
/// reused `gx` / `gh` scratch.
#[allow(clippy::too_many_arguments)]
fn affine_backward_into(
    g: &[f32],
    x: &[f32],
    h: &[f32],
    wx: &mut Param,
    wh: &mut Param,
    b: &mut Param,
    nb: usize,
    gx: &mut [f32],
    gh: &mut [f32],
    acc: bool,
) {
    let (hd, feat) = (wx.value.dims()[0], wx.value.dims()[1]);
    gemm_tn(hd, nb, feat, g, x, wx.grad.data_mut(), true);
    gemm_tn(hd, nb, hd, g, h, wh.grad.data_mut(), true);
    for ni in 0..nb {
        for k in 0..hd {
            b.grad.data_mut()[k] += g[ni * hd + k];
        }
    }
    gemm_nn(nb, hd, feat, g, wx.value.data(), gx, acc);
    gemm_nn(nb, hd, hd, g, wh.value.data(), gh, acc);
}

// ---------------------------------------------------------------------------
// Vanilla RNN
// ---------------------------------------------------------------------------

/// Elman RNN: `h_t = tanh(Wx x_t + Wh h_{t−1} + b)`, returning `h_n`.
pub struct Rnn {
    wx: Param,
    wh: Param,
    b: Param,
    input: usize,
    hidden: usize,
    cache: Option<RnnCache>,
}

struct RnnCache {
    x: Tensor,
    hs: Vec<Tensor>, // h_0 (zeros) .. h_n
}

impl Rnn {
    /// Creates an RNN layer with Xavier-initialized weights.
    pub fn new(input: usize, hidden: usize, rng: &mut SeededRng) -> Self {
        Rnn {
            wx: Param::new(init::xavier(&[hidden, input], input, hidden, rng)),
            wh: Param::new(init::xavier(&[hidden, hidden], hidden, hidden, rng)),
            b: Param::new(Tensor::zeros(&[hidden])),
            input,
            hidden,
            cache: None,
        }
    }

    /// Hidden state width.
    pub fn hidden_size(&self) -> usize {
        self.hidden
    }
}

impl Layer for Rnn {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let d = x.dims();
        assert_eq!(d.len(), 3, "Rnn expects (N, D, n), got {d:?}");
        assert_eq!(d[1], self.input, "input feature mismatch");
        let (n, steps) = (d[0], d[2]);
        let feat = self.input;
        let mut hs = vec![Tensor::zeros(&[n, self.hidden])];
        let mut xt = vec![0.0f32; n * feat];
        let mut z = vec![0.0f32; n * self.hidden];
        for t in 0..steps {
            time_slice_into(x, t, &mut xt);
            affine_into(
                &xt,
                hs[t].data(),
                &self.wx.value,
                &self.wh.value,
                &self.b.value,
                n,
                &mut z,
            );
            let mut h = Tensor::zeros(&[n, self.hidden]);
            for (hv, &zv) in h.data_mut().iter_mut().zip(&z) {
                *hv = zv.tanh();
            }
            hs.push(h);
        }
        let out = hs[steps].clone();
        if train {
            self.cache = Some(RnnCache { x: x.clone(), hs });
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let cache = self.cache.take().expect("backward without cached forward");
        let d = cache.x.dims().to_vec();
        let (n, steps) = (d[0], d[2]);
        let (feat, hd) = (self.input, self.hidden);
        let mut grad_x = Tensor::zeros(&d);
        assert_eq!(grad_out.dims(), &[n, hd]);
        let mut gh = grad_out.data().to_vec();
        let mut gh_prev = vec![0.0f32; n * hd];
        let mut dz = vec![0.0f32; n * hd];
        let mut xt = vec![0.0f32; n * feat];
        let mut gx = vec![0.0f32; n * feat];
        for t in (0..steps).rev() {
            // dz = gh * (1 - h_{t+1}^2)
            let h_next = cache.hs[t + 1].data();
            for ((dzv, &gv), &hv) in dz.iter_mut().zip(&gh).zip(h_next) {
                *dzv = gv * (1.0 - hv * hv);
            }
            time_slice_into(&cache.x, t, &mut xt);
            affine_backward_into(
                &dz,
                &xt,
                cache.hs[t].data(),
                &mut self.wx,
                &mut self.wh,
                &mut self.b,
                n,
                &mut gx,
                &mut gh_prev,
                false,
            );
            scatter_time(&mut grad_x, &gx, t);
            std::mem::swap(&mut gh, &mut gh_prev);
        }
        grad_x
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.wx);
        f(&mut self.wh);
        f(&mut self.b);
    }
}

// ---------------------------------------------------------------------------
// LSTM
// ---------------------------------------------------------------------------

/// LSTM with input/forget/cell/output gates, returning the final hidden state.
pub struct Lstm {
    // One (Wx, Wh, b) triple per gate: i, f, g, o.
    wx: [Param; 4],
    wh: [Param; 4],
    b: [Param; 4],
    input: usize,
    hidden: usize,
    cache: Option<LstmCache>,
}

struct LstmStep {
    i: Tensor,
    f: Tensor,
    g: Tensor,
    o: Tensor,
    tanh_c: Tensor, // tanh(c_t)
}

struct LstmCache {
    x: Tensor,
    hs: Vec<Tensor>,
    cs: Vec<Tensor>,
    steps_cache: Vec<LstmStep>,
}

fn sigmoid(v: f32) -> f32 {
    1.0 / (1.0 + (-v).exp())
}

impl Lstm {
    /// Creates an LSTM layer; forget-gate bias starts at 1 (standard trick).
    pub fn new(input: usize, hidden: usize, rng: &mut SeededRng) -> Self {
        let mk_wx =
            |rng: &mut SeededRng| Param::new(init::xavier(&[hidden, input], input, hidden, rng));
        let mk_wh =
            |rng: &mut SeededRng| Param::new(init::xavier(&[hidden, hidden], hidden, hidden, rng));
        let wx = [mk_wx(rng), mk_wx(rng), mk_wx(rng), mk_wx(rng)];
        let wh = [mk_wh(rng), mk_wh(rng), mk_wh(rng), mk_wh(rng)];
        let mut b = [
            Param::new(Tensor::zeros(&[hidden])),
            Param::new(Tensor::zeros(&[hidden])),
            Param::new(Tensor::zeros(&[hidden])),
            Param::new(Tensor::zeros(&[hidden])),
        ];
        b[1].value.fill(1.0); // forget gate bias
        Lstm {
            wx,
            wh,
            b,
            input,
            hidden,
            cache: None,
        }
    }
}

impl Layer for Lstm {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let d = x.dims();
        assert_eq!(d.len(), 3, "Lstm expects (N, D, n), got {d:?}");
        assert_eq!(d[1], self.input, "input feature mismatch");
        let (n, steps) = (d[0], d[2]);
        let hd = self.hidden;
        let mut hs = vec![Tensor::zeros(&[n, hd])];
        let mut cs = vec![Tensor::zeros(&[n, hd])];
        let mut steps_cache = Vec::with_capacity(steps);
        let mut xt = vec![0.0f32; n * self.input];
        let mut z = vec![0.0f32; n * hd];
        // Maps the reused pre-activation buffer into a fresh (cached) gate
        // tensor; the affine products themselves never allocate.
        let activate = |z: &[f32], tanh: bool| -> Tensor {
            let mut out = Tensor::zeros(&[n, hd]);
            for (o, &v) in out.data_mut().iter_mut().zip(z) {
                *o = if tanh { v.tanh() } else { sigmoid(v) };
            }
            out
        };
        for t in 0..steps {
            time_slice_into(x, t, &mut xt);
            let h_prev = &hs[t];
            affine_into(
                &xt,
                h_prev.data(),
                &self.wx[0].value,
                &self.wh[0].value,
                &self.b[0].value,
                n,
                &mut z,
            );
            let i = activate(&z, false);
            affine_into(
                &xt,
                h_prev.data(),
                &self.wx[1].value,
                &self.wh[1].value,
                &self.b[1].value,
                n,
                &mut z,
            );
            let f = activate(&z, false);
            affine_into(
                &xt,
                h_prev.data(),
                &self.wx[2].value,
                &self.wh[2].value,
                &self.b[2].value,
                n,
                &mut z,
            );
            let g = activate(&z, true);
            affine_into(
                &xt,
                h_prev.data(),
                &self.wx[3].value,
                &self.wh[3].value,
                &self.b[3].value,
                n,
                &mut z,
            );
            let o = activate(&z, false);
            let c = f
                .mul(&cs[t])
                .and_then(|fc| i.mul(&g).and_then(|ig| fc.add(&ig)))
                .expect("cell update");
            let tanh_c = c.map(|v| v.tanh());
            let h = o.mul(&tanh_c).expect("hidden update");
            hs.push(h);
            cs.push(c.clone());
            steps_cache.push(LstmStep { i, f, g, o, tanh_c });
        }
        let out = hs[steps].clone();
        if train {
            self.cache = Some(LstmCache {
                x: x.clone(),
                hs,
                cs,
                steps_cache,
            });
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let cache = self.cache.take().expect("backward without cached forward");
        let d = cache.x.dims().to_vec();
        let (n, steps) = (d[0], d[2]);
        let (feat, hd) = (self.input, self.hidden);
        let mut grad_x = Tensor::zeros(&d);
        let mut gh = grad_out.data().to_vec();
        let mut gc = vec![0.0f32; n * hd];
        let mut gc_total = vec![0.0f32; n * hd];
        let mut dz = vec![0.0f32; n * hd];
        let mut xt = vec![0.0f32; n * feat];
        let mut gx_total = vec![0.0f32; n * feat];
        let mut gh_total = vec![0.0f32; n * hd];
        for t in (0..steps).rev() {
            let st = &cache.steps_cache[t];
            let h_prev = cache.hs[t].data();
            time_slice_into(&cache.x, t, &mut xt);
            // h = o·tanh(c): c grad from the h path plus the carried gc.
            for idx in 0..n * hd {
                let tc = st.tanh_c.data()[idx];
                gc_total[idx] = gh[idx] * st.o.data()[idx] * (1.0 - tc * tc) + gc[idx];
            }
            // Gate o: dzo = (gh·tanh_c)·σ'(o).
            for idx in 0..n * hd {
                let y = st.o.data()[idx];
                dz[idx] = gh[idx] * st.tanh_c.data()[idx] * y * (1.0 - y);
            }
            affine_backward_into(
                &dz,
                &xt,
                h_prev,
                &mut self.wx[3],
                &mut self.wh[3],
                &mut self.b[3],
                n,
                &mut gx_total,
                &mut gh_total,
                false,
            );
            // Gate i: dzi = (gc_total·g)·σ'(i).
            for idx in 0..n * hd {
                let y = st.i.data()[idx];
                dz[idx] = gc_total[idx] * st.g.data()[idx] * y * (1.0 - y);
            }
            affine_backward_into(
                &dz,
                &xt,
                h_prev,
                &mut self.wx[0],
                &mut self.wh[0],
                &mut self.b[0],
                n,
                &mut gx_total,
                &mut gh_total,
                true,
            );
            // Gate f: dzf = (gc_total·c_prev)·σ'(f).
            for idx in 0..n * hd {
                let y = st.f.data()[idx];
                dz[idx] = gc_total[idx] * cache.cs[t].data()[idx] * y * (1.0 - y);
            }
            affine_backward_into(
                &dz,
                &xt,
                h_prev,
                &mut self.wx[1],
                &mut self.wh[1],
                &mut self.b[1],
                n,
                &mut gx_total,
                &mut gh_total,
                true,
            );
            // Gate g: dzg = (gc_total·i)·tanh'(g).
            for idx in 0..n * hd {
                let y = st.g.data()[idx];
                dz[idx] = gc_total[idx] * st.i.data()[idx] * (1.0 - y * y);
            }
            affine_backward_into(
                &dz,
                &xt,
                h_prev,
                &mut self.wx[2],
                &mut self.wh[2],
                &mut self.b[2],
                n,
                &mut gx_total,
                &mut gh_total,
                true,
            );
            // Carry: gc = gc_total·f.
            for idx in 0..n * hd {
                gc[idx] = gc_total[idx] * st.f.data()[idx];
            }
            scatter_time(&mut grad_x, &gx_total, t);
            std::mem::swap(&mut gh, &mut gh_total);
        }
        grad_x
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for k in 0..4 {
            f(&mut self.wx[k]);
            f(&mut self.wh[k]);
            f(&mut self.b[k]);
        }
    }
}

// ---------------------------------------------------------------------------
// GRU
// ---------------------------------------------------------------------------

/// GRU with reset/update gates, returning the final hidden state.
///
/// Uses the PyTorch gate formulation:
/// `r = σ(..)`, `z = σ(..)`, `ñ = tanh(Wx x + b + r ⊙ (Wh h + bh))`,
/// `h' = (1 − z) ⊙ ñ + z ⊙ h`.
pub struct Gru {
    wx: [Param; 3], // r, z, n
    wh: [Param; 3],
    bx: [Param; 3],
    bh: Param, // hidden bias of candidate gate (kept separate per PyTorch)
    input: usize,
    hidden: usize,
    cache: Option<GruCache>,
}

struct GruStep {
    r: Tensor,
    z: Tensor,
    n_cand: Tensor,
    hh_n: Tensor, // Wh_n h + bh (pre reset-multiplication)
}

struct GruCache {
    x: Tensor,
    hs: Vec<Tensor>,
    steps_cache: Vec<GruStep>,
}

impl Gru {
    /// Creates a GRU layer with Xavier-initialized weights.
    pub fn new(input: usize, hidden: usize, rng: &mut SeededRng) -> Self {
        let mk_wx =
            |rng: &mut SeededRng| Param::new(init::xavier(&[hidden, input], input, hidden, rng));
        let mk_wh =
            |rng: &mut SeededRng| Param::new(init::xavier(&[hidden, hidden], hidden, hidden, rng));
        Gru {
            wx: [mk_wx(rng), mk_wx(rng), mk_wx(rng)],
            wh: [mk_wh(rng), mk_wh(rng), mk_wh(rng)],
            bx: [
                Param::new(Tensor::zeros(&[hidden])),
                Param::new(Tensor::zeros(&[hidden])),
                Param::new(Tensor::zeros(&[hidden])),
            ],
            bh: Param::new(Tensor::zeros(&[hidden])),
            input,
            hidden,
            cache: None,
        }
    }
}

impl Layer for Gru {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let d = x.dims();
        assert_eq!(d.len(), 3, "Gru expects (N, D, n), got {d:?}");
        assert_eq!(d[1], self.input, "input feature mismatch");
        let (n, steps) = (d[0], d[2]);
        let hd = self.hidden;
        let mut hs = vec![Tensor::zeros(&[n, hd])];
        let mut steps_cache = Vec::with_capacity(steps);
        let mut xt = vec![0.0f32; n * self.input];
        let mut zbuf = vec![0.0f32; n * hd];
        let activate = |z: &[f32], tanh: bool| -> Tensor {
            let mut out = Tensor::zeros(&[n, hd]);
            for (o, &v) in out.data_mut().iter_mut().zip(z) {
                *o = if tanh { v.tanh() } else { sigmoid(v) };
            }
            out
        };
        for t in 0..steps {
            time_slice_into(x, t, &mut xt);
            let h_prev = &hs[t];
            affine_into(
                &xt,
                h_prev.data(),
                &self.wx[0].value,
                &self.wh[0].value,
                &self.bx[0].value,
                n,
                &mut zbuf,
            );
            let r = activate(&zbuf, false);
            affine_into(
                &xt,
                h_prev.data(),
                &self.wx[1].value,
                &self.wh[1].value,
                &self.bx[1].value,
                n,
                &mut zbuf,
            );
            let z = activate(&zbuf, false);
            // hh_n = Wh_n h + bh (cached for backward); candidate
            // pre-activation = Wx_n x + bx_n + r ⊙ hh_n.
            let mut hh_n = Tensor::zeros(&[n, hd]);
            gemm_nt(
                n,
                hd,
                hd,
                h_prev.data(),
                self.wh[2].value.data(),
                hh_n.data_mut(),
                false,
            );
            for row in hh_n.data_mut().chunks_mut(hd) {
                for (v, &bv) in row.iter_mut().zip(self.bh.value.data()) {
                    *v += bv;
                }
            }
            gemm_nt(
                n,
                self.input,
                hd,
                &xt,
                self.wx[2].value.data(),
                &mut zbuf,
                false,
            );
            for (row, (rr, hhr)) in zbuf
                .chunks_mut(hd)
                .zip(r.data().chunks(hd).zip(hh_n.data().chunks(hd)))
            {
                for (k, v) in row.iter_mut().enumerate() {
                    *v += self.bx[2].value.data()[k] + rr[k] * hhr[k];
                }
            }
            let n_cand = activate(&zbuf, true);
            // h' = (1-z)*n + z*h
            let h = n_cand
                .zip_with(&z, |nv, zv| (1.0 - zv) * nv)
                .and_then(|a| z.mul(h_prev).and_then(|zh| a.add(&zh)))
                .expect("gru hidden");
            hs.push(h);
            steps_cache.push(GruStep { r, z, n_cand, hh_n });
        }
        let out = hs[steps].clone();
        if train {
            self.cache = Some(GruCache {
                x: x.clone(),
                hs,
                steps_cache,
            });
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let cache = self.cache.take().expect("backward without cached forward");
        let d = cache.x.dims().to_vec();
        let (n, steps) = (d[0], d[2]);
        let (feat, hd) = (self.input, self.hidden);
        let mut grad_x = Tensor::zeros(&d);
        let mut gh = grad_out.data().to_vec();
        let mut gh_prev = vec![0.0f32; n * hd];
        let mut dzn = vec![0.0f32; n * hd];
        let mut tmp = vec![0.0f32; n * hd];
        let mut dz = vec![0.0f32; n * hd];
        let mut xt = vec![0.0f32; n * feat];
        let mut gx_total = vec![0.0f32; n * feat];
        for t in (0..steps).rev() {
            let st = &cache.steps_cache[t];
            let h_prev = cache.hs[t].data();
            time_slice_into(&cache.x, t, &mut xt);
            // h' = (1-z)*n + z*h_prev: dzn = gh·(1−z)·tanh'(n); carry gh·z.
            for idx in 0..n * hd {
                let (zv, nv) = (st.z.data()[idx], st.n_cand.data()[idx]);
                dzn[idx] = gh[idx] * (1.0 - zv) * (1.0 - nv * nv);
                gh_prev[idx] = gh[idx] * zv;
            }
            // Candidate x-side params: dWx_n += dznᵀ·x, dbx_n += colsums,
            // and the x-side input gradient starts gx_total.
            gemm_tn(hd, n, feat, &dzn, &xt, self.wx[2].grad.data_mut(), true);
            for ni in 0..n {
                for k in 0..hd {
                    self.bx[2].grad.data_mut()[k] += dzn[ni * hd + k];
                }
            }
            gemm_nn(
                n,
                hd,
                feat,
                &dzn,
                self.wx[2].value.data(),
                &mut gx_total,
                false,
            );
            // Candidate h-side params through hh_n: ghh_n = dzn·r.
            for idx in 0..n * hd {
                tmp[idx] = dzn[idx] * st.r.data()[idx];
            }
            gemm_tn(hd, n, hd, &tmp, h_prev, self.wh[2].grad.data_mut(), true);
            for ni in 0..n {
                for k in 0..hd {
                    self.bh.grad.data_mut()[k] += tmp[ni * hd + k];
                }
            }
            gemm_nn(n, hd, hd, &tmp, self.wh[2].value.data(), &mut gh_prev, true);
            // Gate r: dzr = (dzn·hh_n)·σ'(r).
            for idx in 0..n * hd {
                let y = st.r.data()[idx];
                dz[idx] = dzn[idx] * st.hh_n.data()[idx] * y * (1.0 - y);
            }
            affine_backward_into(
                &dz,
                &xt,
                h_prev,
                &mut self.wx[0],
                &mut self.wh[0],
                &mut self.bx[0],
                n,
                &mut gx_total,
                &mut gh_prev,
                true,
            );
            // Gate z: gz = gh·(h_prev − n); dzz = gz·σ'(z).
            for idx in 0..n * hd {
                let y = st.z.data()[idx];
                dz[idx] = gh[idx] * (h_prev[idx] - st.n_cand.data()[idx]) * y * (1.0 - y);
            }
            affine_backward_into(
                &dz,
                &xt,
                h_prev,
                &mut self.wx[1],
                &mut self.wh[1],
                &mut self.bx[1],
                n,
                &mut gx_total,
                &mut gh_prev,
                true,
            );
            scatter_time(&mut grad_x, &gx_total, t);
            std::mem::swap(&mut gh, &mut gh_prev);
        }
        grad_x
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for k in 0..3 {
            f(&mut self.wx[k]);
            f(&mut self.wh[k]);
            f(&mut self.bx[k]);
        }
        f(&mut self.bh);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_input(rng: &mut SeededRng) -> Tensor {
        Tensor::uniform(&[3, 2, 5], -1.0, 1.0, rng)
    }

    #[test]
    fn rnn_output_shape() {
        let mut rng = SeededRng::new(0);
        let mut rnn = Rnn::new(2, 7, &mut rng);
        let x = toy_input(&mut rng);
        let y = rnn.forward(&x, false);
        assert_eq!(y.dims(), &[3, 7]);
        assert!(
            y.data().iter().all(|v| v.abs() <= 1.0),
            "tanh bound violated"
        );
    }

    #[test]
    fn lstm_output_shape() {
        let mut rng = SeededRng::new(1);
        let mut lstm = Lstm::new(2, 4, &mut rng);
        let x = toy_input(&mut rng);
        let y = lstm.forward(&x, false);
        assert_eq!(y.dims(), &[3, 4]);
    }

    #[test]
    fn gru_output_shape() {
        let mut rng = SeededRng::new(2);
        let mut gru = Gru::new(2, 4, &mut rng);
        let x = toy_input(&mut rng);
        let y = gru.forward(&x, false);
        assert_eq!(y.dims(), &[3, 4]);
    }

    #[test]
    fn rnn_depends_on_sequence_order() {
        let mut rng = SeededRng::new(3);
        let mut rnn = Rnn::new(1, 4, &mut rng);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 4]).unwrap();
        let x_rev = Tensor::from_vec(vec![4.0, 3.0, 2.0, 1.0], &[1, 1, 4]).unwrap();
        let y = rnn.forward(&x, false);
        let y_rev = rnn.forward(&x_rev, false);
        assert!(!y.allclose(&y_rev, 1e-5), "RNN ignored sequence order");
    }

    #[test]
    fn gradients_check_against_finite_differences() {
        let mut rng = SeededRng::new(5);
        let x = Tensor::uniform(&[2, 3, 4], -1.0, 1.0, &mut rng);
        let mut rnn = Rnn::new(3, 4, &mut rng);
        assert!(
            crate::gradcheck::check_layer(&mut rnn, &x, 1e-2, 7).passes(2e-2),
            "RNN gradients"
        );
        let mut lstm = Lstm::new(3, 4, &mut rng);
        assert!(
            crate::gradcheck::check_layer(&mut lstm, &x, 1e-2, 8).passes(2e-2),
            "LSTM gradients"
        );
        let mut gru = Gru::new(3, 4, &mut rng);
        assert!(
            crate::gradcheck::check_layer(&mut gru, &x, 1e-2, 9).passes(2e-2),
            "GRU gradients"
        );
    }

    #[test]
    fn param_counts() {
        let mut rng = SeededRng::new(4);
        let (i, h) = (3, 5);
        let mut rnn = Rnn::new(i, h, &mut rng);
        assert_eq!(rnn.param_count(), h * i + h * h + h);
        let mut lstm = Lstm::new(i, h, &mut rng);
        assert_eq!(lstm.param_count(), 4 * (h * i + h * h + h));
        let mut gru = Gru::new(i, h, &mut rng);
        assert_eq!(gru.param_count(), 3 * (h * i + h * h + h) + h);
    }
}
