//! Recurrent baselines: RNN, LSTM and GRU layers with truncated-free BPTT.
//!
//! The paper's experimental study (§2.1, Table 2) includes vanilla RNN,
//! LSTM and GRU classifiers with one recurrent hidden layer followed by a
//! dense classification head. These layers consume `(N, D, n)` inputs
//! (batch, input features per step, time steps) and emit the final hidden
//! state `(N, H)`.

use crate::layers::Layer;
use crate::{init, Param};
use dcam_tensor::{SeededRng, Tensor};

/// Extracts time slice `t` from an `(N, D, n)` tensor as `(N, D)`.
fn time_slice(x: &Tensor, t: usize) -> Tensor {
    let d = x.dims();
    let (n, feat, steps) = (d[0], d[1], d[2]);
    let mut out = Tensor::zeros(&[n, feat]);
    for ni in 0..n {
        for fi in 0..feat {
            out.data_mut()[ni * feat + fi] = x.data()[(ni * feat + fi) * steps + t];
        }
    }
    out
}

/// Adds an `(N, D)` gradient into slice `t` of an `(N, D, n)` gradient tensor.
fn scatter_time(grad_x: &mut Tensor, g: &Tensor, t: usize) {
    let d = grad_x.dims();
    let (n, feat, steps) = (d[0], d[1], d[2]);
    for ni in 0..n {
        for fi in 0..feat {
            grad_x.data_mut()[(ni * feat + fi) * steps + t] += g.data()[ni * feat + fi];
        }
    }
}

/// `x Wx^T + h Wh^T + b` for a batch: the shared affine step of every cell.
fn affine(x: &Tensor, h: &Tensor, wx: &Tensor, wh: &Tensor, b: &Tensor) -> Tensor {
    let mut z = x.matmul_nt(wx).expect("x projection");
    let zh = h.matmul_nt(wh).expect("h projection");
    z.add_assign(&zh).expect("gate add");
    let (n, hd) = (z.dims()[0], z.dims()[1]);
    for ni in 0..n {
        for k in 0..hd {
            z.data_mut()[ni * hd + k] += b.data()[k];
        }
    }
    z
}

/// Accumulates the parameter gradients of one affine step:
/// `dWx += g^T x`, `dWh += g^T h`, `db += column-sums(g)`,
/// and returns `(g Wx, g Wh)` — gradients flowing to `x` and `h`.
fn affine_backward(
    g: &Tensor,
    x: &Tensor,
    h: &Tensor,
    wx: &mut Param,
    wh: &mut Param,
    b: &mut Param,
) -> (Tensor, Tensor) {
    let dwx = g.matmul_tn(x).expect("dWx");
    wx.grad.add_assign(&dwx).expect("dWx accumulate");
    let dwh = g.matmul_tn(h).expect("dWh");
    wh.grad.add_assign(&dwh).expect("dWh accumulate");
    let (n, hd) = (g.dims()[0], g.dims()[1]);
    for ni in 0..n {
        for k in 0..hd {
            b.grad.data_mut()[k] += g.data()[ni * hd + k];
        }
    }
    let gx = g.matmul(&wx.value).expect("gx");
    let gh = g.matmul(&wh.value).expect("gh");
    (gx, gh)
}

// ---------------------------------------------------------------------------
// Vanilla RNN
// ---------------------------------------------------------------------------

/// Elman RNN: `h_t = tanh(Wx x_t + Wh h_{t−1} + b)`, returning `h_n`.
pub struct Rnn {
    wx: Param,
    wh: Param,
    b: Param,
    input: usize,
    hidden: usize,
    cache: Option<RnnCache>,
}

struct RnnCache {
    x: Tensor,
    hs: Vec<Tensor>, // h_0 (zeros) .. h_n
}

impl Rnn {
    /// Creates an RNN layer with Xavier-initialized weights.
    pub fn new(input: usize, hidden: usize, rng: &mut SeededRng) -> Self {
        Rnn {
            wx: Param::new(init::xavier(&[hidden, input], input, hidden, rng)),
            wh: Param::new(init::xavier(&[hidden, hidden], hidden, hidden, rng)),
            b: Param::new(Tensor::zeros(&[hidden])),
            input,
            hidden,
            cache: None,
        }
    }

    /// Hidden state width.
    pub fn hidden_size(&self) -> usize {
        self.hidden
    }
}

impl Layer for Rnn {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let d = x.dims();
        assert_eq!(d.len(), 3, "Rnn expects (N, D, n), got {d:?}");
        assert_eq!(d[1], self.input, "input feature mismatch");
        let (n, steps) = (d[0], d[2]);
        let mut hs = vec![Tensor::zeros(&[n, self.hidden])];
        for t in 0..steps {
            let xt = time_slice(x, t);
            let z = affine(&xt, &hs[t], &self.wx.value, &self.wh.value, &self.b.value);
            hs.push(z.map(|v| v.tanh()));
        }
        let out = hs[steps].clone();
        if train {
            self.cache = Some(RnnCache { x: x.clone(), hs });
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let cache = self.cache.take().expect("backward without cached forward");
        let d = cache.x.dims().to_vec();
        let (n, steps) = (d[0], d[2]);
        let mut grad_x = Tensor::zeros(&d);
        let mut gh = grad_out.clone();
        assert_eq!(gh.dims(), &[n, self.hidden]);
        for t in (0..steps).rev() {
            // dz = gh * (1 - h_{t+1}^2)
            let h_next = &cache.hs[t + 1];
            let dz = gh
                .zip_with(h_next, |g, h| g * (1.0 - h * h))
                .expect("tanh grad");
            let xt = time_slice(&cache.x, t);
            let (gx, gh_prev) = affine_backward(
                &dz,
                &xt,
                &cache.hs[t],
                &mut self.wx,
                &mut self.wh,
                &mut self.b,
            );
            scatter_time(&mut grad_x, &gx, t);
            gh = gh_prev;
        }
        grad_x
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.wx);
        f(&mut self.wh);
        f(&mut self.b);
    }
}

// ---------------------------------------------------------------------------
// LSTM
// ---------------------------------------------------------------------------

/// LSTM with input/forget/cell/output gates, returning the final hidden state.
pub struct Lstm {
    // One (Wx, Wh, b) triple per gate: i, f, g, o.
    wx: [Param; 4],
    wh: [Param; 4],
    b: [Param; 4],
    input: usize,
    hidden: usize,
    cache: Option<LstmCache>,
}

struct LstmStep {
    i: Tensor,
    f: Tensor,
    g: Tensor,
    o: Tensor,
    tanh_c: Tensor, // tanh(c_t)
}

struct LstmCache {
    x: Tensor,
    hs: Vec<Tensor>,
    cs: Vec<Tensor>,
    steps_cache: Vec<LstmStep>,
}

fn sigmoid(v: f32) -> f32 {
    1.0 / (1.0 + (-v).exp())
}

impl Lstm {
    /// Creates an LSTM layer; forget-gate bias starts at 1 (standard trick).
    pub fn new(input: usize, hidden: usize, rng: &mut SeededRng) -> Self {
        let mk_wx =
            |rng: &mut SeededRng| Param::new(init::xavier(&[hidden, input], input, hidden, rng));
        let mk_wh =
            |rng: &mut SeededRng| Param::new(init::xavier(&[hidden, hidden], hidden, hidden, rng));
        let wx = [mk_wx(rng), mk_wx(rng), mk_wx(rng), mk_wx(rng)];
        let wh = [mk_wh(rng), mk_wh(rng), mk_wh(rng), mk_wh(rng)];
        let mut b = [
            Param::new(Tensor::zeros(&[hidden])),
            Param::new(Tensor::zeros(&[hidden])),
            Param::new(Tensor::zeros(&[hidden])),
            Param::new(Tensor::zeros(&[hidden])),
        ];
        b[1].value.fill(1.0); // forget gate bias
        Lstm {
            wx,
            wh,
            b,
            input,
            hidden,
            cache: None,
        }
    }
}

impl Layer for Lstm {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let d = x.dims();
        assert_eq!(d.len(), 3, "Lstm expects (N, D, n), got {d:?}");
        assert_eq!(d[1], self.input, "input feature mismatch");
        let (n, steps) = (d[0], d[2]);
        let mut hs = vec![Tensor::zeros(&[n, self.hidden])];
        let mut cs = vec![Tensor::zeros(&[n, self.hidden])];
        let mut steps_cache = Vec::with_capacity(steps);
        for t in 0..steps {
            let xt = time_slice(x, t);
            let h_prev = &hs[t];
            let zi = affine(
                &xt,
                h_prev,
                &self.wx[0].value,
                &self.wh[0].value,
                &self.b[0].value,
            );
            let zf = affine(
                &xt,
                h_prev,
                &self.wx[1].value,
                &self.wh[1].value,
                &self.b[1].value,
            );
            let zg = affine(
                &xt,
                h_prev,
                &self.wx[2].value,
                &self.wh[2].value,
                &self.b[2].value,
            );
            let zo = affine(
                &xt,
                h_prev,
                &self.wx[3].value,
                &self.wh[3].value,
                &self.b[3].value,
            );
            let i = zi.map(sigmoid);
            let f = zf.map(sigmoid);
            let g = zg.map(|v| v.tanh());
            let o = zo.map(sigmoid);
            let c = f
                .mul(&cs[t])
                .and_then(|fc| i.mul(&g).and_then(|ig| fc.add(&ig)))
                .expect("cell update");
            let tanh_c = c.map(|v| v.tanh());
            let h = o.mul(&tanh_c).expect("hidden update");
            hs.push(h);
            cs.push(c.clone());
            steps_cache.push(LstmStep { i, f, g, o, tanh_c });
        }
        let out = hs[steps].clone();
        if train {
            self.cache = Some(LstmCache {
                x: x.clone(),
                hs,
                cs,
                steps_cache,
            });
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let cache = self.cache.take().expect("backward without cached forward");
        let d = cache.x.dims().to_vec();
        let steps = d[2];
        let mut grad_x = Tensor::zeros(&d);
        let mut gh = grad_out.clone();
        let mut gc = Tensor::zeros(gh.dims());
        for t in (0..steps).rev() {
            let st = &cache.steps_cache[t];
            // h = o * tanh(c)
            let go = gh.mul(&st.tanh_c).expect("go");
            let gtanh_c = gh.mul(&st.o).expect("gtanh_c");
            // c grad: from h path plus carried gc
            let mut gc_total = gtanh_c
                .zip_with(&st.tanh_c, |g, tc| g * (1.0 - tc * tc))
                .expect("dtanh");
            gc_total.add_assign(&gc).expect("carry gc");
            // c = f*c_prev + i*g
            let gf = gc_total.mul(&cache.cs[t]).expect("gf");
            let gi = gc_total.mul(&st.g).expect("gi");
            let gg = gc_total.mul(&st.i).expect("gg");
            gc = gc_total.mul(&st.f).expect("gc carry");
            // Pre-activation grads.
            let dzi = gi.zip_with(&st.i, |g, y| g * y * (1.0 - y)).expect("dzi");
            let dzf = gf.zip_with(&st.f, |g, y| g * y * (1.0 - y)).expect("dzf");
            let dzg = gg.zip_with(&st.g, |g, y| g * (1.0 - y * y)).expect("dzg");
            let dzo = go.zip_with(&st.o, |g, y| g * y * (1.0 - y)).expect("dzo");

            let xt = time_slice(&cache.x, t);
            let h_prev = &cache.hs[t];
            let mut gx_total: Option<Tensor> = None;
            let mut gh_total: Option<Tensor> = None;
            for (k, dz) in [dzi, dzf, dzg, dzo].iter().enumerate() {
                let (gx, gh_part) = affine_backward(
                    dz,
                    &xt,
                    h_prev,
                    &mut self.wx[k],
                    &mut self.wh[k],
                    &mut self.b[k],
                );
                match &mut gx_total {
                    Some(acc) => acc.add_assign(&gx).expect("gx sum"),
                    None => gx_total = Some(gx),
                }
                match &mut gh_total {
                    Some(acc) => acc.add_assign(&gh_part).expect("gh sum"),
                    None => gh_total = Some(gh_part),
                }
            }
            scatter_time(&mut grad_x, &gx_total.expect("gx"), t);
            gh = gh_total.expect("gh");
        }
        grad_x
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for k in 0..4 {
            f(&mut self.wx[k]);
            f(&mut self.wh[k]);
            f(&mut self.b[k]);
        }
    }
}

// ---------------------------------------------------------------------------
// GRU
// ---------------------------------------------------------------------------

/// GRU with reset/update gates, returning the final hidden state.
///
/// Uses the PyTorch gate formulation:
/// `r = σ(..)`, `z = σ(..)`, `ñ = tanh(Wx x + b + r ⊙ (Wh h + bh))`,
/// `h' = (1 − z) ⊙ ñ + z ⊙ h`.
pub struct Gru {
    wx: [Param; 3], // r, z, n
    wh: [Param; 3],
    bx: [Param; 3],
    bh: Param, // hidden bias of candidate gate (kept separate per PyTorch)
    input: usize,
    hidden: usize,
    cache: Option<GruCache>,
}

struct GruStep {
    r: Tensor,
    z: Tensor,
    n_cand: Tensor,
    hh_n: Tensor, // Wh_n h + bh (pre reset-multiplication)
}

struct GruCache {
    x: Tensor,
    hs: Vec<Tensor>,
    steps_cache: Vec<GruStep>,
}

impl Gru {
    /// Creates a GRU layer with Xavier-initialized weights.
    pub fn new(input: usize, hidden: usize, rng: &mut SeededRng) -> Self {
        let mk_wx =
            |rng: &mut SeededRng| Param::new(init::xavier(&[hidden, input], input, hidden, rng));
        let mk_wh =
            |rng: &mut SeededRng| Param::new(init::xavier(&[hidden, hidden], hidden, hidden, rng));
        Gru {
            wx: [mk_wx(rng), mk_wx(rng), mk_wx(rng)],
            wh: [mk_wh(rng), mk_wh(rng), mk_wh(rng)],
            bx: [
                Param::new(Tensor::zeros(&[hidden])),
                Param::new(Tensor::zeros(&[hidden])),
                Param::new(Tensor::zeros(&[hidden])),
            ],
            bh: Param::new(Tensor::zeros(&[hidden])),
            input,
            hidden,
            cache: None,
        }
    }
}

impl Layer for Gru {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let d = x.dims();
        assert_eq!(d.len(), 3, "Gru expects (N, D, n), got {d:?}");
        assert_eq!(d[1], self.input, "input feature mismatch");
        let (n, steps) = (d[0], d[2]);
        let mut hs = vec![Tensor::zeros(&[n, self.hidden])];
        let mut steps_cache = Vec::with_capacity(steps);
        for t in 0..steps {
            let xt = time_slice(x, t);
            let h_prev = &hs[t];
            let zr = affine(
                &xt,
                h_prev,
                &self.wx[0].value,
                &self.wh[0].value,
                &self.bx[0].value,
            );
            let zz = affine(
                &xt,
                h_prev,
                &self.wx[1].value,
                &self.wh[1].value,
                &self.bx[1].value,
            );
            let r = zr.map(sigmoid);
            let z = zz.map(sigmoid);
            // hh_n = Wh_n h + bh ; candidate pre-activation = Wx_n x + bx_n + r*hh_n
            let mut hh_n = h_prev.matmul_nt(&self.wh[2].value).expect("hh_n");
            let hd = self.hidden;
            for ni in 0..n {
                for k in 0..hd {
                    hh_n.data_mut()[ni * hd + k] += self.bh.value.data()[k];
                }
            }
            let mut zn = xt.matmul_nt(&self.wx[2].value).expect("xn");
            for ni in 0..n {
                for k in 0..hd {
                    zn.data_mut()[ni * hd + k] += self.bx[2].value.data()[k];
                }
            }
            let rhh = r.mul(&hh_n).expect("r*hh");
            zn.add_assign(&rhh).expect("candidate preact");
            let n_cand = zn.map(|v| v.tanh());
            // h' = (1-z)*n + z*h
            let h = n_cand
                .zip_with(&z, |nv, zv| (1.0 - zv) * nv)
                .and_then(|a| z.mul(h_prev).and_then(|zh| a.add(&zh)))
                .expect("gru hidden");
            hs.push(h);
            steps_cache.push(GruStep { r, z, n_cand, hh_n });
        }
        let out = hs[steps].clone();
        if train {
            self.cache = Some(GruCache {
                x: x.clone(),
                hs,
                steps_cache,
            });
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let cache = self.cache.take().expect("backward without cached forward");
        let d = cache.x.dims().to_vec();
        let (n, steps) = (d[0], d[2]);
        let hd = self.hidden;
        let mut grad_x = Tensor::zeros(&d);
        let mut gh = grad_out.clone();
        for t in (0..steps).rev() {
            let st = &cache.steps_cache[t];
            let h_prev = &cache.hs[t];
            // h' = (1-z)*n + z*h_prev
            let gz = gh
                .zip_with(&st.n_cand, |g, nv| -g * nv)
                .and_then(|a| gh.mul(h_prev).and_then(|b| a.add(&b)))
                .expect("gz");
            let gn = gh.zip_with(&st.z, |g, zv| g * (1.0 - zv)).expect("gn");
            let mut gh_prev = gh.mul(&st.z).expect("gh carry");
            // n = tanh(zn); zn = Wx_n x + bx_n + r*hh_n
            let dzn = gn
                .zip_with(&st.n_cand, |g, y| g * (1.0 - y * y))
                .expect("dzn");
            let gr = dzn.mul(&st.hh_n).expect("gr");
            let ghh_n = dzn.mul(&st.r).expect("ghh_n");
            // Candidate x-side params.
            let xt = time_slice(&cache.x, t);
            let dwx_n = dzn.matmul_tn(&xt).expect("dWx_n");
            self.wx[2].grad.add_assign(&dwx_n).expect("acc dWx_n");
            for ni in 0..n {
                for k in 0..hd {
                    self.bx[2].grad.data_mut()[k] += dzn.data()[ni * hd + k];
                }
            }
            let gx_n = dzn.matmul(&self.wx[2].value).expect("gx_n");
            // Candidate h-side params (through hh_n).
            let dwh_n = ghh_n.matmul_tn(h_prev).expect("dWh_n");
            self.wh[2].grad.add_assign(&dwh_n).expect("acc dWh_n");
            for ni in 0..n {
                for k in 0..hd {
                    self.bh.grad.data_mut()[k] += ghh_n.data()[ni * hd + k];
                }
            }
            gh_prev
                .add_assign(&ghh_n.matmul(&self.wh[2].value).expect("gh_n"))
                .expect("gh acc");
            // Gate r and z pre-activations.
            let dzr = gr.zip_with(&st.r, |g, y| g * y * (1.0 - y)).expect("dzr");
            let dzz = gz.zip_with(&st.z, |g, y| g * y * (1.0 - y)).expect("dzz");
            let (gx_r, gh_r) = affine_backward(
                &dzr,
                &xt,
                h_prev,
                &mut self.wx[0],
                &mut self.wh[0],
                &mut self.bx[0],
            );
            let (gx_z, gh_z) = affine_backward(
                &dzz,
                &xt,
                h_prev,
                &mut self.wx[1],
                &mut self.wh[1],
                &mut self.bx[1],
            );
            gh_prev.add_assign(&gh_r).expect("gh r");
            gh_prev.add_assign(&gh_z).expect("gh z");
            let mut gx_total = gx_n;
            gx_total.add_assign(&gx_r).expect("gx r");
            gx_total.add_assign(&gx_z).expect("gx z");
            scatter_time(&mut grad_x, &gx_total, t);
            gh = gh_prev;
        }
        grad_x
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for k in 0..3 {
            f(&mut self.wx[k]);
            f(&mut self.wh[k]);
            f(&mut self.bx[k]);
        }
        f(&mut self.bh);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_input(rng: &mut SeededRng) -> Tensor {
        Tensor::uniform(&[3, 2, 5], -1.0, 1.0, rng)
    }

    #[test]
    fn rnn_output_shape() {
        let mut rng = SeededRng::new(0);
        let mut rnn = Rnn::new(2, 7, &mut rng);
        let x = toy_input(&mut rng);
        let y = rnn.forward(&x, false);
        assert_eq!(y.dims(), &[3, 7]);
        assert!(
            y.data().iter().all(|v| v.abs() <= 1.0),
            "tanh bound violated"
        );
    }

    #[test]
    fn lstm_output_shape() {
        let mut rng = SeededRng::new(1);
        let mut lstm = Lstm::new(2, 4, &mut rng);
        let x = toy_input(&mut rng);
        let y = lstm.forward(&x, false);
        assert_eq!(y.dims(), &[3, 4]);
    }

    #[test]
    fn gru_output_shape() {
        let mut rng = SeededRng::new(2);
        let mut gru = Gru::new(2, 4, &mut rng);
        let x = toy_input(&mut rng);
        let y = gru.forward(&x, false);
        assert_eq!(y.dims(), &[3, 4]);
    }

    #[test]
    fn rnn_depends_on_sequence_order() {
        let mut rng = SeededRng::new(3);
        let mut rnn = Rnn::new(1, 4, &mut rng);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 4]).unwrap();
        let x_rev = Tensor::from_vec(vec![4.0, 3.0, 2.0, 1.0], &[1, 1, 4]).unwrap();
        let y = rnn.forward(&x, false);
        let y_rev = rnn.forward(&x_rev, false);
        assert!(!y.allclose(&y_rev, 1e-5), "RNN ignored sequence order");
    }

    #[test]
    fn param_counts() {
        let mut rng = SeededRng::new(4);
        let (i, h) = (3, 5);
        let mut rnn = Rnn::new(i, h, &mut rng);
        assert_eq!(rnn.param_count(), h * i + h * h + h);
        let mut lstm = Lstm::new(i, h, &mut rng);
        assert_eq!(lstm.param_count(), 4 * (h * i + h * h + h));
        let mut gru = Gru::new(i, h, &mut rng);
        assert_eq!(gru.param_count(), 3 * (h * i + h * h + h) + h);
    }
}
