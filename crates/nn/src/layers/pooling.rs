use super::Layer;
use crate::Param;
use dcam_tensor::Tensor;

/// Global Average Pooling: `(N, C, H, W) -> (N, C)`.
///
/// Averages each feature map over all spatial positions — the layer CAM
/// requires directly before the dense classifier (paper §2.2: the CAM method
/// "can only be used if a Global Average Pooling layer has been used before
/// the softmax classifier").
pub struct GlobalAvgPool {
    cache_dims: Option<[usize; 4]>,
}

impl GlobalAvgPool {
    /// Creates a GAP layer.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        GlobalAvgPool { cache_dims: None }
    }
}

impl Layer for GlobalAvgPool {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let d = x.dims();
        assert_eq!(d.len(), 4, "GAP expects (N, C, H, W), got {d:?}");
        let [n, c, h, w] = [d[0], d[1], d[2], d[3]];
        let plane = h * w;
        let mut y = Tensor::zeros(&[n, c]);
        for ni in 0..n {
            for ci in 0..c {
                let base = (ni * c + ci) * plane;
                let s: f32 = x.data()[base..base + plane].iter().sum();
                y.data_mut()[ni * c + ci] = s / plane as f32;
            }
        }
        if train {
            self.cache_dims = Some([n, c, h, w]);
        }
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let [n, c, h, w] = self
            .cache_dims
            .take()
            .expect("backward without cached forward");
        assert_eq!(grad_out.dims(), &[n, c]);
        let plane = h * w;
        let scale = 1.0 / plane as f32;
        let mut grad_x = Tensor::zeros(&[n, c, h, w]);
        for ni in 0..n {
            for ci in 0..c {
                let g = grad_out.data()[ni * c + ci] * scale;
                let base = (ni * c + ci) * plane;
                for v in &mut grad_x.data_mut()[base..base + plane] {
                    *v = g;
                }
            }
        }
        grad_x
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}
}

/// Max pooling along the time axis `W` of `(N, C, H, W)` inputs.
///
/// Used by the InceptionTime max-pool branch (size 3, stride 1, same
/// padding) and MTEX-CNN's down-sampling stages.
pub struct MaxPoolW {
    size: usize,
    stride: usize,
    padding: usize,
    cache: Option<(Vec<usize>, [usize; 4], usize)>,
}

impl MaxPoolW {
    /// Creates a max-pool with the given window, stride and symmetric padding.
    pub fn new(size: usize, stride: usize, padding: usize) -> Self {
        assert!(size > 0 && stride > 0 && padding < size);
        MaxPoolW {
            size,
            stride,
            padding,
            cache: None,
        }
    }

    /// InceptionTime's "same" max-pool: window 3, stride 1, padding 1.
    pub fn same3() -> Self {
        MaxPoolW::new(3, 1, 1)
    }

    /// Output temporal length for input temporal length `w`.
    pub fn out_width(&self, w: usize) -> usize {
        (w + 2 * self.padding - self.size) / self.stride + 1
    }
}

impl Layer for MaxPoolW {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let d = x.dims();
        assert_eq!(d.len(), 4, "MaxPoolW expects (N, C, H, W), got {d:?}");
        let [n, c, h, w] = [d[0], d[1], d[2], d[3]];
        let wo = self.out_width(w);
        let mut y = Tensor::zeros(&[n, c, h, wo]);
        let mut argmax = vec![0usize; n * c * h * wo];
        for ni in 0..n {
            for ci in 0..c {
                for hi in 0..h {
                    let base_in = ((ni * c + ci) * h + hi) * w;
                    let base_out = ((ni * c + ci) * h + hi) * wo;
                    for wi in 0..wo {
                        let start = wi * self.stride;
                        let lo = start.saturating_sub(self.padding);
                        let hi_w = (start + self.size - self.padding).min(w);
                        let mut best = f32::NEG_INFINITY;
                        let mut best_j = lo;
                        for j in lo..hi_w {
                            let v = x.data()[base_in + j];
                            if v > best {
                                best = v;
                                best_j = j;
                            }
                        }
                        y.data_mut()[base_out + wi] = best;
                        argmax[base_out + wi] = base_in + best_j;
                    }
                }
            }
        }
        if train {
            self.cache = Some((argmax, [n, c, h, w], wo));
        }
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let (argmax, [n, c, h, w], wo) =
            self.cache.take().expect("backward without cached forward");
        assert_eq!(grad_out.dims(), &[n, c, h, wo]);
        let mut grad_x = Tensor::zeros(&[n, c, h, w]);
        for (g, &src) in grad_out.data().iter().zip(&argmax) {
            grad_x.data_mut()[src] += g;
        }
        grad_x
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gap_averages_each_map() {
        let mut gap = GlobalAvgPool::new();
        let x = Tensor::from_vec(
            vec![1.0, 2.0, 3.0, 4.0, 10.0, 20.0, 30.0, 40.0],
            &[1, 2, 2, 2],
        )
        .unwrap();
        let y = gap.forward(&x, true);
        assert_eq!(y.dims(), &[1, 2]);
        assert_eq!(y.data(), &[2.5, 25.0]);
        let g = gap.backward(&Tensor::from_vec(vec![4.0, 8.0], &[1, 2]).unwrap());
        assert_eq!(g.data(), &[1.0, 1.0, 1.0, 1.0, 2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn maxpool_same3_keeps_width() {
        let mut mp = MaxPoolW::same3();
        let x = Tensor::from_vec(vec![1.0, 3.0, 2.0, 5.0, 4.0], &[1, 1, 1, 5]).unwrap();
        let y = mp.forward(&x, true);
        assert_eq!(y.dims(), &[1, 1, 1, 5]);
        assert_eq!(y.data(), &[3.0, 3.0, 5.0, 5.0, 5.0]);
    }

    #[test]
    fn maxpool_backward_routes_to_argmax() {
        let mut mp = MaxPoolW::new(2, 2, 0);
        let x = Tensor::from_vec(vec![1.0, 9.0, 4.0, 2.0], &[1, 1, 1, 4]).unwrap();
        let y = mp.forward(&x, true);
        assert_eq!(y.data(), &[9.0, 4.0]);
        let g = mp.backward(&Tensor::from_vec(vec![1.0, 2.0], &[1, 1, 1, 2]).unwrap());
        assert_eq!(g.data(), &[0.0, 1.0, 2.0, 0.0]);
    }

    #[test]
    fn maxpool_stride_downsamples() {
        let mp = MaxPoolW::new(3, 2, 1);
        assert_eq!(mp.out_width(8), 4);
    }
}
