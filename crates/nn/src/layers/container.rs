use super::Layer;
use crate::arena::BatchArena;
use crate::Param;
use dcam_tensor::Tensor;

/// A chain of layers applied in order.
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// Creates an empty chain.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Sequential { layers: Vec::new() }
    }

    /// Appends a layer, builder-style.
    pub fn push(mut self, layer: impl Layer + 'static) -> Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Appends a boxed layer in place.
    pub fn add(&mut self, layer: Box<dyn Layer>) {
        self.layers.push(layer);
    }

    /// Number of layers in the chain.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// True when the chain is empty (then it acts as the identity).
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }
}

impl Layer for Sequential {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let mut cur = x.clone();
        for layer in &mut self.layers {
            cur = layer.forward(&cur, train);
        }
        cur
    }

    fn forward_eval(&mut self, x: Tensor, arena: &mut BatchArena) -> Tensor {
        let mut cur = x;
        for layer in &mut self.layers {
            cur = layer.forward_eval(cur, arena);
        }
        cur
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut cur = grad_out.clone();
        for layer in self.layers.iter_mut().rev() {
            cur = layer.backward(&cur);
        }
        cur
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for layer in &mut self.layers {
            layer.visit_params(f);
        }
    }

    fn visit_buffers(&mut self, f: &mut dyn FnMut(&mut Vec<f32>)) {
        for layer in &mut self.layers {
            layer.visit_buffers(f);
        }
    }

    fn visit_convs(&mut self, f: &mut dyn FnMut(&mut crate::layers::Conv2dRows)) {
        for layer in &mut self.layers {
            layer.visit_convs(f);
        }
    }

    fn visit_quant(&mut self, f: &mut dyn FnMut(&mut crate::quant::QuantState)) {
        for layer in &mut self.layers {
            layer.visit_quant(f);
        }
    }
}

/// A residual block: `y = main(x) + shortcut(x)`.
///
/// The shortcut defaults to the identity; ResNet uses a 1×1 convolution +
/// batch-norm shortcut whenever the channel count changes. Shapes of the two
/// branches must agree at the output.
pub struct Residual {
    main: Sequential,
    shortcut: Sequential,
}

impl Residual {
    /// Residual block with an identity shortcut.
    pub fn identity(main: Sequential) -> Self {
        Residual {
            main,
            shortcut: Sequential::new(),
        }
    }

    /// Residual block with a projection shortcut.
    pub fn with_shortcut(main: Sequential, shortcut: Sequential) -> Self {
        Residual { main, shortcut }
    }
}

impl Layer for Residual {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let main = self.main.forward(x, train);
        let side = if self.shortcut.is_empty() {
            x.clone()
        } else {
            self.shortcut.forward(x, train)
        };
        main.add(&side).expect("residual branch shapes must agree")
    }

    fn forward_eval(&mut self, x: Tensor, arena: &mut BatchArena) -> Tensor {
        // Both branches need the input: duplicate it through the arena so
        // the copy's storage is recycled rather than allocated per block.
        let mut side_buf = arena.take(x.len());
        side_buf.copy_from_slice(x.data());
        let x_side = Tensor::from_vec(side_buf, x.dims()).expect("residual input copy");
        let mut main = self.main.forward_eval(x, arena);
        let side = if self.shortcut.is_empty() {
            x_side
        } else {
            self.shortcut.forward_eval(x_side, arena)
        };
        main.add_assign(&side)
            .expect("residual branch shapes must agree");
        arena.recycle(side);
        main
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let g_main = self.main.backward(grad_out);
        let g_side = if self.shortcut.is_empty() {
            grad_out.clone()
        } else {
            self.shortcut.backward(grad_out)
        };
        g_main
            .add(&g_side)
            .expect("residual grad shapes must agree")
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.main.visit_params(f);
        self.shortcut.visit_params(f);
    }

    fn visit_buffers(&mut self, f: &mut dyn FnMut(&mut Vec<f32>)) {
        self.main.visit_buffers(f);
        self.shortcut.visit_buffers(f);
    }

    fn visit_convs(&mut self, f: &mut dyn FnMut(&mut crate::layers::Conv2dRows)) {
        self.main.visit_convs(f);
        self.shortcut.visit_convs(f);
    }

    fn visit_quant(&mut self, f: &mut dyn FnMut(&mut crate::quant::QuantState)) {
        self.main.visit_quant(f);
        self.shortcut.visit_quant(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, Relu};
    use dcam_tensor::SeededRng;

    #[test]
    fn sequential_composes_in_order() {
        let mut rng = SeededRng::new(0);
        let mut d1 = Dense::new(3, 4, &mut rng);
        let mut d2 = Dense::new(4, 2, &mut rng);
        let x = Tensor::uniform(&[2, 3], -1.0, 1.0, &mut rng);
        let manual = d2.forward(&d1.forward(&x, false), false);

        let mut rng2 = SeededRng::new(0);
        let mut seq = Sequential::new()
            .push(Dense::new(3, 4, &mut rng2))
            .push(Dense::new(4, 2, &mut rng2));
        let composed = seq.forward(&x, false);
        assert!(manual.allclose(&composed, 1e-6));
    }

    #[test]
    fn empty_sequential_is_identity() {
        let mut seq = Sequential::new();
        let x = Tensor::ones(&[2, 2]);
        assert_eq!(seq.forward(&x, true), x);
        assert_eq!(seq.backward(&x), x);
    }

    #[test]
    fn identity_residual_doubles_identity_main() {
        // main = empty sequential = identity, so y = 2x.
        let mut res = Residual::identity(Sequential::new());
        let x = Tensor::from_vec(vec![1.0, -2.0], &[2, 1]).unwrap();
        let y = res.forward(&x, true);
        assert_eq!(y.data(), &[2.0, -4.0]);
        let g = res.backward(&Tensor::ones(&[2, 1]));
        assert_eq!(g.data(), &[2.0, 2.0]);
    }

    #[test]
    fn params_visited_across_branches() {
        let mut rng = SeededRng::new(1);
        let main = Sequential::new()
            .push(Dense::new(2, 2, &mut rng))
            .push(Relu::new());
        let shortcut = Sequential::new().push(Dense::new(2, 2, &mut rng));
        let mut res = Residual::with_shortcut(main, shortcut);
        // Two dense layers: 2*(2*2 + 2) = 12 scalars.
        assert_eq!(res.param_count(), 12);
    }
}
