use super::Layer;
use crate::arena::BatchArena;
use crate::Param;
use dcam_tensor::Tensor;

/// Pointwise activation functions usable as [`Layer`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Rectified linear unit, `max(0, x)` — the paper's default.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
}

impl Activation {
    /// Applies the activation to a scalar.
    pub fn apply(self, x: f32) -> f32 {
        match self {
            Activation::Relu => x.max(0.0),
            Activation::Tanh => x.tanh(),
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
        }
    }

    /// Derivative expressed in terms of the activation *output* `y`.
    pub fn derivative_from_output(self, y: f32) -> f32 {
        match self {
            Activation::Relu => {
                if y > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Tanh => 1.0 - y * y,
            Activation::Sigmoid => y * (1.0 - y),
        }
    }
}

/// A stateless activation layer caching its output for backward.
pub struct ActLayer {
    act: Activation,
    cache_y: Option<Tensor>,
}

impl ActLayer {
    /// Wraps an [`Activation`] as a layer.
    pub fn new(act: Activation) -> Self {
        ActLayer { act, cache_y: None }
    }
}

impl Layer for ActLayer {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let y = x.map(|v| self.act.apply(v));
        if train {
            self.cache_y = Some(y.clone());
        }
        y
    }

    fn forward_eval(&mut self, mut x: Tensor, _arena: &mut BatchArena) -> Tensor {
        for v in x.data_mut() {
            *v = self.act.apply(*v);
        }
        x
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let y = self
            .cache_y
            .take()
            .expect("backward without cached forward");
        y.zip_with(grad_out, |yv, gv| self.act.derivative_from_output(yv) * gv)
            .expect("activation grad shape")
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}
}

/// ReLU activation layer.
pub struct Relu(ActLayer);

impl Relu {
    /// Creates a ReLU layer.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Relu(ActLayer::new(Activation::Relu))
    }
}

impl Layer for Relu {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        self.0.forward(x, train)
    }
    fn forward_eval(&mut self, x: Tensor, arena: &mut BatchArena) -> Tensor {
        self.0.forward_eval(x, arena)
    }
    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        self.0.backward(grad_out)
    }
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.0.visit_params(f)
    }
}

/// Tanh activation layer.
pub struct Tanh(ActLayer);

impl Tanh {
    /// Creates a tanh layer.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Tanh(ActLayer::new(Activation::Tanh))
    }
}

impl Layer for Tanh {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        self.0.forward(x, train)
    }
    fn forward_eval(&mut self, x: Tensor, arena: &mut BatchArena) -> Tensor {
        self.0.forward_eval(x, arena)
    }
    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        self.0.backward(grad_out)
    }
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.0.visit_params(f)
    }
}

/// Sigmoid activation layer.
pub struct Sigmoid(ActLayer);

impl Sigmoid {
    /// Creates a sigmoid layer.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Sigmoid(ActLayer::new(Activation::Sigmoid))
    }
}

impl Layer for Sigmoid {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        self.0.forward(x, train)
    }
    fn forward_eval(&mut self, x: Tensor, arena: &mut BatchArena) -> Tensor {
        self.0.forward_eval(x, arena)
    }
    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        self.0.backward(grad_out)
    }
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.0.visit_params(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        let mut relu = Relu::new();
        let x = Tensor::from_vec(vec![-2.0, -0.5, 0.0, 0.5, 2.0], &[5]).unwrap();
        let y = relu.forward(&x, true);
        assert_eq!(y.data(), &[0.0, 0.0, 0.0, 0.5, 2.0]);
        let g = relu.backward(&Tensor::ones(&[5]));
        assert_eq!(g.data(), &[0.0, 0.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn tanh_and_sigmoid_values() {
        assert!((Activation::Tanh.apply(0.0)).abs() < 1e-7);
        assert!((Activation::Sigmoid.apply(0.0) - 0.5).abs() < 1e-7);
        // Saturation.
        assert!(Activation::Sigmoid.apply(20.0) > 0.999);
        assert!(Activation::Tanh.apply(-20.0) < -0.999);
    }

    #[test]
    fn derivative_from_output_identities() {
        for &x in &[-1.5f32, -0.2, 0.0, 0.3, 2.0] {
            let y = Activation::Tanh.apply(x);
            let want = 1.0 - x.tanh() * x.tanh();
            assert!((Activation::Tanh.derivative_from_output(y) - want).abs() < 1e-6);
            let s = Activation::Sigmoid.apply(x);
            let want_s = s * (1.0 - s);
            assert!((Activation::Sigmoid.derivative_from_output(s) - want_s).abs() < 1e-6);
        }
    }
}
