use super::Layer;
use crate::arena::BatchArena;
use crate::Param;
use dcam_tensor::Tensor;

/// Batch normalization over the channel axis of `(N, C, H, W)` inputs.
///
/// Training mode normalizes with batch statistics and maintains running
/// estimates (momentum 0.1, PyTorch convention); evaluation mode normalizes
/// with the running estimates. `gamma`/`beta` are learned per channel.
pub struct BatchNorm {
    gamma: Param,
    beta: Param,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    channels: usize,
    momentum: f32,
    eps: f32,
    cache: Option<BnCache>,
}

struct BnCache {
    x_hat: Tensor,
    inv_std: Vec<f32>,
    dims: [usize; 4],
}

impl BatchNorm {
    /// Creates a batch-norm layer for `channels` feature maps.
    pub fn new(channels: usize) -> Self {
        assert!(channels > 0);
        BatchNorm {
            gamma: Param::new(Tensor::ones(&[channels])),
            beta: Param::new(Tensor::zeros(&[channels])),
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            channels,
            momentum: 0.1,
            eps: 1e-5,
            cache: None,
        }
    }

    /// Current running mean estimate (for inspection in tests).
    pub fn running_mean(&self) -> &[f32] {
        &self.running_mean
    }

    /// Current running variance estimate.
    pub fn running_var(&self) -> &[f32] {
        &self.running_var
    }

    fn check(&self, x: &Tensor) -> [usize; 4] {
        let d = x.dims();
        assert_eq!(d.len(), 4, "BatchNorm expects (N, C, H, W), got {d:?}");
        assert_eq!(d[1], self.channels, "channel mismatch");
        [d[0], d[1], d[2], d[3]]
    }
}

impl Layer for BatchNorm {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let [n, c, h, w] = self.check(x);
        let plane = h * w;
        let per_c = n * plane;
        let mut y = Tensor::zeros(&[n, c, h, w]);
        let gd = self.gamma.value.data().to_vec();
        let bd = self.beta.value.data().to_vec();

        if train {
            let mut x_hat = Tensor::zeros(&[n, c, h, w]);
            let mut inv_std = vec![0.0f32; c];
            for ci in 0..c {
                // Batch statistics for channel ci across every sample & position.
                let mut mean = 0.0f64;
                for ni in 0..n {
                    let base = (ni * c + ci) * plane;
                    for &v in &x.data()[base..base + plane] {
                        mean += v as f64;
                    }
                }
                let mean = (mean / per_c as f64) as f32;
                let mut var = 0.0f64;
                for ni in 0..n {
                    let base = (ni * c + ci) * plane;
                    for &v in &x.data()[base..base + plane] {
                        let d = v - mean;
                        var += (d * d) as f64;
                    }
                }
                let var = (var / per_c as f64) as f32;
                let istd = 1.0 / (var + self.eps).sqrt();
                inv_std[ci] = istd;
                self.running_mean[ci] =
                    (1.0 - self.momentum) * self.running_mean[ci] + self.momentum * mean;
                self.running_var[ci] =
                    (1.0 - self.momentum) * self.running_var[ci] + self.momentum * var;
                for ni in 0..n {
                    let base = (ni * c + ci) * plane;
                    for j in 0..plane {
                        let xh = (x.data()[base + j] - mean) * istd;
                        x_hat.data_mut()[base + j] = xh;
                        y.data_mut()[base + j] = gd[ci] * xh + bd[ci];
                    }
                }
            }
            self.cache = Some(BnCache {
                x_hat,
                inv_std,
                dims: [n, c, h, w],
            });
        } else {
            for ci in 0..c {
                let istd = 1.0 / (self.running_var[ci] + self.eps).sqrt();
                let mean = self.running_mean[ci];
                for ni in 0..n {
                    let base = (ni * c + ci) * plane;
                    for j in 0..plane {
                        let xh = (x.data()[base + j] - mean) * istd;
                        y.data_mut()[base + j] = gd[ci] * xh + bd[ci];
                    }
                }
            }
        }
        y
    }

    fn forward_eval(&mut self, mut x: Tensor, _arena: &mut BatchArena) -> Tensor {
        // Eval-mode normalization with running statistics, in place: the
        // arithmetic is element-for-element identical to the `forward`
        // eval branch, only the output buffer is the input's.
        let [n, c, h, w] = self.check(&x);
        let plane = h * w;
        let gd = self.gamma.value.data();
        let bd = self.beta.value.data();
        let xd = x.data_mut();
        for ci in 0..c {
            let istd = 1.0 / (self.running_var[ci] + self.eps).sqrt();
            let mean = self.running_mean[ci];
            for ni in 0..n {
                let base = (ni * c + ci) * plane;
                for v in &mut xd[base..base + plane] {
                    let xh = (*v - mean) * istd;
                    *v = gd[ci] * xh + bd[ci];
                }
            }
        }
        x
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let cache = self.cache.take().expect("backward without cached forward");
        let [n, c, h, w] = cache.dims;
        assert_eq!(grad_out.dims(), &[n, c, h, w]);
        let plane = h * w;
        let m = (n * plane) as f32;
        let mut grad_x = Tensor::zeros(&[n, c, h, w]);
        let gd = self.gamma.value.data().to_vec();

        for ci in 0..c {
            // Accumulate Σg and Σ(g · x̂) for this channel.
            let mut sum_g = 0.0f64;
            let mut sum_gx = 0.0f64;
            for ni in 0..n {
                let base = (ni * c + ci) * plane;
                for j in 0..plane {
                    let g = grad_out.data()[base + j];
                    sum_g += g as f64;
                    sum_gx += (g * cache.x_hat.data()[base + j]) as f64;
                }
            }
            self.gamma.grad.data_mut()[ci] += sum_gx as f32;
            self.beta.grad.data_mut()[ci] += sum_g as f32;

            let k = gd[ci] * cache.inv_std[ci] / m;
            let sum_g = sum_g as f32;
            let sum_gx = sum_gx as f32;
            for ni in 0..n {
                let base = (ni * c + ci) * plane;
                for j in 0..plane {
                    let g = grad_out.data()[base + j];
                    let xh = cache.x_hat.data()[base + j];
                    grad_x.data_mut()[base + j] = k * (m * g - sum_g - xh * sum_gx);
                }
            }
        }
        grad_x
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.gamma);
        f(&mut self.beta);
    }

    fn visit_buffers(&mut self, f: &mut dyn FnMut(&mut Vec<f32>)) {
        f(&mut self.running_mean);
        f(&mut self.running_var);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcam_tensor::SeededRng;

    #[test]
    fn train_output_is_normalized() {
        let mut rng = SeededRng::new(0);
        let mut bn = BatchNorm::new(2);
        let x = Tensor::uniform(&[4, 2, 3, 5], 5.0, 9.0, &mut rng);
        let y = bn.forward(&x, true);
        // Per-channel mean ~0, var ~1.
        let plane = 15;
        for ci in 0..2 {
            let mut vals = Vec::new();
            for ni in 0..4 {
                let base = (ni * 2 + ci) * plane;
                vals.extend_from_slice(&y.data()[base..base + plane]);
            }
            let t = Tensor::from_vec(vals, &[4 * plane]).unwrap();
            assert!(t.mean().abs() < 1e-4, "mean {}", t.mean());
            assert!((t.variance() - 1.0).abs() < 1e-2, "var {}", t.variance());
        }
    }

    #[test]
    fn eval_uses_running_stats() {
        let mut rng = SeededRng::new(1);
        let mut bn = BatchNorm::new(1);
        // Feed several training batches so running stats adapt.
        for _ in 0..200 {
            let x = Tensor::randn(&[8, 1, 1, 4], 3.0, 2.0, &mut rng);
            bn.forward(&x, true);
        }
        assert!((bn.running_mean()[0] - 3.0).abs() < 0.3);
        assert!((bn.running_var()[0] - 4.0).abs() < 0.8);
        // Eval mode should now roughly standardize fresh data from the same
        // distribution.
        let x = Tensor::randn(&[64, 1, 1, 4], 3.0, 2.0, &mut rng);
        let y = bn.forward(&x, false);
        assert!(y.mean().abs() < 0.2);
    }

    #[test]
    fn gamma_beta_shift_output() {
        let mut bn = BatchNorm::new(1);
        bn.gamma.value.fill(2.0);
        bn.beta.value.fill(1.0);
        let x = Tensor::from_vec(vec![-1.0, 1.0], &[2, 1, 1, 1]).unwrap();
        let y = bn.forward(&x, true);
        // x̂ = [-1, 1] (mean 0, var 1), y = 2x̂ + 1 = [-1, 3]
        assert!(y.allclose(
            &Tensor::from_vec(vec![-1.0, 3.0], &[2, 1, 1, 1]).unwrap(),
            1e-2
        ));
    }
}
