use super::Layer;
use crate::{init, Param};
use dcam_tensor::{SeededRng, Tensor};

/// Fully connected layer: `(N, in) -> (N, out)`, `y = x W^T + b`.
///
/// The weight is stored `(out, in)` so the CAM computation can read the
/// per-class GAP weights `w^{C_j}_m` directly as rows.
pub struct Dense {
    weight: Param,
    bias: Param,
    in_dim: usize,
    out_dim: usize,
    cache_x: Option<Tensor>,
}

impl Dense {
    /// Creates a dense layer with Kaiming-initialized weights.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut SeededRng) -> Self {
        assert!(in_dim > 0 && out_dim > 0);
        let weight = Param::new(init::kaiming(&[out_dim, in_dim], in_dim, rng));
        let bias = Param::new(Tensor::zeros(&[out_dim]));
        Dense {
            weight,
            bias,
            in_dim,
            out_dim,
            cache_x: None,
        }
    }

    /// The `(out, in)` weight matrix; row `j` holds the weights connecting
    /// every input feature to output neuron `j` (used by CAM as `w^{C_j}`).
    pub fn weight(&self) -> &Tensor {
        &self.weight.value
    }

    /// Input feature count.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output feature count.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }
}

impl Layer for Dense {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let d = x.dims();
        assert_eq!(d.len(), 2, "Dense expects (N, in), got {d:?}");
        assert_eq!(d[1], self.in_dim, "feature mismatch");
        let n = d[0];
        // y = x (out,in)^T -> use matmul_nt: (n,in) x (out,in)^T
        let mut y = x.matmul_nt(&self.weight.value).expect("dense matmul");
        let bd = self.bias.value.data().to_vec();
        for ni in 0..n {
            let row = &mut y.data_mut()[ni * self.out_dim..(ni + 1) * self.out_dim];
            for (yv, bv) in row.iter_mut().zip(&bd) {
                *yv += bv;
            }
        }
        if train {
            self.cache_x = Some(x.clone());
        }
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self
            .cache_x
            .take()
            .expect("backward without cached forward");
        let n = x.dims()[0];
        assert_eq!(grad_out.dims(), &[n, self.out_dim]);

        // dW += g^T x : (n,out)^T x (n,in) -> (out,in), straight into the
        // gradient accumulator (no temporary).
        grad_out
            .matmul_tn_acc_into(&x, &mut self.weight.grad)
            .expect("dense dW");

        // db = column sums of g
        for ni in 0..n {
            let row = &grad_out.data()[ni * self.out_dim..(ni + 1) * self.out_dim];
            for (gb, gv) in self.bias.grad.data_mut().iter_mut().zip(row) {
                *gb += gv;
            }
        }

        // dx = g W : (n,out) x (out,in)
        grad_out.matmul(&self.weight.value).expect("dense dX")
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        f(&mut self.bias);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_matches_manual() {
        let mut rng = SeededRng::new(0);
        let mut d = Dense::new(2, 3, &mut rng);
        d.weight.value = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]).unwrap();
        d.bias.value = Tensor::from_vec(vec![0.1, 0.2, 0.3], &[3]).unwrap();
        let x = Tensor::from_vec(vec![1.0, -1.0], &[1, 2]).unwrap();
        let y = d.forward(&x, false);
        // rows of W: [1,2], [3,4], [5,6]; y = [1-2, 3-4, 5-6] + b
        assert!(y.allclose(
            &Tensor::from_vec(vec![-0.9, -0.8, -0.7], &[1, 3]).unwrap(),
            1e-6
        ));
    }

    #[test]
    fn batch_rows_independent() {
        let mut rng = SeededRng::new(1);
        let mut d = Dense::new(4, 2, &mut rng);
        let x1 = Tensor::uniform(&[1, 4], -1.0, 1.0, &mut rng);
        let x2 = Tensor::uniform(&[1, 4], -1.0, 1.0, &mut rng);
        let mut both = Vec::new();
        both.extend_from_slice(x1.data());
        both.extend_from_slice(x2.data());
        let xb = Tensor::from_vec(both, &[2, 4]).unwrap();
        let y1 = d.forward(&x1, false);
        let y2 = d.forward(&x2, false);
        let yb = d.forward(&xb, false);
        assert!(yb.data()[..2]
            .iter()
            .zip(y1.data())
            .all(|(a, b)| (a - b).abs() < 1e-6));
        assert!(yb.data()[2..]
            .iter()
            .zip(y2.data())
            .all(|(a, b)| (a - b).abs() < 1e-6));
    }

    #[test]
    fn param_count() {
        let mut rng = SeededRng::new(2);
        let mut d = Dense::new(7, 3, &mut rng);
        assert_eq!(d.param_count(), 7 * 3 + 3);
    }
}
