use super::Layer;
use crate::quant::QuantState;
use crate::{init, Param};
use dcam_tensor::{
    dequantize_row, k_groups, qgemm_i32, quantize_transpose_into, QuantizedWeights, SeededRng,
    Tensor,
};

/// Fully connected layer: `(N, in) -> (N, out)`, `y = x W^T + b`.
///
/// The weight is stored `(out, in)` so the CAM computation can read the
/// per-class GAP weights `w^{C_j}_m` directly as rows.
pub struct Dense {
    weight: Param,
    bias: Param,
    in_dim: usize,
    out_dim: usize,
    cache_x: Option<Tensor>,
    /// Bumped on every [`Layer::visit_params`] call (the choke point all
    /// external weight mutation flows through) so the quantized-weight
    /// cache can never go stale — same idiom as the convolution's
    /// fft-spectra cache key.
    weight_version: u64,
    /// Precision selection and calibrated activation scale for the int8
    /// inference path (see [`crate::quant`]).
    quant: QuantState,
    /// Quantized weights for the int8 path, keyed on `weight_version`.
    qweights: Option<(QuantizedWeights, u64)>,
    /// Interleaved quantized-activation scratch (the arena pools only f32
    /// storage).
    qx: Vec<u8>,
    /// i32 accumulator scratch.
    qacc: Vec<i32>,
}

impl Dense {
    /// Creates a dense layer with Kaiming-initialized weights.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut SeededRng) -> Self {
        assert!(in_dim > 0 && out_dim > 0);
        let weight = Param::new(init::kaiming(&[out_dim, in_dim], in_dim, rng));
        let bias = Param::new(Tensor::zeros(&[out_dim]));
        Dense {
            weight,
            bias,
            in_dim,
            out_dim,
            cache_x: None,
            weight_version: 0,
            quant: QuantState::default(),
            qweights: None,
            qx: Vec::new(),
            qacc: Vec::new(),
        }
    }

    /// The `(out, in)` weight matrix; row `j` holds the weights connecting
    /// every input feature to output neuron `j` (used by CAM as `w^{C_j}`).
    pub fn weight(&self) -> &Tensor {
        &self.weight.value
    }

    /// Input feature count.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output feature count.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Quantized eval forward: `W` per-output-row symmetric, `x`
    /// quantize-transposed into one column per sample, exact i32
    /// accumulation, dequantize + bias into the f32 output. Same result
    /// contract as the convolution's int8 path: quantization error only,
    /// no accumulation error.
    fn forward_int8(&mut self, x: &Tensor, n: usize) -> Tensor {
        let (out_dim, in_dim) = (self.out_dim, self.in_dim);
        let s_act = self
            .quant
            .act_scale
            .expect("int8 path requires calibration");
        if self
            .qweights
            .as_ref()
            .is_none_or(|(_, v)| *v != self.weight_version)
        {
            let wd = self.weight.value.data();
            self.qweights = Some((
                QuantizedWeights::from_rows(out_dim, in_dim, |i, p| wd[i * in_dim + p]),
                self.weight_version,
            ));
        }
        let (qw, _) = self.qweights.as_ref().expect("just built");
        self.qx.resize(k_groups(in_dim) * n * 4, 0);
        quantize_transpose_into(x.data(), n, in_dim, 1.0 / s_act, &mut self.qx);
        self.qacc.resize(out_dim * n, 0);
        qgemm_i32(qw, &self.qx, n * 4, 0, n, &mut self.qacc, n, false);
        let bd = self.bias.value.data();
        let mut y = Tensor::zeros(&[n, out_dim]);
        let yd = y.data_mut();
        let mut row = vec![0.0f32; n];
        for i in 0..out_dim {
            dequantize_row(
                &self.qacc[i * n..(i + 1) * n],
                qw.corr()[i],
                qw.scales()[i] * s_act,
                bd[i],
                &mut row,
            );
            for (j, &v) in row.iter().enumerate() {
                yd[j * out_dim + i] = v;
            }
        }
        y
    }
}

impl Layer for Dense {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let d = x.dims();
        assert_eq!(d.len(), 2, "Dense expects (N, in), got {d:?}");
        assert_eq!(d[1], self.in_dim, "feature mismatch");
        let n = d[0];
        if !train {
            // The eval path hooks `forward` (not `forward_eval`) because
            // model heads call `forward(x, false)` directly.
            if self.quant.calibrating {
                self.quant
                    .record(x.data().iter().fold(0.0f32, |a, v| a.max(v.abs())));
            } else if self.quant.engaged() {
                return self.forward_int8(x, n);
            }
        }
        // y = x (out,in)^T -> use matmul_nt: (n,in) x (out,in)^T
        let mut y = x.matmul_nt(&self.weight.value).expect("dense matmul");
        let bd = self.bias.value.data().to_vec();
        for ni in 0..n {
            let row = &mut y.data_mut()[ni * self.out_dim..(ni + 1) * self.out_dim];
            for (yv, bv) in row.iter_mut().zip(&bd) {
                *yv += bv;
            }
        }
        if train {
            self.cache_x = Some(x.clone());
        }
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self
            .cache_x
            .take()
            .expect("backward without cached forward");
        let n = x.dims()[0];
        assert_eq!(grad_out.dims(), &[n, self.out_dim]);

        // dW += g^T x : (n,out)^T x (n,in) -> (out,in), straight into the
        // gradient accumulator (no temporary).
        grad_out
            .matmul_tn_acc_into(&x, &mut self.weight.grad)
            .expect("dense dW");

        // db = column sums of g
        for ni in 0..n {
            let row = &grad_out.data()[ni * self.out_dim..(ni + 1) * self.out_dim];
            for (gb, gv) in self.bias.grad.data_mut().iter_mut().zip(row) {
                *gb += gv;
            }
        }

        // dx = g W : (n,out) x (out,in)
        grad_out.matmul(&self.weight.value).expect("dense dX")
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        // Assume the visitor mutates (optimizer steps, checkpoint
        // restores, `copy_params`): a spurious bump only costs one
        // re-quantization on the next int8 call.
        self.weight_version = self.weight_version.wrapping_add(1);
        f(&mut self.weight);
        f(&mut self.bias);
    }

    fn visit_quant(&mut self, f: &mut dyn FnMut(&mut QuantState)) {
        f(&mut self.quant);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quant::Precision;

    #[test]
    fn forward_matches_manual() {
        let mut rng = SeededRng::new(0);
        let mut d = Dense::new(2, 3, &mut rng);
        d.weight.value = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]).unwrap();
        d.bias.value = Tensor::from_vec(vec![0.1, 0.2, 0.3], &[3]).unwrap();
        let x = Tensor::from_vec(vec![1.0, -1.0], &[1, 2]).unwrap();
        let y = d.forward(&x, false);
        // rows of W: [1,2], [3,4], [5,6]; y = [1-2, 3-4, 5-6] + b
        assert!(y.allclose(
            &Tensor::from_vec(vec![-0.9, -0.8, -0.7], &[1, 3]).unwrap(),
            1e-6
        ));
    }

    #[test]
    fn batch_rows_independent() {
        let mut rng = SeededRng::new(1);
        let mut d = Dense::new(4, 2, &mut rng);
        let x1 = Tensor::uniform(&[1, 4], -1.0, 1.0, &mut rng);
        let x2 = Tensor::uniform(&[1, 4], -1.0, 1.0, &mut rng);
        let mut both = Vec::new();
        both.extend_from_slice(x1.data());
        both.extend_from_slice(x2.data());
        let xb = Tensor::from_vec(both, &[2, 4]).unwrap();
        let y1 = d.forward(&x1, false);
        let y2 = d.forward(&x2, false);
        let yb = d.forward(&xb, false);
        assert!(yb.data()[..2]
            .iter()
            .zip(y1.data())
            .all(|(a, b)| (a - b).abs() < 1e-6));
        assert!(yb.data()[2..]
            .iter()
            .zip(y2.data())
            .all(|(a, b)| (a - b).abs() < 1e-6));
    }

    #[test]
    fn param_count() {
        let mut rng = SeededRng::new(2);
        let mut d = Dense::new(7, 3, &mut rng);
        assert_eq!(d.param_count(), 7 * 3 + 3);
    }

    #[test]
    fn int8_forward_tracks_f32() {
        let mut rng = SeededRng::new(3);
        let mut d = Dense::new(12, 4, &mut rng);
        let x = Tensor::uniform(&[5, 12], -1.5, 1.5, &mut rng);
        let want = d.forward(&x, false);

        // Calibrate on the same batch, then switch to int8.
        d.visit_quant(&mut |q| {
            q.precision = Precision::Int8;
            q.calibrating = true;
        });
        let _ = d.forward(&x, false);
        d.visit_quant(&mut |q| q.finish_calibration());
        let got = d.forward(&x, false);
        assert_eq!(got.dims(), want.dims());
        for (a, b) in got.data().iter().zip(want.data()) {
            assert!((a - b).abs() < 0.05, "{a} vs {b}");
        }

        // Weight mutation through visit_params invalidates the cache.
        d.visit_params(&mut |p| {
            for v in p.value.data_mut() {
                *v = -*v;
            }
        });
        let flipped = d.forward(&x, false);
        for (a, b) in flipped.data().iter().zip(want.data()) {
            // y = −Wx − b; with zero bias this is exactly −y.
            assert!((a + b).abs() < 0.05, "{a} vs {b}");
        }
    }
}
