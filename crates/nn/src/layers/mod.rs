//! Neural-network layers with explicit analytic backprop.
//!
//! Every layer implements [`Layer`]: `forward` caches whatever the
//! matching `backward` needs (when `train` is true), `backward` consumes the
//! cache, accumulates parameter gradients in place and returns the gradient
//! with respect to the layer input. Layers compose through
//! [`container::Sequential`] and [`container::Residual`]; branching
//! architectures (InceptionTime, MTEX-CNN) wire layers by hand in `dcam`.

mod activation;
mod batchnorm;
mod container;
mod conv;
mod conv_fft;
mod dense;
mod dropout;
mod im2col;
mod pooling;

pub use activation::{Activation, Relu, Sigmoid, Tanh};
pub use batchnorm::BatchNorm;
pub use container::{Residual, Sequential};
pub use conv::{Conv2dRows, ConvStrategy};
pub use dense::Dense;
pub use dropout::Dropout;
pub use pooling::{GlobalAvgPool, MaxPoolW};

use crate::arena::BatchArena;
use crate::Param;
use dcam_tensor::Tensor;

/// A differentiable network component.
///
/// The contract: a `backward` call must be preceded by a `forward` call with
/// `train == true` on the same instance; gradients of parameters accumulate
/// (callers zero them between optimizer steps via [`Layer::zero_grads`]).
pub trait Layer: Send {
    /// Computes the layer output. With `train == true` the layer caches the
    /// activations its backward pass requires.
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor;

    /// Propagates `grad_out` (gradient of the loss w.r.t. this layer's
    /// output) backward, accumulating parameter gradients and returning the
    /// gradient w.r.t. the layer input.
    fn backward(&mut self, grad_out: &Tensor) -> Tensor;

    /// Evaluation-mode forward that *consumes* its input and recycles
    /// buffers through `arena` — the allocation-free inference path used by
    /// the batched explanation engine.
    ///
    /// Semantically identical to `forward(&x, false)` (layers override it
    /// only to reuse storage: in-place activations and batch-norm, the
    /// fused im2col+GEMM convolution); callers that still need the input
    /// afterwards must clone it first. The default implementation falls
    /// back to `forward` and returns the input's storage to the arena.
    fn forward_eval(&mut self, x: Tensor, arena: &mut BatchArena) -> Tensor {
        let y = self.forward(&x, false);
        arena.recycle(x);
        y
    }

    /// Visits every trainable parameter in a construction-stable order.
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param));

    /// Visits every non-trainable state buffer (e.g. batch-norm running
    /// statistics) in a construction-stable order. Buffers are part of a
    /// model's checkpoint but receive no gradients.
    fn visit_buffers(&mut self, _f: &mut dyn FnMut(&mut Vec<f32>)) {}

    /// Visits every convolution layer in a construction-stable order.
    /// Containers forward the visitor; non-convolution leaves ignore it.
    /// Model-level tooling uses this to pin or inspect convolution
    /// execution strategies (e.g. the long-series `fft` path) without
    /// knowing the network's structure.
    fn visit_convs(&mut self, _f: &mut dyn FnMut(&mut Conv2dRows)) {}

    /// Visits the quantization state of every quantization-capable layer
    /// (convolution and dense) in a construction-stable order. Containers
    /// forward the visitor; other leaves ignore it. Model-level tooling
    /// uses this to select [`Precision`](crate::quant::Precision), drive
    /// calibration passes, and read or restore activation scales — see
    /// [`crate::quant`].
    fn visit_quant(&mut self, _f: &mut dyn FnMut(&mut crate::quant::QuantState)) {}

    /// Zeroes all accumulated parameter gradients.
    fn zero_grads(&mut self) {
        self.visit_params(&mut |p| p.zero_grad());
    }

    /// Total number of trainable scalars.
    fn param_count(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p| n += p.len());
        n
    }
}

impl Layer for Box<dyn Layer> {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        (**self).forward(x, train)
    }
    fn forward_eval(&mut self, x: Tensor, arena: &mut BatchArena) -> Tensor {
        (**self).forward_eval(x, arena)
    }
    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        (**self).backward(grad_out)
    }
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        (**self).visit_params(f)
    }
    fn visit_buffers(&mut self, f: &mut dyn FnMut(&mut Vec<f32>)) {
        (**self).visit_buffers(f)
    }
    fn visit_convs(&mut self, f: &mut dyn FnMut(&mut Conv2dRows)) {
        (**self).visit_convs(f)
    }
    fn visit_quant(&mut self, f: &mut dyn FnMut(&mut crate::quant::QuantState)) {
        (**self).visit_quant(f)
    }
}
