use super::Layer;
use crate::Param;
use dcam_tensor::{SeededRng, Tensor};
use parking_lot::Mutex;

/// Inverted dropout: zeroes activations with probability `p` during training
/// and rescales survivors by `1/(1-p)`; identity at evaluation time.
///
/// The RNG lives behind a mutex so the layer stays `Send` while `forward`
/// only needs `&mut self` like every other layer; contention is nil because
/// layers are driven single-threaded.
pub struct Dropout {
    p: f32,
    rng: Mutex<SeededRng>,
    cache_mask: Option<Tensor>,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p` in `[0, 1)`.
    pub fn new(p: f32, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&p), "drop probability must be in [0,1)");
        Dropout {
            p,
            rng: Mutex::new(SeededRng::new(seed)),
            cache_mask: None,
        }
    }
}

impl Layer for Dropout {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        if !train || self.p == 0.0 {
            self.cache_mask = None;
            return x.clone();
        }
        let keep = 1.0 - self.p;
        let scale = 1.0 / keep;
        let mut rng = self.rng.lock();
        let mask = Tensor::from_vec(
            (0..x.len())
                .map(|_| if rng.chance(keep) { scale } else { 0.0 })
                .collect(),
            x.dims(),
        )
        .expect("mask shape");
        drop(rng);
        let y = x.mul(&mask).expect("dropout mul");
        self.cache_mask = Some(mask);
        y
    }

    fn forward_eval(&mut self, x: Tensor, _arena: &mut crate::arena::BatchArena) -> Tensor {
        // Inverted dropout is the identity at evaluation time.
        x
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        match self.cache_mask.take() {
            Some(mask) => grad_out.mul(&mask).expect("dropout grad"),
            None => grad_out.clone(),
        }
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_is_identity() {
        let mut d = Dropout::new(0.5, 0);
        let x = Tensor::ones(&[100]);
        let y = d.forward(&x, false);
        assert_eq!(y, x);
    }

    #[test]
    fn train_preserves_expectation() {
        let mut d = Dropout::new(0.4, 1);
        let x = Tensor::ones(&[20_000]);
        let y = d.forward(&x, true);
        assert!((y.mean() - 1.0).abs() < 0.05, "mean {}", y.mean());
        // Survivors are rescaled by 1/(1-p).
        let nonzero = y.data().iter().filter(|&&v| v != 0.0).count();
        let expected_scale = 1.0 / 0.6;
        assert!(y
            .data()
            .iter()
            .all(|&v| v == 0.0 || (v - expected_scale).abs() < 1e-5));
        let frac = nonzero as f32 / 20_000.0;
        assert!((frac - 0.6).abs() < 0.03);
    }

    #[test]
    fn backward_uses_same_mask() {
        let mut d = Dropout::new(0.5, 2);
        let x = Tensor::ones(&[64]);
        let y = d.forward(&x, true);
        let g = d.backward(&Tensor::ones(&[64]));
        // Gradient must be zero exactly where the output was zero.
        for (yv, gv) in y.data().iter().zip(g.data()) {
            assert_eq!(*yv == 0.0, *gv == 0.0);
        }
    }
}
