//! im2col + GEMM execution strategy for [`super::Conv2dRows`].
//!
//! The row-wise convolution is a batch of small matrix products in
//! disguise: unrolling every kernel tap window of one sample into a
//! `(C_in·ℓ) × (H·W_out)` patch matrix `P` (im2col) turns
//!
//! * the forward pass into `Y = W·P` (one GEMM per sample, `W` viewed as
//!   `(C_out, C_in·ℓ)`),
//! * the input gradient into `dP = Wᵀ·G` followed by the scatter-add
//!   inverse unrolling (col2im),
//! * the weight gradient into `dW += G·Pᵀ`,
//!
//! all running on the packed register-tiled GEMM of `dcam-tensor` instead
//! of scalar loops. Patch matrices live in a per-layer scratch arena that is
//! reused across batches, so the strategy performs no steady-state
//! allocation beyond the output tensor itself.

use dcam_tensor::thread_count;

/// Geometry of one convolution application, precomputed once per call.
#[derive(Clone, Copy)]
pub(crate) struct ConvGeom {
    pub c_in: usize,
    /// Kernel temporal extent ℓ.
    pub l: usize,
    /// Temporal stride.
    pub s: usize,
    /// Left temporal padding.
    pub pad_left: usize,
    pub h: usize,
    pub w: usize,
    pub wo: usize,
}

impl ConvGeom {
    /// Rows of the patch matrix: one per `(channel, tap)` pair.
    pub fn col_rows(&self) -> usize {
        self.c_in * self.l
    }

    /// Columns of the patch matrix: one per output position.
    pub fn col_cols(&self) -> usize {
        self.h * self.wo
    }

    /// Elements of one sample's patch matrix.
    pub fn col_len(&self) -> usize {
        self.col_rows() * self.col_cols()
    }
}

/// Unrolls one input sample `(C_in, H, W)` into the patch matrix
/// `cols[(ci·ℓ + li), (hi·W_out + wi)] = x[ci, hi, wi·s + li − pad]`
/// (zero where the tap falls outside the input). Every element of `cols`
/// is written, so the scratch buffer needs no clearing between samples.
pub(crate) fn im2col(g: &ConvGeom, x_sample: &[f32], cols: &mut [f32]) {
    let (l, s, p, h, w, wo) = (g.l, g.s, g.pad_left, g.h, g.w, g.wo);
    debug_assert_eq!(x_sample.len(), g.c_in * h * w);
    debug_assert_eq!(cols.len(), g.col_len());
    for ci in 0..g.c_in {
        for li in 0..l {
            let row = &mut cols[(ci * l + li) * h * wo..(ci * l + li + 1) * h * wo];
            for hi in 0..h {
                let x_row = &x_sample[(ci * h + hi) * w..(ci * h + hi + 1) * w];
                let dst = &mut row[hi * wo..(hi + 1) * wo];
                if s == 1 {
                    // Valid tap positions map to one contiguous source run:
                    // 0 <= wi + li - p < w. Both bounds saturate: `li` can
                    // exceed `w + p` (kernel longer than the padded input)
                    // and the run can be empty, in which case the whole
                    // destination row is padding zeros.
                    let wi_lo = p.saturating_sub(li).min(wo);
                    let wi_hi = (w + p).saturating_sub(li).min(wo).max(wi_lo);
                    dst[..wi_lo].fill(0.0);
                    dst[wi_hi..].fill(0.0);
                    if wi_lo < wi_hi {
                        let base = wi_lo + li - p;
                        dst[wi_lo..wi_hi].copy_from_slice(&x_row[base..base + (wi_hi - wi_lo)]);
                    }
                } else {
                    for (wi, d) in dst.iter_mut().enumerate() {
                        let src = wi * s + li;
                        *d = if src >= p && src - p < w {
                            x_row[src - p]
                        } else {
                            0.0
                        };
                    }
                }
            }
        }
    }
}

/// Inverse of [`im2col`] for gradients: scatter-adds the patch-matrix
/// gradient back onto the input-sample gradient (`+=`, callers pass a
/// zeroed or accumulating buffer).
pub(crate) fn col2im_acc(g: &ConvGeom, cols: &[f32], gx_sample: &mut [f32]) {
    let (l, s, p, h, w, wo) = (g.l, g.s, g.pad_left, g.h, g.w, g.wo);
    debug_assert_eq!(gx_sample.len(), g.c_in * h * w);
    debug_assert_eq!(cols.len(), g.col_len());
    for ci in 0..g.c_in {
        for li in 0..l {
            let row = &cols[(ci * l + li) * h * wo..(ci * l + li + 1) * h * wo];
            for hi in 0..h {
                let gx_row = &mut gx_sample[(ci * h + hi) * w..(ci * h + hi + 1) * w];
                let src = &row[hi * wo..(hi + 1) * wo];
                if s == 1 {
                    // Same saturated bounds as im2col: skip empty runs.
                    let wi_lo = p.saturating_sub(li).min(wo);
                    let wi_hi = (w + p).saturating_sub(li).min(wo).max(wi_lo);
                    if wi_lo < wi_hi {
                        let base = wi_lo + li - p;
                        for (gx, v) in gx_row[base..base + (wi_hi - wi_lo)]
                            .iter_mut()
                            .zip(&src[wi_lo..wi_hi])
                        {
                            *gx += v;
                        }
                    }
                } else {
                    for (wi, &v) in src.iter().enumerate() {
                        let idx = wi * s + li;
                        if idx >= p && idx - p < w {
                            gx_row[idx - p] += v;
                        }
                    }
                }
            }
        }
    }
}

/// Splits `0..n` into at most `parts` contiguous near-equal ranges.
pub(crate) fn split_ranges(n: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    let parts = parts.clamp(1, n.max(1));
    let base = n / parts;
    let rem = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for t in 0..parts {
        let len = base + usize::from(t < rem);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Worker threads for a batch of `n` samples.
pub(crate) fn sample_threads(n: usize) -> usize {
    thread_count().clamp(1, n.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom(c_in: usize, l: usize, s: usize, p: usize, h: usize, w: usize) -> ConvGeom {
        let wo = (w + 2 * p - l) / s + 1;
        ConvGeom {
            c_in,
            l,
            s,
            pad_left: p,
            h,
            w,
            wo,
        }
    }

    /// Reference im2col written directly from the definition.
    fn im2col_ref(g: &ConvGeom, x: &[f32]) -> Vec<f32> {
        let mut out = vec![0.0; g.col_len()];
        for ci in 0..g.c_in {
            for li in 0..g.l {
                for hi in 0..g.h {
                    for wi in 0..g.wo {
                        let src = wi * g.s + li;
                        let v = if src >= g.pad_left && src - g.pad_left < g.w {
                            x[(ci * g.h + hi) * g.w + src - g.pad_left]
                        } else {
                            0.0
                        };
                        out[(ci * g.l + li) * g.h * g.wo + hi * g.wo + wi] = v;
                    }
                }
            }
        }
        out
    }

    #[test]
    fn fast_paths_match_reference() {
        for &(c_in, l, s, p, h, w) in &[
            (1usize, 3usize, 1usize, 1usize, 1usize, 8usize),
            (2, 4, 1, 2, 3, 10),
            (3, 3, 2, 0, 2, 11),
            (2, 5, 2, 3, 1, 9),
            // Regression: kernel longer than the padded input width used to
            // underflow `(w + p - li)` / `base` in the stride-1 fast path.
            (2, 6, 1, 3, 2, 1),
            (1, 6, 1, 5, 1, 2),
        ] {
            let g = geom(c_in, l, s, p, h, w);
            let x: Vec<f32> = (0..c_in * h * w).map(|i| i as f32 + 1.0).collect();
            let mut fast = vec![f32::NAN; g.col_len()];
            im2col(&g, &x, &mut fast);
            assert_eq!(fast, im2col_ref(&g, &x), "geom {c_in},{l},{s},{p},{h},{w}");
        }
    }

    #[test]
    fn col2im_is_transpose_of_im2col() {
        // <im2col(x), c> must equal <x, col2im(c)> — adjointness, which is
        // exactly what the backward pass relies on.
        let g = geom(2, 3, 1, 1, 2, 7);
        let x: Vec<f32> = (0..g.c_in * g.h * g.w).map(|i| (i as f32).sin()).collect();
        let c: Vec<f32> = (0..g.col_len()).map(|i| (i as f32).cos()).collect();
        let mut px = vec![0.0; g.col_len()];
        im2col(&g, &x, &mut px);
        let lhs: f32 = px.iter().zip(&c).map(|(a, b)| a * b).sum();
        let mut back = vec![0.0; x.len()];
        col2im_acc(&g, &c, &mut back);
        let rhs: f32 = x.iter().zip(&back).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }

    #[test]
    fn split_ranges_cover_everything() {
        for n in [0usize, 1, 5, 16, 17] {
            for parts in [1usize, 2, 3, 8] {
                let ranges = split_ranges(n, parts);
                let total: usize = ranges.iter().map(|r| r.len()).sum();
                assert_eq!(total, n);
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next);
                    next = r.end;
                }
            }
        }
    }
}
