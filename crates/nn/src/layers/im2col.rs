//! im2col + GEMM execution strategy for [`super::Conv2dRows`].
//!
//! The row-wise convolution is a batch of small matrix products in
//! disguise: unrolling every kernel tap window of one sample into a
//! `(C_in·ℓ) × (H·W_out)` patch matrix `P` (im2col) turns
//!
//! * the forward pass into `Y = W·P` (one GEMM per sample, `W` viewed as
//!   `(C_out, C_in·ℓ)`),
//! * the input gradient into `dP = Wᵀ·G` followed by the scatter-add
//!   inverse unrolling (col2im),
//! * the weight gradient into `dW += G·Pᵀ`,
//!
//! all running on the packed register-tiled GEMM of `dcam-tensor` instead
//! of scalar loops. Patch matrices live in a per-layer scratch arena that is
//! reused across batches, so the strategy performs no steady-state
//! allocation beyond the output tensor itself.

use dcam_tensor::thread_count;

/// Geometry of one convolution application, precomputed once per call.
#[derive(Clone, Copy)]
pub(crate) struct ConvGeom {
    pub c_in: usize,
    /// Kernel temporal extent ℓ.
    pub l: usize,
    /// Temporal stride.
    pub s: usize,
    /// Left temporal padding.
    pub pad_left: usize,
    pub h: usize,
    pub w: usize,
    pub wo: usize,
}

impl ConvGeom {
    /// Rows of the patch matrix: one per `(channel, tap)` pair.
    pub fn col_rows(&self) -> usize {
        self.c_in * self.l
    }

    /// Columns of the patch matrix: one per output position.
    pub fn col_cols(&self) -> usize {
        self.h * self.wo
    }

    /// Elements of one sample's patch matrix.
    pub fn col_len(&self) -> usize {
        self.col_rows() * self.col_cols()
    }
}

/// Unrolls one input sample `(C_in, H, W)` into the patch matrix
/// `cols[(ci·ℓ + li), (hi·W_out + wi)] = x[ci, hi, wi·s + li − pad]`
/// (zero where the tap falls outside the input). Every element of `cols`
/// is written, so the scratch buffer needs no clearing between samples.
pub(crate) fn im2col(g: &ConvGeom, x_sample: &[f32], cols: &mut [f32]) {
    let (l, s, p, h, w, wo) = (g.l, g.s, g.pad_left, g.h, g.w, g.wo);
    debug_assert_eq!(x_sample.len(), g.c_in * h * w);
    debug_assert_eq!(cols.len(), g.col_len());
    for ci in 0..g.c_in {
        for li in 0..l {
            let row = &mut cols[(ci * l + li) * h * wo..(ci * l + li + 1) * h * wo];
            for hi in 0..h {
                let x_row = &x_sample[(ci * h + hi) * w..(ci * h + hi + 1) * w];
                let dst = &mut row[hi * wo..(hi + 1) * wo];
                if s == 1 {
                    // Valid tap positions map to one contiguous source run:
                    // 0 <= wi + li - p < w. Both bounds saturate: `li` can
                    // exceed `w + p` (kernel longer than the padded input)
                    // and the run can be empty, in which case the whole
                    // destination row is padding zeros.
                    let wi_lo = p.saturating_sub(li).min(wo);
                    let wi_hi = (w + p).saturating_sub(li).min(wo).max(wi_lo);
                    dst[..wi_lo].fill(0.0);
                    dst[wi_hi..].fill(0.0);
                    if wi_lo < wi_hi {
                        let base = wi_lo + li - p;
                        dst[wi_lo..wi_hi].copy_from_slice(&x_row[base..base + (wi_hi - wi_lo)]);
                    }
                } else {
                    for (wi, d) in dst.iter_mut().enumerate() {
                        let src = wi * s + li;
                        *d = if src >= p && src - p < w {
                            x_row[src - p]
                        } else {
                            0.0
                        };
                    }
                }
            }
        }
    }
}

/// One panel of [`im2col`] in the GEMM's packed layout: writes columns
/// `[jp·NR, jp·NR + NR)` of the patch matrix as a `col_rows × NR` tile
/// (zero-padded past the last real column). The fused inference path
/// streams these panels through a single L1-resident scratch buffer inside
/// `dcam_tensor::gemm_packed_panel_batch`, so the full patch matrix — the
/// dominant memory traffic of the per-sample im2col strategy — never
/// exists at all.
pub(crate) fn im2col_panel(g: &ConvGeom, x_sample: &[f32], jp: usize, dst: &mut [f32]) {
    let nr = dcam_tensor::GEMM_NR;
    let (l, s, p_pad, h, w, wo) = (g.l, g.s, g.pad_left, g.h, g.w, g.wo);
    let (k, n) = (g.col_rows(), g.col_cols());
    debug_assert_eq!(x_sample.len(), g.c_in * h * w);
    debug_assert_eq!(dst.len(), k * nr);
    let j0 = jp * nr;
    let jend = (j0 + nr).min(n);
    debug_assert!(j0 < n, "panel index out of range");
    let width = jend - j0;

    // Decompose the panel's columns into row-of-`H` segments once — the
    // split is identical for every one of the `k` patch rows, so the hot
    // per-row loop below is pure clamps + memcpy (no division).
    // At most `GEMM_NR` segments (each covers ≥ 1 column).
    let mut segs = [(0usize, 0usize, 0usize, 0usize); dcam_tensor::GEMM_NR];
    let mut n_segs = 0;
    {
        let mut j = j0;
        while j < jend {
            let hi = j / wo;
            let wi_start = j % wo;
            let seg_end = ((hi + 1) * wo).min(jend);
            segs[n_segs] = (hi, wi_start, seg_end - j, j - j0);
            n_segs += 1;
            j = seg_end;
        }
    }

    for ci in 0..g.c_in {
        for li in 0..l {
            let p = ci * l + li;
            let row = &mut dst[p * nr..(p + 1) * nr];
            row[width..].fill(0.0);
            if s == 1 {
                // Same saturated bounds as the row-major im2col.
                let wi_lo = p_pad.saturating_sub(li).min(wo);
                let wi_hi = (w + p_pad).saturating_sub(li).min(wo).max(wi_lo);
                for &(hi, wi_start, seg, d0) in &segs[..n_segs] {
                    let a = wi_start.max(wi_lo).min(wi_start + seg);
                    let b = (wi_start + seg).min(wi_hi).max(a);
                    row[d0..d0 + (a - wi_start)].fill(0.0);
                    if a < b {
                        let x_row = &x_sample[(ci * h + hi) * w..(ci * h + hi + 1) * w];
                        let base = a + li - p_pad;
                        row[d0 + (a - wi_start)..d0 + (b - wi_start)]
                            .copy_from_slice(&x_row[base..base + (b - a)]);
                    }
                    row[d0 + (b - wi_start)..d0 + seg].fill(0.0);
                }
            } else {
                for &(hi, wi_start, seg, d0) in &segs[..n_segs] {
                    let x_row = &x_sample[(ci * h + hi) * w..(ci * h + hi + 1) * w];
                    for off in 0..seg {
                        let src = (wi_start + off) * s + li;
                        row[d0 + off] = if src >= p_pad && src - p_pad < w {
                            x_row[src - p_pad]
                        } else {
                            0.0
                        };
                    }
                }
            }
        }
    }
}

/// Inverse of [`im2col`] for gradients: scatter-adds the patch-matrix
/// gradient back onto the input-sample gradient (`+=`, callers pass a
/// zeroed or accumulating buffer).
pub(crate) fn col2im_acc(g: &ConvGeom, cols: &[f32], gx_sample: &mut [f32]) {
    let (l, s, p, h, w, wo) = (g.l, g.s, g.pad_left, g.h, g.w, g.wo);
    debug_assert_eq!(gx_sample.len(), g.c_in * h * w);
    debug_assert_eq!(cols.len(), g.col_len());
    for ci in 0..g.c_in {
        for li in 0..l {
            let row = &cols[(ci * l + li) * h * wo..(ci * l + li + 1) * h * wo];
            for hi in 0..h {
                let gx_row = &mut gx_sample[(ci * h + hi) * w..(ci * h + hi + 1) * w];
                let src = &row[hi * wo..(hi + 1) * wo];
                if s == 1 {
                    // Same saturated bounds as im2col: skip empty runs.
                    let wi_lo = p.saturating_sub(li).min(wo);
                    let wi_hi = (w + p).saturating_sub(li).min(wo).max(wi_lo);
                    if wi_lo < wi_hi {
                        let base = wi_lo + li - p;
                        for (gx, v) in gx_row[base..base + (wi_hi - wi_lo)]
                            .iter_mut()
                            .zip(&src[wi_lo..wi_hi])
                        {
                            *gx += v;
                        }
                    }
                } else {
                    for (wi, &v) in src.iter().enumerate() {
                        let idx = wi * s + li;
                        if idx >= p && idx - p < w {
                            gx_row[idx - p] += v;
                        }
                    }
                }
            }
        }
    }
}

/// Splits `0..n` into at most `parts` contiguous near-equal ranges.
pub(crate) fn split_ranges(n: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    let parts = parts.clamp(1, n.max(1));
    let base = n / parts;
    let rem = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for t in 0..parts {
        let len = base + usize::from(t < rem);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Worker threads for a batch of `n` samples.
pub(crate) fn sample_threads(n: usize) -> usize {
    thread_count().clamp(1, n.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom(c_in: usize, l: usize, s: usize, p: usize, h: usize, w: usize) -> ConvGeom {
        let wo = (w + 2 * p - l) / s + 1;
        ConvGeom {
            c_in,
            l,
            s,
            pad_left: p,
            h,
            w,
            wo,
        }
    }

    /// Reference im2col written directly from the definition.
    fn im2col_ref(g: &ConvGeom, x: &[f32]) -> Vec<f32> {
        let mut out = vec![0.0; g.col_len()];
        for ci in 0..g.c_in {
            for li in 0..g.l {
                for hi in 0..g.h {
                    for wi in 0..g.wo {
                        let src = wi * g.s + li;
                        let v = if src >= g.pad_left && src - g.pad_left < g.w {
                            x[(ci * g.h + hi) * g.w + src - g.pad_left]
                        } else {
                            0.0
                        };
                        out[(ci * g.l + li) * g.h * g.wo + hi * g.wo + wi] = v;
                    }
                }
            }
        }
        out
    }

    #[test]
    fn fast_paths_match_reference() {
        for &(c_in, l, s, p, h, w) in &[
            (1usize, 3usize, 1usize, 1usize, 1usize, 8usize),
            (2, 4, 1, 2, 3, 10),
            (3, 3, 2, 0, 2, 11),
            (2, 5, 2, 3, 1, 9),
            // Regression: kernel longer than the padded input width used to
            // underflow `(w + p - li)` / `base` in the stride-1 fast path.
            (2, 6, 1, 3, 2, 1),
            (1, 6, 1, 5, 1, 2),
        ] {
            let g = geom(c_in, l, s, p, h, w);
            let x: Vec<f32> = (0..c_in * h * w).map(|i| i as f32 + 1.0).collect();
            let mut fast = vec![f32::NAN; g.col_len()];
            im2col(&g, &x, &mut fast);
            assert_eq!(fast, im2col_ref(&g, &x), "geom {c_in},{l},{s},{p},{h},{w}");
        }
    }

    #[test]
    fn col2im_is_transpose_of_im2col() {
        // <im2col(x), c> must equal <x, col2im(c)> — adjointness, which is
        // exactly what the backward pass relies on.
        let g = geom(2, 3, 1, 1, 2, 7);
        let x: Vec<f32> = (0..g.c_in * g.h * g.w).map(|i| (i as f32).sin()).collect();
        let c: Vec<f32> = (0..g.col_len()).map(|i| (i as f32).cos()).collect();
        let mut px = vec![0.0; g.col_len()];
        im2col(&g, &x, &mut px);
        let lhs: f32 = px.iter().zip(&c).map(|(a, b)| a * b).sum();
        let mut back = vec![0.0; x.len()];
        col2im_acc(&g, &c, &mut back);
        let rhs: f32 = x.iter().zip(&back).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }

    #[test]
    fn im2col_panel_matches_im2col_plus_pack() {
        use dcam_tensor::{pack_b_into, packed_b_len, GEMM_NR};
        for &(c_in, l, s, p, h, w) in &[
            (1usize, 3usize, 1usize, 1usize, 1usize, 8usize),
            (2, 4, 1, 2, 3, 10),
            (3, 3, 2, 0, 2, 11),
            (20, 3, 1, 1, 20, 128), // dCAM-shaped: exercises panel splits
            (2, 6, 1, 3, 2, 1),
            (4, 5, 1, 2, 3, 23), // H-row boundaries inside a panel
        ] {
            let g = geom(c_in, l, s, p, h, w);
            let x: Vec<f32> = (0..c_in * h * w).map(|i| (i as f32 * 0.37).sin()).collect();
            let (k, n) = (g.col_rows(), g.col_cols());
            let mut rowmajor = vec![0.0; g.col_len()];
            im2col(&g, &x, &mut rowmajor);
            let mut want = vec![0.0; packed_b_len(k, n)];
            pack_b_into(k, n, &rowmajor, &mut want);
            for jp in 0..n.div_ceil(GEMM_NR) {
                let mut got = vec![f32::NAN; k * GEMM_NR];
                im2col_panel(&g, &x, jp, &mut got);
                assert_eq!(
                    got,
                    want[jp * k * GEMM_NR..(jp + 1) * k * GEMM_NR],
                    "geom {c_in},{l},{s},{p},{h},{w} panel {jp}"
                );
            }
        }
    }

    #[test]
    fn split_ranges_cover_everything() {
        for n in [0usize, 1, 5, 16, 17] {
            for parts in [1usize, 2, 3, 8] {
                let ranges = split_ranges(n, parts);
                let total: usize = ranges.iter().map(|r| r.len()).sum();
                assert_eq!(total, n);
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next);
                    next = r.end;
                }
            }
        }
    }
}
