use super::Layer;
use crate::parallel::{par_accumulate, par_chunk_zip};
use crate::{init, Param};
use dcam_tensor::{SeededRng, Tensor};

/// Row-wise 2-D convolution: the single primitive behind CNN, cCNN and dCNN.
///
/// Input shape `(N, C_in, H, W)`; the kernel has extent `len` along the
/// *time* axis `W`, extent `1` along the *row* axis `H`, and reduces over all
/// `C_in` channels — i.e. the paper's kernels `(D, ℓ)` (CNN, `H = 1`),
/// `(1, ℓ, 1)` (cCNN, `C_in = 1`) and `(D, ℓ, 1)` (dCNN) are all instances:
///
/// ```text
/// out[n, co, h, w] = bias[co]
///   + Σ_ci Σ_l  x[n, ci, h, w·stride + l − padding] · weight[co, ci, l]
/// ```
///
/// Rows never mix: each row of the `C(T)` cube is convolved independently,
/// exactly as §4.2 of the paper requires ("convolute over each row of C(T)
/// independently").
pub struct Conv2dRows {
    weight: Param,
    bias: Param,
    c_in: usize,
    c_out: usize,
    len: usize,
    stride: usize,
    pad_left: usize,
    pad_right: usize,
    cache_x: Option<Tensor>,
}

impl Conv2dRows {
    /// Creates a convolution with Kaiming-initialized weights.
    ///
    /// `len` is the kernel's temporal extent ℓ; `padding` zeros are added on
    /// both ends of the time axis; `stride` subsamples the output.
    pub fn new(
        c_in: usize,
        c_out: usize,
        len: usize,
        stride: usize,
        padding: usize,
        rng: &mut SeededRng,
    ) -> Self {
        assert!(c_in > 0 && c_out > 0 && len > 0 && stride > 0);
        // padding < len keeps every output tap at least partially over the
        // input, which the edge-clipping index math below relies on.
        assert!(padding < len, "padding {padding} must be < kernel len {len}");
        Conv2dRows::with_padding(c_in, c_out, len, stride, padding, padding, rng)
    }

    /// Convolution with asymmetric temporal padding.
    pub fn with_padding(
        c_in: usize,
        c_out: usize,
        len: usize,
        stride: usize,
        pad_left: usize,
        pad_right: usize,
        rng: &mut SeededRng,
    ) -> Self {
        assert!(c_in > 0 && c_out > 0 && len > 0 && stride > 0);
        assert!(pad_left < len && pad_right < len, "padding must be < kernel len {len}");
        let fan_in = c_in * len;
        let weight = Param::new(init::kaiming(&[c_out, c_in, len], fan_in, rng));
        let bias = Param::new(Tensor::zeros(&[c_out]));
        Conv2dRows {
            weight,
            bias,
            c_in,
            c_out,
            len,
            stride,
            pad_left,
            pad_right,
            cache_x: None,
        }
    }

    /// "Same" convolution: stride 1, output width = input width for any
    /// kernel length (even kernels pad one extra zero on the right).
    pub fn same(c_in: usize, c_out: usize, len: usize, rng: &mut SeededRng) -> Self {
        Conv2dRows::with_padding(c_in, c_out, len, 1, (len - 1) / 2, len / 2, rng)
    }

    /// Output temporal length for an input of temporal length `w`.
    pub fn out_width(&self, w: usize) -> usize {
        let padded = w + self.pad_left + self.pad_right;
        assert!(padded >= self.len, "input too short for kernel");
        (padded - self.len) / self.stride + 1
    }

    /// Number of output channels (kernels).
    pub fn out_channels(&self) -> usize {
        self.c_out
    }

    /// Number of input channels.
    pub fn in_channels(&self) -> usize {
        self.c_in
    }

    /// Kernel temporal extent ℓ.
    pub fn kernel_len(&self) -> usize {
        self.len
    }

    fn check_input(&self, x: &Tensor) -> (usize, usize, usize) {
        let d = x.dims();
        assert_eq!(d.len(), 4, "Conv2dRows expects (N, C, H, W), got {d:?}");
        assert_eq!(d[1], self.c_in, "channel mismatch: got {}, want {}", d[1], self.c_in);
        (d[0], d[2], d[3])
    }
}

impl Layer for Conv2dRows {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let (n, h, w) = self.check_input(x);
        let wo = self.out_width(w);
        let (c_in, c_out, l, s, p) =
            (self.c_in, self.c_out, self.len, self.stride, self.pad_left);
        let mut out = Tensor::zeros(&[n, c_out, h, wo]);
        let xd = x.data();
        let wd = self.weight.value.data();
        let bd = self.bias.value.data();
        let sample_out = c_out * h * wo;

        par_chunk_zip(out.data_mut(), sample_out, &|ni, chunk| {
            let x_sample = &xd[ni * c_in * h * w..(ni + 1) * c_in * h * w];
            for co in 0..c_out {
                let w_k = &wd[co * c_in * l..(co + 1) * c_in * l];
                let b = bd[co];
                for hi in 0..h {
                    let o_row = &mut chunk[(co * h + hi) * wo..(co * h + hi + 1) * wo];
                    for (wi, o) in o_row.iter_mut().enumerate() {
                        // valid kernel tap range: 0 <= wi*s + li - p < w
                        let start = wi * s;
                        let l_lo = p.saturating_sub(start);
                        let l_hi = l.min(w + p - start);
                        let mut acc = b;
                        for ci in 0..c_in {
                            let x_row = &x_sample[(ci * h + hi) * w..(ci * h + hi + 1) * w];
                            let w_row = &w_k[ci * l..(ci + 1) * l];
                            let base = start + l_lo - p;
                            let span = l_hi - l_lo;
                            let xs = &x_row[base..base + span];
                            let ws = &w_row[l_lo..l_hi];
                            for (xv, wv) in xs.iter().zip(ws) {
                                acc += xv * wv;
                            }
                        }
                        *o = acc;
                    }
                }
            }
        });

        if train {
            self.cache_x = Some(x.clone());
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self.cache_x.take().expect("backward without cached forward");
        let (n, h, w) = self.check_input(&x);
        let god = grad_out.dims();
        let wo = self.out_width(w);
        assert_eq!(god, &[n, self.c_out, h, wo], "grad_out shape mismatch");

        let (c_in, c_out, l, s, p) =
            (self.c_in, self.c_out, self.len, self.stride, self.pad_left);
        let xd = x.data();
        let gd = grad_out.data();
        let wd = self.weight.value.data();

        // grad wrt input: disjoint per sample -> parallel chunks.
        let mut grad_x = Tensor::zeros(&[n, c_in, h, w]);
        par_chunk_zip(grad_x.data_mut(), c_in * h * w, &|ni, gx| {
            let g_sample = &gd[ni * c_out * h * wo..(ni + 1) * c_out * h * wo];
            for co in 0..c_out {
                let w_k = &wd[co * c_in * l..(co + 1) * c_in * l];
                for hi in 0..h {
                    let g_row = &g_sample[(co * h + hi) * wo..(co * h + hi + 1) * wo];
                    for (wi, &g) in g_row.iter().enumerate() {
                        if g == 0.0 {
                            continue;
                        }
                        let start = wi * s;
                        let l_lo = p.saturating_sub(start);
                        let l_hi = l.min(w + p - start);
                        for ci in 0..c_in {
                            let gx_row = &mut gx[(ci * h + hi) * w..(ci * h + hi + 1) * w];
                            let w_row = &w_k[ci * l..(ci + 1) * l];
                            let base = start + l_lo - p;
                            let span = l_hi - l_lo;
                            for (gxv, wv) in
                                gx_row[base..base + span].iter_mut().zip(&w_row[l_lo..l_hi])
                            {
                                *gxv += g * wv;
                            }
                        }
                    }
                }
            }
        });

        // grad wrt weight and bias: additive over samples -> per-thread
        // accumulators reduced once. Layout: [weight grads..., bias grads...].
        let w_len = c_out * c_in * l;
        let acc = par_accumulate(n, w_len + c_out, &|ni, acc| {
            let x_sample = &xd[ni * c_in * h * w..(ni + 1) * c_in * h * w];
            let g_sample = &gd[ni * c_out * h * wo..(ni + 1) * c_out * h * wo];
            let (gw, gb) = acc.split_at_mut(w_len);
            for co in 0..c_out {
                let gw_k = &mut gw[co * c_in * l..(co + 1) * c_in * l];
                for hi in 0..h {
                    let g_row = &g_sample[(co * h + hi) * wo..(co * h + hi + 1) * wo];
                    for (wi, &g) in g_row.iter().enumerate() {
                        if g == 0.0 {
                            continue;
                        }
                        gb[co] += g;
                        let start = wi * s;
                        let l_lo = p.saturating_sub(start);
                        let l_hi = l.min(w + p - start);
                        for ci in 0..c_in {
                            let x_row = &x_sample[(ci * h + hi) * w..(ci * h + hi + 1) * w];
                            let gw_row = &mut gw_k[ci * l..(ci + 1) * l];
                            let base = start + l_lo - p;
                            let span = l_hi - l_lo;
                            for (gwv, xv) in
                                gw_row[l_lo..l_hi].iter_mut().zip(&x_row[base..base + span])
                            {
                                *gwv += g * xv;
                            }
                        }
                    }
                }
            }
        });
        for (g, a) in self.weight.grad.data_mut().iter_mut().zip(&acc[..w_len]) {
            *g += a;
        }
        for (g, a) in self.bias.grad.data_mut().iter_mut().zip(&acc[w_len..]) {
            *g += a;
        }

        grad_x
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        f(&mut self.bias);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_shape_same_padding() {
        let mut rng = SeededRng::new(0);
        let mut conv = Conv2dRows::same(3, 5, 3, &mut rng);
        let x = Tensor::zeros(&[2, 3, 4, 10]);
        let y = conv.forward(&x, false);
        assert_eq!(y.dims(), &[2, 5, 4, 10]);
    }

    #[test]
    fn output_shape_stride_two() {
        let mut rng = SeededRng::new(0);
        let mut conv = Conv2dRows::new(1, 2, 4, 2, 0, &mut rng);
        let x = Tensor::zeros(&[1, 1, 1, 12]);
        let y = conv.forward(&x, false);
        // (12 - 4) / 2 + 1 = 5
        assert_eq!(y.dims(), &[1, 2, 1, 5]);
    }

    #[test]
    fn known_convolution_values() {
        // 1 in-channel, 1 out-channel, kernel [1, 2, 3], no padding.
        let mut rng = SeededRng::new(0);
        let mut conv = Conv2dRows::new(1, 1, 3, 1, 0, &mut rng);
        conv.weight.value = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 1, 3]).unwrap();
        conv.bias.value = Tensor::from_vec(vec![0.5], &[1]).unwrap();
        let x = Tensor::from_vec(vec![1.0, 0.0, 2.0, 1.0], &[1, 1, 1, 4]).unwrap();
        let y = conv.forward(&x, false);
        // [1*1 + 0*2 + 2*3, 0*1 + 2*2 + 1*3] + 0.5 = [7.5, 7.5]
        assert_eq!(y.data(), &[7.5, 7.5]);
    }

    #[test]
    fn rows_do_not_mix() {
        // With two rows, zeroing one row of input must zero that output row
        // only (bias set to zero).
        let mut rng = SeededRng::new(1);
        let mut conv = Conv2dRows::same(1, 1, 3, &mut rng);
        conv.bias.value.fill(0.0);
        let mut x = Tensor::zeros(&[1, 1, 2, 6]);
        for w in 0..6 {
            x.set(&[0, 0, 1, w], 1.0).unwrap(); // only row 1 nonzero
        }
        let y = conv.forward(&x, false);
        for w in 0..6 {
            assert_eq!(y.at(&[0, 0, 0, w]).unwrap(), 0.0, "row 0 leaked");
            assert_ne!(y.at(&[0, 0, 1, w]).unwrap(), 0.0, "row 1 lost signal");
        }
    }

    #[test]
    fn channels_are_reduced() {
        // Both input channels must contribute to the single output channel.
        let mut rng = SeededRng::new(2);
        let mut conv = Conv2dRows::new(2, 1, 1, 1, 0, &mut rng);
        conv.weight.value = Tensor::from_vec(vec![1.0, 10.0], &[1, 2, 1]).unwrap();
        conv.bias.value.fill(0.0);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 2, 1, 2]).unwrap();
        let y = conv.forward(&x, false);
        // out[w] = 1*x0[w] + 10*x1[w]
        assert_eq!(y.data(), &[31.0, 42.0]);
    }

    #[test]
    fn same_padding_preserves_width_for_even_kernels() {
        // Regression: ResNet uses kernel 8; symmetric len/2 padding grew the
        // output by one column and broke residual adds.
        let mut rng = SeededRng::new(9);
        for len in [2usize, 3, 4, 5, 8] {
            let mut conv = Conv2dRows::same(1, 1, len, &mut rng);
            let x = Tensor::zeros(&[1, 1, 1, 13]);
            let y = conv.forward(&x, false);
            assert_eq!(y.dims(), &[1, 1, 1, 13], "kernel {len}");
        }
    }

    #[test]
    fn backward_requires_forward() {
        let mut rng = SeededRng::new(3);
        let mut conv = Conv2dRows::same(1, 1, 3, &mut rng);
        let g = Tensor::zeros(&[1, 1, 1, 4]);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            conv.backward(&g);
        }));
        assert!(result.is_err());
    }
}
