use super::conv_fft::{FftConv, FftGeom};
use super::im2col::{col2im_acc, im2col, im2col_panel, sample_threads, split_ranges, ConvGeom};
use super::Layer;
use crate::arena::BatchArena;
use crate::parallel::{par_accumulate, par_chunk_zip};
use crate::quant::QuantState;
use crate::{init, Param};
use dcam_tensor::{
    dequantize_row, gemm_nn, gemm_nt, gemm_packed_panel_batch, gemm_packed_strided_b, gemm_tn,
    k_groups, qgemm_i32, quantize_lane_into, weight_scale, PackedA, QuantizedWeights, SeededRng,
    Tensor, ACT_ZERO_POINT,
};
use std::sync::OnceLock;

/// How [`Conv2dRows`] executes (forward and backward).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConvStrategy {
    /// Pick per call by problem size (the default): fft once the series is
    /// long enough for O(W log W) to win, im2col when the product is large
    /// enough to amortize patch-matrix construction, direct otherwise. The
    /// `DCAM_CONV_STRATEGY` environment variable (`direct` / `im2col` /
    /// `fft`) pins Auto layers globally — useful for benchmarking the
    /// paths against each other; unknown values panic at first use.
    Auto,
    /// The scalar sliding-window loops.
    Direct,
    /// im2col + packed GEMM: every kernel-tap window is unrolled into a
    /// patch matrix so the convolution runs as one GEMM per sample (see
    /// the `im2col` module's docs).
    Im2col,
    /// Frequency-domain convolution: per-row real-input FFTs, pointwise
    /// multiply against per-layer kernel spectra, inverse transform (see
    /// the `conv_fft` module's docs). O(W log W) instead of O(W·ℓ) — the
    /// long-series strategy.
    Fft,
}

impl ConvStrategy {
    /// Parses a `DCAM_CONV_STRATEGY` value.
    ///
    /// # Panics
    ///
    /// Panics on anything other than `auto`, `direct`, `im2col` or `fft` —
    /// a misspelled strategy in a CI matrix or benchmark script must fail
    /// loudly, not silently fall back to Auto.
    pub fn parse(value: &str) -> ConvStrategy {
        match value {
            "auto" => ConvStrategy::Auto,
            "direct" => ConvStrategy::Direct,
            "im2col" => ConvStrategy::Im2col,
            "fft" => ConvStrategy::Fft,
            other => panic!(
                "unknown DCAM_CONV_STRATEGY value {other:?}: expected one of \
                 auto | direct | im2col | fft"
            ),
        }
    }
}

/// Auto picks im2col once the GEMM inner dimension `C_in·ℓ` reaches this.
const IM2COL_MIN_K: usize = 12;
/// ... and the per-sample output plane `H·W_out` reaches this.
const IM2COL_MIN_COLS: usize = 32;
/// Auto never picks fft below this many kernel taps: the overlap-save
/// driver does ~log₂B ≈ 10 butterfly multiply-adds per sample regardless
/// of ℓ, so im2col's ℓ multiply-adds stay cheaper for short kernels at any
/// series length.
const FFT_MIN_LEN: usize = 13;
/// …and above it, picks fft once `(ℓ − FFT_MIN_LEN) · W_out` reaches this.
/// The measured crossover (AVX2 host, see PERF.md) tracks
/// `ℓ ≈ 13 + 36000/W` closely from W = 1024 through 32768: the excess taps
/// over the butterfly cost must amortize the transform's fixed per-call
/// overhead, which shrinks relative to im2col as the series grows.
const FFT_MIN_WORK: usize = 36_000;

fn env_strategy() -> Option<ConvStrategy> {
    static OVERRIDE: OnceLock<Option<ConvStrategy>> = OnceLock::new();
    *OVERRIDE.get_or_init(|| {
        std::env::var("DCAM_CONV_STRATEGY")
            .ok()
            .map(|v| ConvStrategy::parse(&v))
    })
}

/// Row-wise 2-D convolution: the single primitive behind CNN, cCNN and dCNN.
///
/// Input shape `(N, C_in, H, W)`; the kernel has extent `len` along the
/// *time* axis `W`, extent `1` along the *row* axis `H`, and reduces over all
/// `C_in` channels — i.e. the paper's kernels `(D, ℓ)` (CNN, `H = 1`),
/// `(1, ℓ, 1)` (cCNN, `C_in = 1`) and `(D, ℓ, 1)` (dCNN) are all instances:
///
/// ```text
/// out[n, co, h, w] = bias[co]
///   + Σ_ci Σ_l  x[n, ci, h, w·stride + l − padding] · weight[co, ci, l]
/// ```
///
/// Rows never mix: each row of the `C(T)` cube is convolved independently,
/// exactly as §4.2 of the paper requires ("convolute over each row of C(T)
/// independently").
///
/// Three execution strategies produce identical results (up to float
/// reassociation ≤ 1e-4, enforced by `tests/conv_strategies.rs`): the
/// direct sliding-window loops, an im2col + packed-GEMM path with a
/// per-layer scratch arena, and a frequency-domain fft path for long
/// series ([`ConvStrategy`]).
pub struct Conv2dRows {
    weight: Param,
    bias: Param,
    c_in: usize,
    c_out: usize,
    len: usize,
    stride: usize,
    pad_left: usize,
    pad_right: usize,
    strategy: ConvStrategy,
    /// Patch-matrix arena for the im2col path: `threads × col_len` f32
    /// (forward) or `threads × 2·col_len` (backward), grown on demand and
    /// reused across batches.
    scratch: Vec<f32>,
    /// Weight matrix prepacked for the fused inference path; repacked at
    /// every `forward_eval` call (a single `c_out × c_in·ℓ` copy), so it can
    /// never go stale across optimizer steps.
    packed_w: PackedA,
    /// Per-tap `(c_out × c_in)` weight slices prepacked for the shift-GEMM
    /// eval path; repacked per call like `packed_w`.
    packed_taps: Vec<PackedA>,
    /// Transform plan, kernel spectra and scratch for the fft strategy;
    /// kernel spectra are cached across calls keyed on `weight_version`,
    /// so mega-batches between weight mutations reuse them.
    fft: FftConv,
    /// Bumped on every [`Layer::visit_params`] call — the choke point all
    /// external weight mutation (optimizer steps, checkpoint restores,
    /// `copy_params`) flows through — so version-keyed caches like the fft
    /// kernel spectra can never go stale.
    weight_version: u64,
    cache_x: Option<Tensor>,
    /// Precision selection and calibrated activation scale for the int8
    /// inference path (see [`crate::quant`]).
    quant: QuantState,
    /// Per-tap quantized weights for the int8 path, keyed on
    /// `weight_version` like the fft spectra cache.
    qweights: Option<QuantConv>,
    /// Interleaved quantized-activation scratch for the int8 path (one
    /// sample's padded planes), grown on demand. The arena pools only
    /// f32 storage, so the byte/i32 scratch lives with the layer.
    qx: Vec<u8>,
    /// i32 accumulator scratch (`c_out × w`, one output row at a time).
    qacc: Vec<i32>,
}

/// Per-tap quantized weights with the per-output-channel scale shared
/// across taps — the invariant that lets all ℓ taps accumulate into one
/// i32 buffer before a single dequantization.
struct QuantConv {
    taps: Vec<QuantizedWeights>,
    /// Per-output-channel zero-point corrections, summed over taps.
    corr: Vec<i32>,
    /// Per-output-channel weight scales (computed over the full `c_in·ℓ`
    /// row).
    scales: Vec<f32>,
    version: u64,
}

impl Conv2dRows {
    /// Creates a convolution with Kaiming-initialized weights.
    ///
    /// `len` is the kernel's temporal extent ℓ; `padding` zeros are added on
    /// both ends of the time axis; `stride` subsamples the output.
    pub fn new(
        c_in: usize,
        c_out: usize,
        len: usize,
        stride: usize,
        padding: usize,
        rng: &mut SeededRng,
    ) -> Self {
        assert!(c_in > 0 && c_out > 0 && len > 0 && stride > 0);
        // padding < len keeps every output tap at least partially over the
        // input, which the edge-clipping index math below relies on.
        assert!(
            padding < len,
            "padding {padding} must be < kernel len {len}"
        );
        Conv2dRows::with_padding(c_in, c_out, len, stride, padding, padding, rng)
    }

    /// Convolution with asymmetric temporal padding.
    pub fn with_padding(
        c_in: usize,
        c_out: usize,
        len: usize,
        stride: usize,
        pad_left: usize,
        pad_right: usize,
        rng: &mut SeededRng,
    ) -> Self {
        assert!(c_in > 0 && c_out > 0 && len > 0 && stride > 0);
        assert!(
            pad_left < len && pad_right < len,
            "padding must be < kernel len {len}"
        );
        let fan_in = c_in * len;
        let weight = Param::new(init::kaiming(&[c_out, c_in, len], fan_in, rng));
        let bias = Param::new(Tensor::zeros(&[c_out]));
        Conv2dRows {
            weight,
            bias,
            c_in,
            c_out,
            len,
            stride,
            pad_left,
            pad_right,
            strategy: ConvStrategy::Auto,
            scratch: Vec::new(),
            packed_w: PackedA::new(),
            packed_taps: Vec::new(),
            fft: FftConv::new(),
            weight_version: 0,
            cache_x: None,
            quant: QuantState::default(),
            qweights: None,
            qx: Vec::new(),
            qacc: Vec::new(),
        }
    }

    /// "Same" convolution: stride 1, output width = input width for any
    /// kernel length (even kernels pad one extra zero on the right).
    pub fn same(c_in: usize, c_out: usize, len: usize, rng: &mut SeededRng) -> Self {
        Conv2dRows::with_padding(c_in, c_out, len, 1, (len - 1) / 2, len / 2, rng)
    }

    /// Output temporal length for an input of temporal length `w`.
    pub fn out_width(&self, w: usize) -> usize {
        let padded = w + self.pad_left + self.pad_right;
        assert!(padded >= self.len, "input too short for kernel");
        (padded - self.len) / self.stride + 1
    }

    /// Number of output channels (kernels).
    pub fn out_channels(&self) -> usize {
        self.c_out
    }

    /// Number of input channels.
    pub fn in_channels(&self) -> usize {
        self.c_in
    }

    /// Kernel temporal extent ℓ.
    pub fn kernel_len(&self) -> usize {
        self.len
    }

    /// Pins the execution strategy (default: [`ConvStrategy::Auto`]).
    pub fn set_strategy(&mut self, strategy: ConvStrategy) {
        self.strategy = strategy;
    }

    /// The configured execution strategy.
    pub fn strategy(&self) -> ConvStrategy {
        self.strategy
    }

    fn check_input(&self, x: &Tensor) -> (usize, usize, usize) {
        let d = x.dims();
        assert_eq!(d.len(), 4, "Conv2dRows expects (N, C, H, W), got {d:?}");
        assert_eq!(
            d[1], self.c_in,
            "channel mismatch: got {}, want {}",
            d[1], self.c_in
        );
        (d[0], d[2], d[3])
    }

    fn geom(&self, h: usize, w: usize, wo: usize) -> ConvGeom {
        ConvGeom {
            c_in: self.c_in,
            l: self.len,
            s: self.stride,
            pad_left: self.pad_left,
            h,
            w,
            wo,
        }
    }

    /// Resolves the strategy for this call's geometry; never returns
    /// [`ConvStrategy::Auto`].
    fn resolve(&self, h: usize, wo: usize) -> ConvStrategy {
        let strategy = match self.strategy {
            ConvStrategy::Auto => env_strategy().unwrap_or(ConvStrategy::Auto),
            pinned => pinned,
        };
        match strategy {
            ConvStrategy::Auto => {
                if self.len > FFT_MIN_LEN && (self.len - FFT_MIN_LEN) * wo >= FFT_MIN_WORK {
                    ConvStrategy::Fft
                } else if self.c_in * self.len >= IM2COL_MIN_K && h * wo >= IM2COL_MIN_COLS {
                    ConvStrategy::Im2col
                } else {
                    ConvStrategy::Direct
                }
            }
            pinned => pinned,
        }
    }

    /// The execution strategy this layer would use for an input of `h`
    /// rows and temporal length `w` — [`ConvStrategy::Auto`] (and the
    /// `DCAM_CONV_STRATEGY` override) resolved against the layer's size
    /// heuristic. Lets callers (benchmarks, the explanation engine's
    /// introspection endpoints) see which path a geometry actually takes.
    pub fn resolved_strategy(&self, h: usize, w: usize) -> ConvStrategy {
        self.resolve(h, self.out_width(w))
    }

    fn fft_geom(&self, h: usize, w: usize, wo: usize) -> FftGeom {
        FftGeom {
            c_in: self.c_in,
            c_out: self.c_out,
            l: self.len,
            s: self.stride,
            pl: self.pad_left,
            h,
            w,
            wo,
        }
    }

    // ---- fft strategy ----------------------------------------------------

    fn forward_fft(&mut self, x: &Tensor, n: usize, h: usize, w: usize, wo: usize) -> Tensor {
        let geom = self.fft_geom(h, w, wo);
        let mut out = Tensor::zeros(&[n, self.c_out, h, wo]);
        self.fft.forward(
            &geom,
            n,
            self.weight_version,
            self.weight.value.data(),
            self.bias.value.data(),
            x.data(),
            out.data_mut(),
        );
        out
    }

    /// The fft strategy on the allocation-free inference path: same driver
    /// as [`Self::forward_fft`], output drawn from — and input returned
    /// to — `arena`. The transform plan and kernel spectra live in the
    /// layer, so steady-state serving allocates nothing.
    fn forward_eval_fft(&mut self, x: Tensor, arena: &mut BatchArena) -> Tensor {
        let (n, h, w) = self.check_input(&x);
        let wo = self.out_width(w);
        let geom = self.fft_geom(h, w, wo);
        let mut out_buf = arena.take(n * self.c_out * h * wo);
        self.fft.forward(
            &geom,
            n,
            self.weight_version,
            self.weight.value.data(),
            self.bias.value.data(),
            x.data(),
            &mut out_buf,
        );
        let dims = [n, self.c_out, h, wo];
        arena.recycle(x);
        Tensor::from_vec(out_buf, &dims).expect("conv eval shape")
    }

    fn backward_fft(
        &mut self,
        x: &Tensor,
        grad_out: &Tensor,
        n: usize,
        h: usize,
        w: usize,
        wo: usize,
    ) -> Tensor {
        let geom = self.fft_geom(h, w, wo);
        let mut grad_x = Tensor::zeros(&[n, self.c_in, h, w]);
        let version = self.weight_version;
        let Conv2dRows {
            fft, weight, bias, ..
        } = self;
        fft.backward(
            &geom,
            n,
            version,
            weight.value.data(),
            x.data(),
            grad_out.data(),
            grad_x.data_mut(),
            weight.grad.data_mut(),
            bias.grad.data_mut(),
        );
        grad_x
    }

    // ---- direct strategy -------------------------------------------------

    fn forward_direct(&self, x: &Tensor, n: usize, h: usize, w: usize, wo: usize) -> Tensor {
        let (c_in, c_out, l, s, p) = (self.c_in, self.c_out, self.len, self.stride, self.pad_left);
        let mut out = Tensor::zeros(&[n, c_out, h, wo]);
        let xd = x.data();
        let wd = self.weight.value.data();
        let bd = self.bias.value.data();
        let sample_out = c_out * h * wo;

        par_chunk_zip(out.data_mut(), sample_out, &|ni, chunk| {
            let x_sample = &xd[ni * c_in * h * w..(ni + 1) * c_in * h * w];
            for co in 0..c_out {
                let w_k = &wd[co * c_in * l..(co + 1) * c_in * l];
                let b = bd[co];
                for hi in 0..h {
                    let o_row = &mut chunk[(co * h + hi) * wo..(co * h + hi + 1) * wo];
                    for (wi, o) in o_row.iter_mut().enumerate() {
                        // valid kernel tap range: 0 <= wi*s + li - p < w
                        let start = wi * s;
                        let l_lo = p.saturating_sub(start);
                        let l_hi = l.min(w + p - start);
                        let mut acc = b;
                        for ci in 0..c_in {
                            let x_row = &x_sample[(ci * h + hi) * w..(ci * h + hi + 1) * w];
                            let w_row = &w_k[ci * l..(ci + 1) * l];
                            let base = start + l_lo - p;
                            let span = l_hi - l_lo;
                            let xs = &x_row[base..base + span];
                            let ws = &w_row[l_lo..l_hi];
                            for (xv, wv) in xs.iter().zip(ws) {
                                acc += xv * wv;
                            }
                        }
                        *o = acc;
                    }
                }
            }
        });
        out
    }

    fn backward_direct(
        &mut self,
        x: &Tensor,
        grad_out: &Tensor,
        n: usize,
        h: usize,
        w: usize,
        wo: usize,
    ) -> Tensor {
        let (c_in, c_out, l, s, p) = (self.c_in, self.c_out, self.len, self.stride, self.pad_left);
        let xd = x.data();
        let gd = grad_out.data();
        let wd = self.weight.value.data();

        // grad wrt input: disjoint per sample -> parallel chunks.
        let mut grad_x = Tensor::zeros(&[n, c_in, h, w]);
        par_chunk_zip(grad_x.data_mut(), c_in * h * w, &|ni, gx| {
            let g_sample = &gd[ni * c_out * h * wo..(ni + 1) * c_out * h * wo];
            for co in 0..c_out {
                let w_k = &wd[co * c_in * l..(co + 1) * c_in * l];
                for hi in 0..h {
                    let g_row = &g_sample[(co * h + hi) * wo..(co * h + hi + 1) * wo];
                    for (wi, &g) in g_row.iter().enumerate() {
                        if g == 0.0 {
                            continue;
                        }
                        let start = wi * s;
                        let l_lo = p.saturating_sub(start);
                        let l_hi = l.min(w + p - start);
                        for ci in 0..c_in {
                            let gx_row = &mut gx[(ci * h + hi) * w..(ci * h + hi + 1) * w];
                            let w_row = &w_k[ci * l..(ci + 1) * l];
                            let base = start + l_lo - p;
                            let span = l_hi - l_lo;
                            for (gxv, wv) in
                                gx_row[base..base + span].iter_mut().zip(&w_row[l_lo..l_hi])
                            {
                                *gxv += g * wv;
                            }
                        }
                    }
                }
            }
        });

        // grad wrt weight and bias: additive over samples -> per-thread
        // accumulators reduced once. Layout: [weight grads..., bias grads...].
        let w_len = c_out * c_in * l;
        let acc = par_accumulate(n, w_len + c_out, &|ni, acc| {
            let x_sample = &xd[ni * c_in * h * w..(ni + 1) * c_in * h * w];
            let g_sample = &gd[ni * c_out * h * wo..(ni + 1) * c_out * h * wo];
            let (gw, gb) = acc.split_at_mut(w_len);
            for co in 0..c_out {
                let gw_k = &mut gw[co * c_in * l..(co + 1) * c_in * l];
                for hi in 0..h {
                    let g_row = &g_sample[(co * h + hi) * wo..(co * h + hi + 1) * wo];
                    for (wi, &g) in g_row.iter().enumerate() {
                        if g == 0.0 {
                            continue;
                        }
                        gb[co] += g;
                        let start = wi * s;
                        let l_lo = p.saturating_sub(start);
                        let l_hi = l.min(w + p - start);
                        for ci in 0..c_in {
                            let x_row = &x_sample[(ci * h + hi) * w..(ci * h + hi + 1) * w];
                            let gw_row = &mut gw_k[ci * l..(ci + 1) * l];
                            let base = start + l_lo - p;
                            let span = l_hi - l_lo;
                            for (gwv, xv) in
                                gw_row[l_lo..l_hi].iter_mut().zip(&x_row[base..base + span])
                            {
                                *gwv += g * xv;
                            }
                        }
                    }
                }
            }
        });
        for (g, a) in self.weight.grad.data_mut().iter_mut().zip(&acc[..w_len]) {
            *g += a;
        }
        for (g, a) in self.bias.grad.data_mut().iter_mut().zip(&acc[w_len..]) {
            *g += a;
        }

        grad_x
    }

    // ---- im2col + GEMM strategy ------------------------------------------

    fn forward_im2col(&mut self, x: &Tensor, n: usize, h: usize, w: usize, wo: usize) -> Tensor {
        let geom = self.geom(h, w, wo);
        let col_len = geom.col_len();
        let threads = sample_threads(n);
        if self.scratch.len() < threads * col_len {
            self.scratch.resize(threads * col_len, 0.0);
        }
        let (c_out, c_in) = (self.c_out, self.c_in);
        let (col_rows, col_cols) = (geom.col_rows(), geom.col_cols());
        let sample_in = c_in * h * w;
        let sample_out = c_out * h * wo;
        let mut out = Tensor::zeros(&[n, c_out, h, wo]);
        let xd = x.data();
        let wd = self.weight.value.data();
        let bd = self.bias.value.data();

        let run = |range: std::ops::Range<usize>, out_chunk: &mut [f32], cols: &mut [f32]| {
            for (i, si) in range.enumerate() {
                let x_sample = &xd[si * sample_in..(si + 1) * sample_in];
                im2col(&geom, x_sample, cols);
                let y = &mut out_chunk[i * sample_out..(i + 1) * sample_out];
                gemm_nn(c_out, col_rows, col_cols, wd, cols, y, false);
                for (co, &b) in bd.iter().enumerate() {
                    if b != 0.0 {
                        for v in &mut y[co * h * wo..(co + 1) * h * wo] {
                            *v += b;
                        }
                    }
                }
            }
        };

        if threads <= 1 {
            run(0..n, out.data_mut(), &mut self.scratch[..col_len]);
        } else {
            let ranges = split_ranges(n, threads);
            std::thread::scope(|sc| {
                let mut out_rest = out.data_mut();
                let mut scratch_rest = &mut self.scratch[..];
                for range in ranges {
                    let (out_chunk, o_tail) = out_rest.split_at_mut(range.len() * sample_out);
                    out_rest = o_tail;
                    let (cols, s_tail) = scratch_rest.split_at_mut(col_len);
                    scratch_rest = s_tail;
                    let run = &run;
                    sc.spawn(move || run(range, out_chunk, cols));
                }
            });
        }
        out
    }

    /// The fused inference forward: weights prepacked once per call, im2col
    /// panels streamed straight into the GEMM's L1-resident scratch (the
    /// full patch matrix never exists), one batched GEMM call for the whole
    /// mega-batch, and the output buffer drawn from — and the input
    /// returned to — `arena`.
    fn forward_eval_fused(&mut self, x: Tensor, arena: &mut BatchArena) -> Tensor {
        let (n, h, w) = self.check_input(&x);
        let wo = self.out_width(w);
        let geom = self.geom(h, w, wo);
        let (c_out, c_in) = (self.c_out, self.c_in);
        let (col_rows, col_cols) = (geom.col_rows(), geom.col_cols());
        let sample_in = c_in * h * w;
        let sample_out = c_out * h * wo;
        self.packed_w
            .pack_nn(c_out, col_rows, self.weight.value.data());

        let mut out_buf = arena.take(n * sample_out);
        let xd = x.data();
        gemm_packed_panel_batch(
            &self.packed_w,
            col_cols,
            n,
            &|bi, jp, panel| {
                im2col_panel(&geom, &xd[bi * sample_in..(bi + 1) * sample_in], jp, panel)
            },
            &mut out_buf,
            sample_out,
            false,
        );
        let bd = self.bias.value.data();
        if bd.iter().any(|&b| b != 0.0) {
            for y in out_buf.chunks_mut(sample_out) {
                for (co, &b) in bd.iter().enumerate() {
                    if b != 0.0 {
                        for v in &mut y[co * h * wo..(co + 1) * h * wo] {
                            *v += b;
                        }
                    }
                }
            }
        }
        arena.recycle(x);
        Tensor::from_vec(out_buf, &[n, c_out, h, wo]).expect("conv eval shape")
    }

    /// Shift-GEMM inference forward for stride-1, width-preserving
    /// convolutions (every conv in the study's architectures): the patch
    /// matrix of kernel tap `ℓᵢ` is just the input planes shifted by
    /// `ℓᵢ − pad` along flattened time, so each tap is one strided-`B` GEMM
    /// reading the input **in place** — no cube→patch materialization at
    /// all. The flat shift pulls a neighbor row's edge values into the
    /// `ℓ − 1` columns at each `H`-row boundary (where the true patch holds
    /// padding zeros); a scalar pass subtracts exactly those terms.
    fn forward_eval_taps(&mut self, x: Tensor, arena: &mut BatchArena) -> Tensor {
        let (n, h, w) = self.check_input(&x);
        debug_assert_eq!(self.out_width(w), w);
        let (c_out, c_in, l, pl) = (self.c_out, self.c_in, self.len, self.pad_left);
        let hw = h * w;
        let sample_in = c_in * hw;
        let sample_out = c_out * hw;
        let wd = self.weight.value.data();
        if self.packed_taps.len() != l {
            self.packed_taps = (0..l).map(|_| PackedA::new()).collect();
        }
        for (li, pw) in self.packed_taps.iter_mut().enumerate() {
            pw.pack_strided(c_out, c_in, &wd[li..], c_in * l, l);
        }
        let mut out_buf = arena.take(n * sample_out);
        let xd = x.data();
        let bd = self.bias.value.data();
        let taps = &self.packed_taps;

        let run = |range: std::ops::Range<usize>, out_chunk: &mut [f32]| {
            for (i, si) in range.enumerate() {
                let xs = &xd[si * sample_in..(si + 1) * sample_in];
                let y = &mut out_chunk[i * sample_out..(i + 1) * sample_out];
                for (li, pw) in taps.iter().enumerate() {
                    let s = li as isize - pl as isize;
                    let j_lo = s.min(0).unsigned_abs();
                    let j_hi = hw - s.max(0) as usize;
                    if li == 0 {
                        // First (overwriting) tap: zero the edge columns it
                        // does not cover so later taps can accumulate.
                        for co in 0..c_out {
                            y[co * hw..co * hw + j_lo].fill(0.0);
                            y[co * hw + j_hi..(co + 1) * hw].fill(0.0);
                        }
                    }
                    let b0 = (j_lo as isize + s) as usize;
                    gemm_packed_strided_b(pw, &xs[b0..], hw, j_hi - j_lo, y, hw, j_lo, li != 0);
                }
                // Row-boundary corrections: remove the neighbor-row terms
                // the flat shift read where the patch holds padding zeros.
                for li in 0..l {
                    let s = li as isize - pl as isize;
                    if s == 0 || h <= 1 {
                        continue;
                    }
                    let sa = s.unsigned_abs();
                    for hb in 1..h {
                        // Boundary between rows hb−1 and hb.
                        for t in 0..sa {
                            let (j, xcol) = if s > 0 {
                                ((hb - 1) * w + w - sa + t, hb * w + t)
                            } else {
                                (hb * w + t, hb * w + t - sa)
                            };
                            for co in 0..c_out {
                                let w_k = &wd[co * c_in * l..(co + 1) * c_in * l];
                                let mut acc = 0.0f32;
                                for ci in 0..c_in {
                                    acc += w_k[ci * l + li] * xs[ci * hw + xcol];
                                }
                                y[co * hw + j] -= acc;
                            }
                        }
                    }
                }
                for (co, &b) in bd.iter().enumerate() {
                    if b != 0.0 {
                        for v in &mut y[co * hw..(co + 1) * hw] {
                            *v += b;
                        }
                    }
                }
            }
        };

        let threads = sample_threads(n);
        if threads <= 1 {
            run(0..n, &mut out_buf);
        } else {
            let ranges = split_ranges(n, threads);
            std::thread::scope(|sc| {
                let mut out_rest = &mut out_buf[..];
                for range in ranges {
                    let (out_chunk, tail) = out_rest.split_at_mut(range.len() * sample_out);
                    out_rest = tail;
                    let run = &run;
                    sc.spawn(move || run(range, out_chunk));
                }
            });
        }
        arena.recycle(x);
        Tensor::from_vec(out_buf, &[n, c_out, h, w]).expect("conv eval shape")
    }

    /// True when this call should take the quantized kernels: the int8
    /// path is engaged ([`QuantState::engaged`]) and the geometry is a
    /// stride-1 "same" convolution — `pad_left + pad_right + 1 == len`
    /// makes the padded width equal `w + ℓ − 1`, so every output column
    /// reads ℓ consecutive padded columns and the whole layer runs as ℓ
    /// offset walks over one interleaved buffer. Every convolution in the
    /// study's architectures satisfies this; a layer that does not simply
    /// stays f32 (mixed precision is sound because the int8 path
    /// dequantizes at layer boundaries anyway).
    fn int8_eligible(&self, w: usize) -> bool {
        self.quant.engaged()
            && self.stride == 1
            && self.pad_left + self.pad_right + 1 == self.len
            && w >= self.len
    }

    /// Quantizes the weights for the int8 path: per-output-channel
    /// symmetric scales over the **full** `c_in·ℓ` row, then one packed
    /// `c_out × c_in` matrix per kernel tap sharing those scales.
    fn quantize_weights(&self) -> QuantConv {
        let (c_out, c_in, l) = (self.c_out, self.c_in, self.len);
        let wd = self.weight.value.data();
        let scales: Vec<f32> = (0..c_out)
            .map(|co| {
                let row = &wd[co * c_in * l..(co + 1) * c_in * l];
                weight_scale(row.iter().fold(0.0f32, |a, v| a.max(v.abs())))
            })
            .collect();
        let taps: Vec<QuantizedWeights> = (0..l)
            .map(|li| {
                QuantizedWeights::from_rows_with_scales(c_out, c_in, &scales, |co, ci| {
                    wd[(co * c_in + ci) * l + li]
                })
            })
            .collect();
        let corr: Vec<i32> = (0..c_out)
            .map(|co| taps.iter().map(|t| t.corr()[co]).sum())
            .collect();
        QuantConv {
            taps,
            corr,
            scales,
            version: self.weight_version,
        }
    }

    /// Quantized inference forward: quantize each sample's planes once
    /// into a zero-point-padded interleaved byte buffer, run one
    /// [`qgemm_i32`] per kernel tap per `H`-row into a shared i32
    /// accumulator (taps differ only in their column offset into the same
    /// buffer), then dequantize + bias into the arena-backed f32 output.
    ///
    /// Unlike the f32 taps path there are no row-boundary corrections:
    /// each `H`-row gets its own padded columns (value = zero point ⇒
    /// exactly zero contribution), so a tap shift can never read a
    /// neighbor row's values.
    fn forward_eval_int8(&mut self, x: Tensor, arena: &mut BatchArena) -> Tensor {
        let (n, h, w) = self.check_input(&x);
        debug_assert_eq!(self.out_width(w), w);
        let (c_out, c_in, l, pl) = (self.c_out, self.c_in, self.len, self.pad_left);
        let s_act = self
            .quant
            .act_scale
            .expect("int8 path requires calibration");
        let inv_s = 1.0 / s_act;
        if self
            .qweights
            .as_ref()
            .is_none_or(|q| q.version != self.weight_version)
        {
            self.qweights = Some(self.quantize_weights());
        }
        let hw = h * w;
        let g4 = k_groups(c_in);
        let wp = w + l - 1; // pl + pr + 1 == l ⇒ padded width
        let qx_len = g4 * h * wp * 4;
        self.qx.clear();
        self.qx.resize(qx_len, ACT_ZERO_POINT as u8);
        self.qacc.resize(c_out * w, 0);
        let mut out_buf = arena.take(n * c_out * hw);
        let xd = x.data();
        let bd = self.bias.value.data();
        let qc = self.qweights.as_ref().expect("just built");
        for si in 0..n {
            let xs = &xd[si * c_in * hw..(si + 1) * c_in * hw];
            if si > 0 {
                self.qx.fill(ACT_ZERO_POINT as u8);
            }
            for ci in 0..c_in {
                let (g, lane) = (ci / 4, ci % 4);
                for hi in 0..h {
                    let src = &xs[ci * hw + hi * w..ci * hw + hi * w + w];
                    let base = ((g * h + hi) * wp + pl) * 4 + lane;
                    quantize_lane_into(src, inv_s, &mut self.qx[base..]);
                }
            }
            let y = &mut out_buf[si * c_out * hw..(si + 1) * c_out * hw];
            for hi in 0..h {
                for (li, tap) in qc.taps.iter().enumerate() {
                    qgemm_i32(
                        tap,
                        &self.qx[hi * wp * 4..],
                        h * wp * 4,
                        li,
                        w,
                        &mut self.qacc,
                        w,
                        li != 0,
                    );
                }
                for co in 0..c_out {
                    dequantize_row(
                        &self.qacc[co * w..(co + 1) * w],
                        qc.corr[co],
                        qc.scales[co] * s_act,
                        bd[co],
                        &mut y[co * hw + hi * w..co * hw + hi * w + w],
                    );
                }
            }
        }
        arena.recycle(x);
        Tensor::from_vec(out_buf, &[n, c_out, h, w]).expect("conv int8 eval shape")
    }

    fn backward_im2col(
        &mut self,
        x: &Tensor,
        grad_out: &Tensor,
        n: usize,
        h: usize,
        w: usize,
        wo: usize,
    ) -> Tensor {
        let geom = self.geom(h, w, wo);
        let col_len = geom.col_len();
        let threads = sample_threads(n);
        if self.scratch.len() < threads * 2 * col_len {
            self.scratch.resize(threads * 2 * col_len, 0.0);
        }
        let (c_out, c_in) = (self.c_out, self.c_in);
        let (col_rows, col_cols) = (geom.col_rows(), geom.col_cols());
        let sample_in = c_in * h * w;
        let sample_out = c_out * h * wo;
        let w_len = c_out * col_rows;
        let mut grad_x = Tensor::zeros(&[n, c_in, h, w]);
        let xd = x.data();
        let gd = grad_out.data();
        let wd = self.weight.value.data();

        // One pass per sample serves all three gradients: the patch matrix P
        // feeds dW += G·Pᵀ, then the same scratch pair holds dP = Wᵀ·G for
        // the col2im scatter back onto grad_x.
        let run = |range: std::ops::Range<usize>,
                   gx_chunk: &mut [f32],
                   scratch: &mut [f32]|
         -> Vec<f32> {
            let (p_cols, d_cols) = scratch.split_at_mut(col_len);
            let mut acc = vec![0.0f32; w_len + c_out];
            for (i, si) in range.enumerate() {
                let x_sample = &xd[si * sample_in..(si + 1) * sample_in];
                let g_sample = &gd[si * sample_out..(si + 1) * sample_out];
                im2col(&geom, x_sample, p_cols);
                let (aw, ab) = acc.split_at_mut(w_len);
                gemm_nt(c_out, col_cols, col_rows, g_sample, p_cols, aw, true);
                for (co, b) in ab.iter_mut().enumerate() {
                    *b += g_sample[co * col_cols..(co + 1) * col_cols]
                        .iter()
                        .sum::<f32>();
                }
                gemm_tn(col_rows, c_out, col_cols, wd, g_sample, d_cols, false);
                col2im_acc(
                    &geom,
                    d_cols,
                    &mut gx_chunk[i * sample_in..(i + 1) * sample_in],
                );
            }
            acc
        };

        let partials: Vec<Vec<f32>> = if threads <= 1 {
            vec![run(
                0..n,
                grad_x.data_mut(),
                &mut self.scratch[..2 * col_len],
            )]
        } else {
            let ranges = split_ranges(n, threads);
            std::thread::scope(|sc| {
                let mut gx_rest = grad_x.data_mut();
                let mut scratch_rest = &mut self.scratch[..];
                let mut handles = Vec::with_capacity(ranges.len());
                for range in ranges {
                    let (gx_chunk, g_tail) = gx_rest.split_at_mut(range.len() * sample_in);
                    gx_rest = g_tail;
                    let (scratch, s_tail) = scratch_rest.split_at_mut(2 * col_len);
                    scratch_rest = s_tail;
                    let run = &run;
                    handles.push(sc.spawn(move || run(range, gx_chunk, scratch)));
                }
                handles
                    .into_iter()
                    .map(|h| h.join().expect("conv worker panicked"))
                    .collect()
            })
        };

        for acc in partials {
            for (g, a) in self.weight.grad.data_mut().iter_mut().zip(&acc[..w_len]) {
                *g += a;
            }
            for (g, a) in self.bias.grad.data_mut().iter_mut().zip(&acc[w_len..]) {
                *g += a;
            }
        }
        grad_x
    }
}

impl Layer for Conv2dRows {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let (n, h, w) = self.check_input(x);
        if self.quant.calibrating && !train {
            self.quant
                .record(x.data().iter().fold(0.0f32, |a, v| a.max(v.abs())));
        }
        let wo = self.out_width(w);
        let out = match self.resolve(h, wo) {
            ConvStrategy::Im2col => self.forward_im2col(x, n, h, w, wo),
            ConvStrategy::Fft => self.forward_fft(x, n, h, w, wo),
            _ => self.forward_direct(x, n, h, w, wo),
        };
        if train {
            self.cache_x = Some(x.clone());
        }
        out
    }

    fn forward_eval(&mut self, x: Tensor, arena: &mut BatchArena) -> Tensor {
        let (_, h, w) = self.check_input(&x);
        if self.quant.calibrating {
            self.quant
                .record(x.data().iter().fold(0.0f32, |a, v| a.max(v.abs())));
        }
        if self.int8_eligible(w) {
            return self.forward_eval_int8(x, arena);
        }
        let wo = self.out_width(w);
        match self.resolve(h, wo) {
            ConvStrategy::Im2col => {
                if self.stride == 1 && wo == w && w >= self.len {
                    self.forward_eval_taps(x, arena)
                } else {
                    self.forward_eval_fused(x, arena)
                }
            }
            ConvStrategy::Fft => self.forward_eval_fft(x, arena),
            _ => {
                let y = self.forward(&x, false);
                arena.recycle(x);
                y
            }
        }
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self
            .cache_x
            .take()
            .expect("backward without cached forward");
        let (n, h, w) = self.check_input(&x);
        let wo = self.out_width(w);
        assert_eq!(
            grad_out.dims(),
            &[n, self.c_out, h, wo],
            "grad_out shape mismatch"
        );
        match self.resolve(h, wo) {
            ConvStrategy::Im2col => self.backward_im2col(&x, grad_out, n, h, w, wo),
            ConvStrategy::Fft => self.backward_fft(&x, grad_out, n, h, w, wo),
            _ => self.backward_direct(&x, grad_out, n, h, w, wo),
        }
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        // Assume the visitor mutates: optimizer steps, checkpoint restores
        // and `copy_params` all arrive here, and a spurious bump only costs
        // one spectra recompute on the next fft-strategy call.
        self.weight_version = self.weight_version.wrapping_add(1);
        f(&mut self.weight);
        f(&mut self.bias);
    }

    fn visit_convs(&mut self, f: &mut dyn FnMut(&mut Conv2dRows)) {
        f(self);
    }

    fn visit_quant(&mut self, f: &mut dyn FnMut(&mut QuantState)) {
        f(&mut self.quant);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_shape_same_padding() {
        let mut rng = SeededRng::new(0);
        let mut conv = Conv2dRows::same(3, 5, 3, &mut rng);
        let x = Tensor::zeros(&[2, 3, 4, 10]);
        let y = conv.forward(&x, false);
        assert_eq!(y.dims(), &[2, 5, 4, 10]);
    }

    #[test]
    fn output_shape_stride_two() {
        let mut rng = SeededRng::new(0);
        let mut conv = Conv2dRows::new(1, 2, 4, 2, 0, &mut rng);
        let x = Tensor::zeros(&[1, 1, 1, 12]);
        let y = conv.forward(&x, false);
        // (12 - 4) / 2 + 1 = 5
        assert_eq!(y.dims(), &[1, 2, 1, 5]);
    }

    #[test]
    fn known_convolution_values() {
        // 1 in-channel, 1 out-channel, kernel [1, 2, 3], no padding.
        let mut rng = SeededRng::new(0);
        let mut conv = Conv2dRows::new(1, 1, 3, 1, 0, &mut rng);
        conv.weight.value = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 1, 3]).unwrap();
        conv.bias.value = Tensor::from_vec(vec![0.5], &[1]).unwrap();
        let x = Tensor::from_vec(vec![1.0, 0.0, 2.0, 1.0], &[1, 1, 1, 4]).unwrap();
        let y = conv.forward(&x, false);
        // [1*1 + 0*2 + 2*3, 0*1 + 2*2 + 1*3] + 0.5 = [7.5, 7.5]
        assert_eq!(y.data(), &[7.5, 7.5]);
    }

    #[test]
    fn rows_do_not_mix() {
        // With two rows, zeroing one row of input must zero that output row
        // only (bias set to zero). Tolerance instead of exact zero: the fft
        // strategy packs two real rows per complex transform, and the
        // Hermitian split of an all-zero row paired with a nonzero one
        // leaves ~1e-19 cancellation residue — noise, not leakage.
        let mut rng = SeededRng::new(1);
        let mut conv = Conv2dRows::same(1, 1, 3, &mut rng);
        conv.bias.value.fill(0.0);
        let mut x = Tensor::zeros(&[1, 1, 2, 6]);
        for w in 0..6 {
            x.set(&[0, 0, 1, w], 1.0).unwrap(); // only row 1 nonzero
        }
        let y = conv.forward(&x, false);
        for w in 0..6 {
            assert!(y.at(&[0, 0, 0, w]).unwrap().abs() < 1e-6, "row 0 leaked");
            assert!(
                y.at(&[0, 0, 1, w]).unwrap().abs() > 1e-3,
                "row 1 lost signal"
            );
        }
    }

    #[test]
    fn channels_are_reduced() {
        // Both input channels must contribute to the single output channel.
        let mut rng = SeededRng::new(2);
        let mut conv = Conv2dRows::new(2, 1, 1, 1, 0, &mut rng);
        conv.weight.value = Tensor::from_vec(vec![1.0, 10.0], &[1, 2, 1]).unwrap();
        conv.bias.value.fill(0.0);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 2, 1, 2]).unwrap();
        let y = conv.forward(&x, false);
        // out[w] = 1*x0[w] + 10*x1[w]
        assert_eq!(y.data(), &[31.0, 42.0]);
    }

    #[test]
    fn same_padding_preserves_width_for_even_kernels() {
        // Regression: ResNet uses kernel 8; symmetric len/2 padding grew the
        // output by one column and broke residual adds.
        let mut rng = SeededRng::new(9);
        for len in [2usize, 3, 4, 5, 8] {
            let mut conv = Conv2dRows::same(1, 1, len, &mut rng);
            let x = Tensor::zeros(&[1, 1, 1, 13]);
            let y = conv.forward(&x, false);
            assert_eq!(y.dims(), &[1, 1, 1, 13], "kernel {len}");
        }
    }

    #[test]
    fn backward_requires_forward() {
        let mut rng = SeededRng::new(3);
        let mut conv = Conv2dRows::same(1, 1, 3, &mut rng);
        let g = Tensor::zeros(&[1, 1, 1, 4]);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            conv.backward(&g);
        }));
        assert!(result.is_err());
    }

    #[test]
    fn strategies_agree_on_forward_and_gradients() {
        // Full equivalence sweep lives in tests/conv_strategies.rs; this is
        // the smoke check that both paths are actually wired in.
        let mut rng = SeededRng::new(4);
        let x = Tensor::uniform(&[3, 4, 2, 17], -1.0, 1.0, &mut rng);
        let g = Tensor::uniform(&[3, 6, 2, 17], -1.0, 1.0, &mut rng);
        let mut results = Vec::new();
        for strategy in [
            ConvStrategy::Direct,
            ConvStrategy::Im2col,
            ConvStrategy::Fft,
        ] {
            let mut rng_c = SeededRng::new(7);
            let mut conv = Conv2dRows::same(4, 6, 5, &mut rng_c);
            conv.set_strategy(strategy);
            let y = conv.forward(&x, true);
            let gx = conv.backward(&g);
            results.push((y, gx, conv.weight.grad.clone(), conv.bias.grad.clone()));
        }
        let (y_d, gx_d, gw_d, gb_d) = &results[0];
        for (name, (y, gx, gw, gb)) in ["im2col", "fft"].iter().zip(&results[1..]) {
            assert!(y_d.allclose(y, 1e-4), "{name} forward mismatch");
            assert!(gx_d.allclose(gx, 1e-4), "{name} grad-input mismatch");
            assert!(gw_d.allclose(gw, 1e-3), "{name} grad-weight mismatch");
            assert!(gb_d.allclose(gb, 1e-3), "{name} grad-bias mismatch");
        }
    }

    #[test]
    fn forward_eval_matches_forward() {
        use crate::arena::BatchArena;
        let mut rng = SeededRng::new(11);
        let x = Tensor::uniform(&[5, 4, 3, 33], -1.0, 1.0, &mut rng);
        for strategy in [
            ConvStrategy::Direct,
            ConvStrategy::Im2col,
            ConvStrategy::Fft,
        ] {
            let mut conv = Conv2dRows::same(4, 6, 5, &mut SeededRng::new(7));
            conv.bias.value = Tensor::uniform(&[6], -0.5, 0.5, &mut rng);
            conv.set_strategy(strategy);
            let want = conv.forward(&x, false);
            let mut arena = BatchArena::new();
            let got = conv.forward_eval(x.clone(), &mut arena);
            assert!(got.allclose(&want, 1e-5), "{strategy:?} first call");
            assert!(arena.pooled() > 0, "input buffer was not recycled");
            // Steady state: pooled buffers are reused, result unchanged.
            let got2 = conv.forward_eval(x.clone(), &mut arena);
            assert!(got2.allclose(&want, 1e-5), "{strategy:?} second call");
        }
    }

    #[test]
    fn int8_eval_tracks_f32_within_quantization_error() {
        use crate::arena::BatchArena;
        use crate::quant::Precision;
        let mut rng = SeededRng::new(21);
        // Odd and even kernels, multi-row planes, multi-sample batch.
        for len in [3usize, 4, 5] {
            let x = Tensor::uniform(&[3, 5, 4, 19], -1.2, 1.2, &mut rng);
            let mut conv = Conv2dRows::same(5, 7, len, &mut SeededRng::new(13));
            conv.bias.value = Tensor::uniform(&[7], -0.3, 0.3, &mut rng);
            let want = conv.forward(&x, false);

            conv.visit_quant(&mut |q| {
                q.precision = Precision::Int8;
                q.calibrating = true;
            });
            let mut arena = BatchArena::new();
            let _ = conv.forward_eval(x.clone(), &mut arena);
            conv.visit_quant(&mut |q| q.finish_calibration());
            assert!(conv.int8_eligible(19), "same conv must be eligible");

            let got = conv.forward_eval(x.clone(), &mut arena);
            assert_eq!(got.dims(), want.dims());
            let worst = got
                .data()
                .iter()
                .zip(want.data())
                .fold(0.0f32, |a, (x, y)| a.max((x - y).abs()));
            assert!(worst < 0.08, "len={len}: worst abs error {worst}");
            // Steady state reuses the quantized weights + scratch.
            let got2 = conv.forward_eval(x.clone(), &mut arena);
            assert!(
                got2.allclose(&got, 0.0),
                "len={len}: int8 must be deterministic"
            );
        }
    }

    #[test]
    fn int8_path_disengages_for_non_same_geometry() {
        use crate::quant::Precision;
        let mut rng = SeededRng::new(22);
        // Strided conv: not eligible, silently stays f32.
        let mut conv = Conv2dRows::new(3, 4, 5, 2, 2, &mut SeededRng::new(5));
        conv.visit_quant(&mut |q| {
            q.precision = Precision::Int8;
            q.act_scale = Some(0.01);
        });
        assert!(!conv.int8_eligible(32));
        let x = Tensor::uniform(&[2, 3, 3, 32], -1.0, 1.0, &mut rng);
        let want = conv.forward(&x, false);
        let mut arena = crate::arena::BatchArena::new();
        let got = conv.forward_eval(x, &mut arena);
        assert!(got.allclose(&want, 1e-5));
    }

    #[test]
    fn forward_eval_taps_handles_even_kernels_and_single_row() {
        use crate::arena::BatchArena;
        let mut rng = SeededRng::new(13);
        // Even kernel → asymmetric same-padding; h = 1 has no row
        // boundaries; h = 5 exercises the wrap corrections; kernel 8 is the
        // ResNet tap count (shift reaches 4 columns past the row edge).
        for (c_in, c_out, len, h, w) in [
            (3usize, 5usize, 4usize, 5usize, 19usize),
            (2, 4, 8, 1, 21),
            (4, 8, 8, 6, 16),
        ] {
            let x = Tensor::uniform(&[3, c_in, h, w], -1.0, 1.0, &mut rng);
            let mut conv = Conv2dRows::same(c_in, c_out, len, &mut SeededRng::new(14));
            conv.set_strategy(ConvStrategy::Im2col);
            let want = conv.forward(&x, false);
            let mut arena = BatchArena::new();
            let got = conv.forward_eval(x, &mut arena);
            assert!(
                got.allclose(&want, 1e-5),
                "c_in {c_in} c_out {c_out} len {len} h {h} w {w}"
            );
        }
    }

    #[test]
    fn forward_eval_handles_stride_and_asymmetric_padding() {
        use crate::arena::BatchArena;
        let mut rng = SeededRng::new(12);
        let x = Tensor::uniform(&[2, 3, 2, 21], -1.0, 1.0, &mut rng);
        let mut conv = Conv2dRows::with_padding(3, 5, 4, 2, 1, 3, &mut SeededRng::new(8));
        conv.set_strategy(ConvStrategy::Im2col);
        let want = conv.forward(&x, false);
        let mut arena = BatchArena::new();
        let got = conv.forward_eval(x, &mut arena);
        assert!(got.allclose(&want, 1e-5));
    }

    #[test]
    fn fft_kernel_spectra_cache_tracks_weight_mutations() {
        use crate::arena::BatchArena;
        let mut rng = SeededRng::new(21);
        let x = Tensor::uniform(&[2, 3, 2, 40], -1.0, 1.0, &mut rng);
        let mut conv = Conv2dRows::same(3, 4, 5, &mut SeededRng::new(22));
        conv.set_strategy(ConvStrategy::Fft);
        let mut arena = BatchArena::new();
        let y1 = conv.forward_eval(x.clone(), &mut arena);
        // Unchanged weights: the cached spectra are reused bit-for-bit.
        let y2 = conv.forward_eval(x.clone(), &mut arena);
        assert_eq!(y1.data(), y2.data(), "cached call must be deterministic");
        // Mutating params through visit_params — the optimizer / checkpoint
        // / copy_params path — must invalidate the cache.
        conv.visit_params(&mut |p| p.value.scale_in_place(2.0));
        let y3 = conv.forward_eval(x.clone(), &mut arena);
        let mut fresh = Conv2dRows::same(3, 4, 5, &mut SeededRng::new(22));
        fresh.visit_params(&mut |p| p.value.scale_in_place(2.0));
        fresh.set_strategy(ConvStrategy::Fft);
        let want = fresh.forward(&x, false);
        assert!(y3.allclose(&want, 1e-5), "stale kernel spectra were served");
    }

    #[test]
    fn auto_heuristic_picks_by_size() {
        let mut rng = SeededRng::new(5);
        let small = Conv2dRows::same(1, 4, 3, &mut rng);
        let big = Conv2dRows::same(16, 32, 3, &mut rng);
        let long = Conv2dRows::same(1, 8, 63, &mut rng);
        match std::env::var("DCAM_CONV_STRATEGY").as_deref() {
            // The CI matrix pins Auto layers globally; the heuristic is not
            // reachable then — assert the pin wins for every geometry.
            Ok("direct") => {
                for conv in [&small, &big, &long] {
                    assert_eq!(conv.resolve(1, 64), ConvStrategy::Direct);
                }
            }
            Ok("im2col") => {
                for conv in [&small, &big, &long] {
                    assert_eq!(conv.resolve(1, 64), ConvStrategy::Im2col);
                }
            }
            Ok("fft") => {
                for conv in [&small, &big, &long] {
                    assert_eq!(conv.resolve(1, 64), ConvStrategy::Fft);
                }
            }
            _ => {
                // Tiny kernel / tiny plane -> direct; wide channel-tap
                // product and plane -> im2col; long series with a long
                // kernel -> fft.
                assert_eq!(small.resolve(1, 8), ConvStrategy::Direct);
                assert_eq!(big.resolve(16, 64), ConvStrategy::Im2col);
                assert_eq!(long.resolved_strategy(1, 32768), ConvStrategy::Fft);
                // ...but the same long kernel on a short series stays on
                // the O(W·ℓ) paths.
                assert_ne!(long.resolved_strategy(1, 128), ConvStrategy::Fft);
            }
        }
    }

    #[test]
    fn strategy_parser_accepts_known_values() {
        assert_eq!(ConvStrategy::parse("auto"), ConvStrategy::Auto);
        assert_eq!(ConvStrategy::parse("direct"), ConvStrategy::Direct);
        assert_eq!(ConvStrategy::parse("im2col"), ConvStrategy::Im2col);
        assert_eq!(ConvStrategy::parse("fft"), ConvStrategy::Fft);
    }

    #[test]
    fn strategy_parser_panics_on_unknown_values() {
        for bad in ["ffft", "IM2COL", "winograd", ""] {
            let result = std::panic::catch_unwind(|| ConvStrategy::parse(bad));
            let err = result.expect_err("parse must reject {bad:?}");
            let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
            assert!(
                msg.contains("unknown DCAM_CONV_STRATEGY") && msg.contains("im2col"),
                "panic message must name the variable and the valid values, got {msg:?}"
            );
        }
    }
}
