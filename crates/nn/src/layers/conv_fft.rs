//! The `fft` convolution strategy: O(W log B) row convolutions for
//! long-series workloads, via overlap-save block transforms.
//!
//! Every other strategy in this crate (direct, im2col+GEMM, shift-GEMM) does
//! O(W·ℓ) work per output row; once series run into the tens of thousands of
//! samples the FFT identity `conv(x, k) = IFFT(FFT(x) · FFT(k̃))` wins
//! decisively. A single full-length transform would be O(W log W) on paper
//! but memory-bound in practice — every radix-2 stage streams the whole
//! multi-megabyte lane buffer through the cache hierarchy. The driver here
//! uses **overlap-save** instead: the series is cut into segments of a
//! fixed, cache-resident block length `B ≫ ℓ`, each segment is convolved
//! circularly against the kernel spectra, and the `ℓ − 1` leading samples of
//! every block (contaminated by wraparound) are discarded by reading the
//! inverse transform at offset `ℓ − 1`. Work drops to O(W log B) with every
//! transform buffer sized to fit L1/L2, and when the series is short the
//! block length clamps to the full transform length, so the same code path
//! serves every geometry.
//!
//! One `Conv2dRows` forward becomes:
//!
//! 1. stage all `C_in·H` input rows into overlapping `B`-long segments
//!    (zero-clipped at the series edges, which also implements the layer's
//!    left/right padding),
//! 2. one batched real-input FFT over all segments of all rows ([`FftPlan`]
//!    advances [`dcam_tensor::FFT_LANES`] transforms together),
//! 3. per-(out-channel, in-channel) pointwise multiply-accumulates against
//!    the kernel spectra — cached across calls keyed on the layer's weight
//!    version and the transform length, so the permutation engine's
//!    mega-batches (and every batch between optimizer steps) reuse them;
//!    any weight mutation through `visit_params` bumps the version and
//!    forces a recompute,
//! 4. one batched inverse FFT whose offset/stride read (`t0 = ℓ−1`, step
//!    `stride`) drops each block's wraparound head and subsamples strided
//!    convolutions straight out of the frequency domain.
//!
//! The backward pass runs through the same transforms: `grad_x` is the
//! plain convolution of the (zero-upsampled, for stride > 1) output
//! gradient with the kernel, and `grad_w` is a correlation — a conjugate
//! multiply in the frequency domain — accumulated **in the frequency
//! domain** across all blocks, rows and samples, so the whole batch pays a
//! single extra inverse transform per (c_out, c_in) pair. Correctness of
//! the block/offset arithmetic is pinned to the direct path by
//! `tests/conv_strategies.rs` across strides, asymmetric padding and
//! non-power-of-two lengths.

use super::im2col::{sample_threads, split_ranges};
use dcam_tensor::{next_pow2, spectra_mul_acc, spectra_mul_conj_acc, FftPlan, FftScratch};

/// Geometry of one fft-strategy convolution call.
#[derive(Clone, Copy)]
pub(super) struct FftGeom {
    pub c_in: usize,
    pub c_out: usize,
    /// Kernel temporal extent ℓ.
    pub l: usize,
    /// Stride.
    pub s: usize,
    /// Left padding.
    pub pl: usize,
    /// Rows per channel plane.
    pub h: usize,
    /// Input temporal length.
    pub w: usize,
    /// Output temporal length.
    pub wo: usize,
}

impl FftGeom {
    /// Overlap-save block (= transform) length: big enough to amortize the
    /// `ℓ − 1` overlap (≥ 4ℓ) while staying cache-resident, clamped to the
    /// full-length transform when the series itself is short. The full
    /// length covers the longer of the forward linear convolution
    /// (`w + ℓ − 1`) and the upsampled-gradient convolution
    /// (`(wo−1)·s + ℓ`).
    fn block_len(&self) -> usize {
        let full = next_pow2((self.w + self.l - 1).max((self.wo - 1) * self.s + self.l));
        next_pow2((4 * self.l).max(1024)).min(full)
    }

    /// Length of the zero-upsampled output gradient (`= wo` when s == 1).
    fn gu_len(&self) -> usize {
        (self.wo - 1) * self.s + 1
    }
}

/// Stage overlap-save segments: destination row `(r, j)` receives
/// `src_row(r)[j·step + off .. j·step + off + seg]`, zero-filled wherever
/// the window falls outside `[0, src_len)` — which is exactly how the
/// convolution treats samples beyond the series edges (padding).
#[allow(clippy::too_many_arguments)]
fn stage_blocks(
    src: &[f32],
    rows: usize,
    src_len: usize,
    nb: usize,
    step: usize,
    off: isize,
    seg: usize,
    dst: &mut [f32],
) {
    for r in 0..rows {
        let s_row = &src[r * src_len..(r + 1) * src_len];
        for j in 0..nb {
            let d = &mut dst[(r * nb + j) * seg..(r * nb + j + 1) * seg];
            let start = (j * step) as isize + off;
            d.fill(0.0);
            let lo = (-start).max(0) as usize;
            let hi = (src_len as isize - start).clamp(0, seg as isize) as usize;
            if lo < hi {
                let sbase = (start + lo as isize) as usize;
                d[lo..hi].copy_from_slice(&s_row[sbase..sbase + (hi - lo)]);
            }
        }
    }
}

/// Stage overlap-save segments of the *zero-upsampled* output gradient
/// (`gu[q] = g[q/s]` when `s | q`, else 0) without materializing it:
/// destination row `(r, j)` covers `gu[j·step + off .. + seg]`.
#[allow(clippy::too_many_arguments)]
fn stage_upsampled(
    g: &[f32],
    rows: usize,
    wo: usize,
    s: usize,
    nb: usize,
    step: usize,
    off: isize,
    seg: usize,
    dst: &mut [f32],
) {
    for r in 0..rows {
        let g_row = &g[r * wo..(r + 1) * wo];
        for j in 0..nb {
            let d = &mut dst[(r * nb + j) * seg..(r * nb + j + 1) * seg];
            let start = (j * step) as isize + off;
            d.fill(0.0);
            // Scatter gu indices q = wi·s with q − start ∈ [0, seg).
            let wi_lo = if start <= 0 {
                0
            } else {
                (start as usize).div_ceil(s)
            };
            let last = start + seg as isize - 1;
            if last < 0 {
                continue;
            }
            let wi_hi = (last as usize / s + 1).min(wo);
            for wi in wi_lo..wi_hi {
                d[(wi as isize * s as isize - start) as usize] = g_row[wi];
            }
        }
    }
}

/// Per-thread transform state: FFT lane buffers, segment staging, the
/// spectra of the rows this thread is working on, and the time-domain
/// landing strip for inverse transforms (whose uniform block rows are then
/// copied into the caller's ragged output rows).
#[derive(Default)]
struct ThreadScratch {
    fft: FftScratch,
    stage: Vec<f32>,
    x_re: Vec<f32>,
    x_im: Vec<f32>,
    y_re: Vec<f32>,
    y_im: Vec<f32>,
    /// Per-thread frequency-domain weight-gradient accumulators,
    /// `c_out·c_in × bins` (backward only).
    w_re: Vec<f32>,
    w_im: Vec<f32>,
    time: Vec<f32>,
}

fn grow(buf: &mut Vec<f32>, need: usize) {
    if buf.len() < need {
        buf.resize(need, 0.0);
    }
}

/// The fft-strategy execution state owned by one `Conv2dRows`.
///
/// Holds the cached transform plan for the layer's geometry, the kernel
/// spectra (cached across calls, keyed on the owning layer's weight version
/// and the transform length — every external weight mutation flows through
/// `visit_params`, which bumps the version, so the cache can never go stale
/// across optimizer steps, checkpoint loads or `copy_params`), per-thread
/// scratch, and the reduced frequency-domain weight-gradient accumulators.
pub(super) struct FftConv {
    plan: Option<FftPlan>,
    /// Spectra of the *time-reversed* kernels, `c_out·c_in × bins`
    /// (forward: product = sliding dot product).
    k_re: Vec<f32>,
    k_im: Vec<f32>,
    /// `(weight_version, transform_len)` the forward spectra were computed
    /// under; `None` until the first call.
    k_key: Option<(u64, usize)>,
    /// Spectra of the kernels as-is (backward `grad_x`: plain convolution
    /// with the upsampled output gradient).
    kf_re: Vec<f32>,
    kf_im: Vec<f32>,
    /// `(weight_version, transform_len)` key for the backward spectra.
    kf_key: Option<(u64, usize)>,
    /// Cross-thread reduction of the per-thread `w_re`/`w_im` partials.
    wacc_re: Vec<f32>,
    wacc_im: Vec<f32>,
    scratch: Vec<ThreadScratch>,
}

impl FftConv {
    pub(super) fn new() -> Self {
        FftConv {
            plan: None,
            k_re: Vec::new(),
            k_im: Vec::new(),
            k_key: None,
            kf_re: Vec::new(),
            kf_im: Vec::new(),
            kf_key: None,
            wacc_re: Vec::new(),
            wacc_im: Vec::new(),
            scratch: Vec::new(),
        }
    }

    fn ensure_plan(&mut self, m: usize) {
        if self.plan.as_ref().map(FftPlan::len) != Some(m) {
            self.plan = Some(FftPlan::new(m));
        }
    }

    fn ensure_threads(&mut self, threads: usize) {
        while self.scratch.len() < threads {
            self.scratch.push(ThreadScratch::default());
        }
    }

    /// Forward convolution of `n` samples into `out` (`n × c_out·h·wo`,
    /// fully overwritten). `version` is the owning layer's weight version:
    /// the kernel spectra are reused across calls while it (and the
    /// transform length) stay unchanged.
    #[allow(clippy::too_many_arguments)]
    pub(super) fn forward(
        &mut self,
        g: &FftGeom,
        n: usize,
        version: u64,
        weight: &[f32],
        bias: &[f32],
        x: &[f32],
        out: &mut [f32],
    ) {
        let m = g.block_len();
        self.ensure_plan(m);
        let threads = sample_threads(n);
        self.ensure_threads(threads.max(1));
        let bins = m / 2 + 1;
        let k_rows = g.c_out * g.c_in;
        let plan = self.plan.as_ref().expect("plan ensured above");
        if self.k_key != Some((version, m)) {
            grow(&mut self.k_re, k_rows * bins);
            grow(&mut self.k_im, k_rows * bins);
            plan.real_spectra_into(
                weight,
                k_rows,
                g.l,
                true,
                &mut self.k_re,
                &mut self.k_im,
                &mut self.scratch[0].fft,
            );
            self.k_key = Some((version, m));
        }

        // Block j of an output row covers wi ∈ [j·vo, (j+1)·vo); its input
        // segment starts at j·vo·s − pad_left and the block's valid samples
        // sit at circular positions (wi − j·vo)·s + ℓ − 1.
        let vo = (m - g.l) / g.s + 1;
        let nb = g.wo.div_ceil(vo);
        let sample_in = g.c_in * g.h * g.w;
        let sample_out = g.c_out * g.h * g.wo;
        let (k_re, k_im) = (&self.k_re, &self.k_im);
        let geom = *g;

        let run = |range: std::ops::Range<usize>, out_chunk: &mut [f32], ts: &mut ThreadScratch| {
            let g = &geom;
            let x_rows = g.c_in * g.h * nb;
            let y_rows = g.c_out * g.h * nb;
            grow(&mut ts.stage, x_rows * m);
            grow(&mut ts.x_re, x_rows * bins);
            grow(&mut ts.x_im, x_rows * bins);
            grow(&mut ts.y_re, y_rows * bins);
            grow(&mut ts.y_im, y_rows * bins);
            grow(&mut ts.time, y_rows * vo);
            for (i, si) in range.enumerate() {
                let xs = &x[si * sample_in..(si + 1) * sample_in];
                stage_blocks(
                    xs,
                    g.c_in * g.h,
                    g.w,
                    nb,
                    vo * g.s,
                    -(g.pl as isize),
                    m,
                    &mut ts.stage,
                );
                plan.real_spectra_into(
                    &ts.stage,
                    x_rows,
                    m,
                    false,
                    &mut ts.x_re,
                    &mut ts.x_im,
                    &mut ts.fft,
                );
                ts.y_re[..y_rows * bins].fill(0.0);
                ts.y_im[..y_rows * bins].fill(0.0);
                for co in 0..g.c_out {
                    for ci in 0..g.c_in {
                        let ko = (co * g.c_in + ci) * bins;
                        let (kr, ki) = (&k_re[ko..ko + bins], &k_im[ko..ko + bins]);
                        for hi in 0..g.h {
                            // All nb blocks of a (channel, row) pair are
                            // contiguous; the kernel spectrum repeats.
                            for j in 0..nb {
                                let xo = ((ci * g.h + hi) * nb + j) * bins;
                                let yo = ((co * g.h + hi) * nb + j) * bins;
                                spectra_mul_acc(
                                    &ts.x_re[xo..xo + bins],
                                    &ts.x_im[xo..xo + bins],
                                    kr,
                                    ki,
                                    &mut ts.y_re[yo..yo + bins],
                                    &mut ts.y_im[yo..yo + bins],
                                );
                            }
                        }
                    }
                }
                plan.real_inverse_into(
                    &ts.y_re,
                    &ts.y_im,
                    y_rows,
                    &mut ts.time,
                    vo,
                    g.l - 1,
                    g.s,
                    &mut ts.fft,
                );
                let y = &mut out_chunk[i * sample_out..(i + 1) * sample_out];
                for row in 0..g.c_out * g.h {
                    let dst = &mut y[row * g.wo..(row + 1) * g.wo];
                    for j in 0..nb {
                        let take = vo.min(g.wo - j * vo);
                        dst[j * vo..j * vo + take]
                            .copy_from_slice(&ts.time[(row * nb + j) * vo..][..take]);
                    }
                }
                for (co, &b) in bias.iter().enumerate() {
                    if b != 0.0 {
                        for v in &mut y[co * g.h * g.wo..(co + 1) * g.h * g.wo] {
                            *v += b;
                        }
                    }
                }
            }
        };

        if threads <= 1 {
            run(0..n, &mut out[..n * sample_out], &mut self.scratch[0]);
        } else {
            let ranges = split_ranges(n, threads);
            std::thread::scope(|sc| {
                let mut out_rest = &mut out[..n * sample_out];
                let mut ts_iter = self.scratch.iter_mut();
                for range in ranges {
                    let (out_chunk, tail) = out_rest.split_at_mut(range.len() * sample_out);
                    out_rest = tail;
                    let ts = ts_iter.next().expect("scratch sized to thread count");
                    let run = &run;
                    sc.spawn(move || run(range, out_chunk, ts));
                }
            });
        }
    }

    /// Backward pass: writes the input gradient into `gx` (`n × c_in·h·w`,
    /// fully overwritten) and **accumulates** into the weight and bias
    /// gradients.
    #[allow(clippy::too_many_arguments)]
    pub(super) fn backward(
        &mut self,
        g: &FftGeom,
        n: usize,
        version: u64,
        weight: &[f32],
        x: &[f32],
        grad_out: &[f32],
        gx: &mut [f32],
        gw: &mut [f32],
        gb: &mut [f32],
    ) {
        let m = g.block_len();
        self.ensure_plan(m);
        let threads = sample_threads(n);
        self.ensure_threads(threads.max(1));
        let bins = m / 2 + 1;
        let k_rows = g.c_out * g.c_in;
        let plan = self.plan.as_ref().expect("plan ensured above");
        if self.kf_key != Some((version, m)) {
            grow(&mut self.kf_re, k_rows * bins);
            grow(&mut self.kf_im, k_rows * bins);
            plan.real_spectra_into(
                weight,
                k_rows,
                g.l,
                false,
                &mut self.kf_re,
                &mut self.kf_im,
                &mut self.scratch[0].fft,
            );
            self.kf_key = Some((version, m));
        }

        // Chunk length for both backward products (stride-1 block output).
        let c_len = m - g.l + 1;
        let gu_len = g.gu_len();
        // grad_w: chunk j correlates gu[j·c .. j·c + c] against the input
        // segment starting at j·c − pad_left; lags 0..ℓ land at circular
        // positions 0..ℓ un-aliased because the chunk support is ≤ c.
        let nbw = gu_len.div_ceil(c_len);
        // grad_x: block j covers gx[j·c .. (j+1)·c); its gu segment starts
        // at j·c + pad_left − (ℓ − 1).
        let nbx = g.w.div_ceil(c_len);
        let nb_max = nbw.max(nbx);
        let sample_in = g.c_in * g.h * g.w;
        let sample_out = g.c_out * g.h * g.wo;
        let (kf_re, kf_im) = (&self.kf_re, &self.kf_im);
        let geom = *g;

        // Per-range worker: returns the bias-gradient partial; the
        // weight-gradient partial stays in the thread's frequency-domain
        // accumulator (`ts.w_re`/`ts.w_im`) for the cross-thread reduction.
        let run = |range: std::ops::Range<usize>,
                   gx_chunk: &mut [f32],
                   ts: &mut ThreadScratch|
         -> Vec<f32> {
            let g = &geom;
            let in_rows = g.c_in * g.h;
            let out_rows = g.c_out * g.h;
            grow(&mut ts.stage, in_rows.max(out_rows) * nb_max * m);
            grow(&mut ts.x_re, in_rows * nb_max * bins);
            grow(&mut ts.x_im, in_rows * nb_max * bins);
            grow(&mut ts.y_re, out_rows * nb_max * bins);
            grow(&mut ts.y_im, out_rows * nb_max * bins);
            grow(&mut ts.w_re, k_rows * bins);
            grow(&mut ts.w_im, k_rows * bins);
            grow(&mut ts.time, in_rows * nbx * c_len);
            ts.w_re[..k_rows * bins].fill(0.0);
            ts.w_im[..k_rows * bins].fill(0.0);
            let mut bias_acc = vec![0.0f32; g.c_out];
            for (i, si) in range.enumerate() {
                let xs = &x[si * sample_in..(si + 1) * sample_in];
                let gs = &grad_out[si * sample_out..(si + 1) * sample_out];
                for (co, b) in bias_acc.iter_mut().enumerate() {
                    *b += gs[co * g.h * g.wo..(co + 1) * g.h * g.wo]
                        .iter()
                        .sum::<f32>();
                }
                // --- grad_w: X_seg · conj(Gu_chunk), accumulated in the
                // frequency domain across chunks, rows and samples.
                stage_blocks(
                    xs,
                    in_rows,
                    g.w,
                    nbw,
                    c_len,
                    -(g.pl as isize),
                    m,
                    &mut ts.stage,
                );
                plan.real_spectra_into(
                    &ts.stage,
                    in_rows * nbw,
                    m,
                    false,
                    &mut ts.x_re,
                    &mut ts.x_im,
                    &mut ts.fft,
                );
                stage_upsampled(gs, out_rows, g.wo, g.s, nbw, c_len, 0, c_len, &mut ts.stage);
                plan.real_spectra_into(
                    &ts.stage,
                    out_rows * nbw,
                    c_len,
                    false,
                    &mut ts.y_re,
                    &mut ts.y_im,
                    &mut ts.fft,
                );
                for co in 0..g.c_out {
                    for ci in 0..g.c_in {
                        let wo_off = (co * g.c_in + ci) * bins;
                        let wr = &mut ts.w_re[wo_off..wo_off + bins];
                        let wi_ = &mut ts.w_im[wo_off..wo_off + bins];
                        for hi in 0..g.h {
                            for j in 0..nbw {
                                let xo = ((ci * g.h + hi) * nbw + j) * bins;
                                let yo = ((co * g.h + hi) * nbw + j) * bins;
                                spectra_mul_conj_acc(
                                    &ts.x_re[xo..xo + bins],
                                    &ts.x_im[xo..xo + bins],
                                    &ts.y_re[yo..yo + bins],
                                    &ts.y_im[yo..yo + bins],
                                    wr,
                                    wi_,
                                );
                            }
                        }
                    }
                }
                // --- grad_x: Gu_block · K_fwd (plain convolution of the
                // upsampled gradient with the kernel), read at offset ℓ−1.
                stage_upsampled(
                    gs,
                    out_rows,
                    g.wo,
                    g.s,
                    nbx,
                    c_len,
                    g.pl as isize - (g.l as isize - 1),
                    m,
                    &mut ts.stage,
                );
                plan.real_spectra_into(
                    &ts.stage,
                    out_rows * nbx,
                    m,
                    false,
                    &mut ts.y_re,
                    &mut ts.y_im,
                    &mut ts.fft,
                );
                ts.x_re[..in_rows * nbx * bins].fill(0.0);
                ts.x_im[..in_rows * nbx * bins].fill(0.0);
                for co in 0..g.c_out {
                    for ci in 0..g.c_in {
                        let ko = (co * g.c_in + ci) * bins;
                        let (kr, ki) = (&kf_re[ko..ko + bins], &kf_im[ko..ko + bins]);
                        for hi in 0..g.h {
                            for j in 0..nbx {
                                let yo = ((co * g.h + hi) * nbx + j) * bins;
                                let xo = ((ci * g.h + hi) * nbx + j) * bins;
                                spectra_mul_acc(
                                    &ts.y_re[yo..yo + bins],
                                    &ts.y_im[yo..yo + bins],
                                    kr,
                                    ki,
                                    &mut ts.x_re[xo..xo + bins],
                                    &mut ts.x_im[xo..xo + bins],
                                );
                            }
                        }
                    }
                }
                plan.real_inverse_into(
                    &ts.x_re,
                    &ts.x_im,
                    in_rows * nbx,
                    &mut ts.time,
                    c_len,
                    g.l - 1,
                    1,
                    &mut ts.fft,
                );
                let gx_sample = &mut gx_chunk[i * sample_in..(i + 1) * sample_in];
                for row in 0..in_rows {
                    let dst = &mut gx_sample[row * g.w..(row + 1) * g.w];
                    for j in 0..nbx {
                        let take = c_len.min(g.w - j * c_len);
                        dst[j * c_len..j * c_len + take]
                            .copy_from_slice(&ts.time[(row * nbx + j) * c_len..][..take]);
                    }
                }
            }
            bias_acc
        };

        let used_threads;
        let bias_partials: Vec<Vec<f32>> = if threads <= 1 {
            used_threads = 1;
            vec![run(0..n, &mut gx[..n * sample_in], &mut self.scratch[0])]
        } else {
            let ranges = split_ranges(n, threads);
            used_threads = ranges.len();
            std::thread::scope(|sc| {
                let mut gx_rest = &mut gx[..n * sample_in];
                let mut ts_iter = self.scratch.iter_mut();
                let mut handles = Vec::with_capacity(ranges.len());
                for range in ranges {
                    let (gx_chunk, tail) = gx_rest.split_at_mut(range.len() * sample_in);
                    gx_rest = tail;
                    let ts = ts_iter.next().expect("scratch sized to thread count");
                    let run = &run;
                    handles.push(sc.spawn(move || run(range, gx_chunk, ts)));
                }
                handles
                    .into_iter()
                    .map(|h| h.join().expect("fft conv worker panicked"))
                    .collect()
            })
        };

        for partial in &bias_partials {
            for (acc, p) in gb.iter_mut().zip(partial) {
                *acc += p;
            }
        }

        // Reduce the frequency-domain weight partials, then pay ONE inverse
        // transform per (c_out, c_in) pair for the whole batch; the ℓ taps
        // are the correlation's lags 0..ℓ.
        grow(&mut self.wacc_re, k_rows * bins);
        grow(&mut self.wacc_im, k_rows * bins);
        self.wacc_re[..k_rows * bins].fill(0.0);
        self.wacc_im[..k_rows * bins].fill(0.0);
        for ts in &self.scratch[..used_threads] {
            for (acc, p) in self.wacc_re[..k_rows * bins].iter_mut().zip(&ts.w_re) {
                *acc += p;
            }
            for (acc, p) in self.wacc_im[..k_rows * bins].iter_mut().zip(&ts.w_im) {
                *acc += p;
            }
        }
        let mut w_taps = vec![0.0f32; k_rows * g.l];
        plan.real_inverse_into(
            &self.wacc_re,
            &self.wacc_im,
            k_rows,
            &mut w_taps,
            g.l,
            0,
            1,
            &mut self.scratch[0].fft,
        );
        for (acc, t) in gw.iter_mut().zip(&w_taps) {
            *acc += t;
        }
    }
}
