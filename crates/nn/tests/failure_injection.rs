//! Failure-injection tests: the substrate must fail loudly and precisely on
//! contract violations, not corrupt training silently.

use dcam_nn::layers::{BatchNorm, Conv2dRows, Dense, GlobalAvgPool, Layer, Sequential};
use dcam_nn::loss::softmax_cross_entropy;
use dcam_nn::optim::{Adam, Optimizer};
use dcam_nn::trainer::{evaluate, fit, LabelledSet, TrainConfig};
use dcam_tensor::{SeededRng, Tensor};

fn catches(f: impl FnOnce()) -> bool {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)).is_err()
}

#[test]
fn conv_rejects_channel_mismatch() {
    let mut rng = SeededRng::new(0);
    let mut conv = Conv2dRows::same(3, 4, 3, &mut rng);
    assert!(catches(move || {
        conv.forward(&Tensor::zeros(&[1, 2, 1, 8]), false);
    }));
}

#[test]
fn conv_rejects_wrong_rank() {
    let mut rng = SeededRng::new(1);
    let mut conv = Conv2dRows::same(2, 2, 3, &mut rng);
    assert!(catches(move || {
        conv.forward(&Tensor::zeros(&[2, 2, 8]), false);
    }));
}

#[test]
fn conv_rejects_padding_not_below_kernel() {
    let mut rng = SeededRng::new(2);
    assert!(catches(move || {
        Conv2dRows::new(1, 1, 3, 1, 3, &mut rng);
    }));
}

#[test]
fn dense_rejects_feature_mismatch() {
    let mut rng = SeededRng::new(3);
    let mut dense = Dense::new(4, 2, &mut rng);
    assert!(catches(move || {
        dense.forward(&Tensor::zeros(&[1, 5]), false);
    }));
}

#[test]
fn batchnorm_rejects_channel_mismatch() {
    let mut bn = BatchNorm::new(3);
    assert!(catches(move || {
        bn.forward(&Tensor::zeros(&[1, 2, 1, 4]), true);
    }));
}

#[test]
fn loss_rejects_label_out_of_range() {
    let logits = Tensor::zeros(&[2, 3]);
    assert!(catches(|| {
        softmax_cross_entropy(&logits, &[0, 3]);
    }));
}

#[test]
fn loss_rejects_wrong_label_count() {
    let logits = Tensor::zeros(&[2, 3]);
    assert!(catches(|| {
        softmax_cross_entropy(&logits, &[0]);
    }));
}

#[test]
fn double_backward_is_an_error() {
    // The cache is consumed by the first backward; a second must panic, not
    // silently reuse stale activations.
    let mut rng = SeededRng::new(4);
    let mut conv = Conv2dRows::same(1, 1, 3, &mut rng);
    let x = Tensor::zeros(&[1, 1, 1, 6]);
    let y = conv.forward(&x, true);
    let _ = conv.backward(&y);
    assert!(catches(move || {
        let _ = conv.backward(&y);
    }));
}

#[test]
fn fit_rejects_empty_training_set() {
    let mut rng = SeededRng::new(5);
    let mut model = Dense::new(2, 2, &mut rng);
    let empty = LabelledSet::default();
    let cfg = TrainConfig::default();
    assert!(catches(move || {
        fit(&mut model, &mut Adam::new(0.01), &empty, None, &cfg);
    }));
}

#[test]
fn evaluate_on_empty_set_is_defined() {
    let mut rng = SeededRng::new(6);
    let mut model = Dense::new(2, 2, &mut rng);
    let (loss, acc) = evaluate(&mut model, &LabelledSet::default(), 8);
    assert_eq!(loss, 0.0);
    assert_eq!(acc, 0.0);
}

#[test]
fn optimizer_state_stays_aligned_across_steps() {
    // Two Adam steps on the same model must reuse per-parameter moments;
    // verify via the bias-corrected step shrinking when gradients flip sign.
    let mut rng = SeededRng::new(7);
    let mut model = Sequential::new()
        .push(Dense::new(2, 4, &mut rng))
        .push(Dense::new(4, 2, &mut rng));
    let mut opt = Adam::new(0.1);

    let snapshot = |m: &mut Sequential| {
        let mut v = Vec::new();
        m.visit_params(&mut |p| v.extend_from_slice(p.value.data()));
        v
    };

    model.visit_params(&mut |p| p.grad.fill(1.0));
    let before = snapshot(&mut model);
    opt.step(&mut model);
    let mid = snapshot(&mut model);
    // Opposite gradient: with momentum the second step must be smaller in
    // magnitude than a fresh first step would be.
    model.zero_grads();
    model.visit_params(&mut |p| p.grad.fill(-1.0));
    opt.step(&mut model);
    let after = snapshot(&mut model);
    let step1: f32 = before.iter().zip(&mid).map(|(a, b)| (a - b).abs()).sum();
    let step2: f32 = mid.iter().zip(&after).map(|(a, b)| (a - b).abs()).sum();
    assert!(
        step2 < step1,
        "second (sign-flipped) Adam step {step2} should be damped vs {step1}"
    );
}

#[test]
fn gap_then_dense_rejects_mismatched_channels() {
    let mut rng = SeededRng::new(8);
    let mut model = Sequential::new()
        .push(GlobalAvgPool::new())
        .push(Dense::new(4, 2, &mut rng));
    // GAP emits 3 channels but Dense expects 4.
    assert!(catches(move || {
        model.forward(&Tensor::zeros(&[1, 3, 2, 5]), false);
    }));
}
