//! The arena-based inference path (`Layer::forward_eval`) must be
//! numerically indistinguishable from the plain evaluation forward across
//! whole layer stacks — it is the forward the batched dCAM explanation
//! engine runs, so any drift here becomes an explanation bug.

use dcam_nn::arena::BatchArena;
use dcam_nn::layers::{
    BatchNorm, Conv2dRows, Dense, Dropout, GlobalAvgPool, Layer, Relu, Residual, Sequential,
};
use dcam_tensor::{SeededRng, Tensor};

fn cnn_stack(rng: &mut SeededRng) -> Sequential {
    let mut s = Sequential::new();
    let mut c_in = 4;
    for &c_out in &[6usize, 8] {
        s.add(Box::new(Conv2dRows::same(c_in, c_out, 3, rng)));
        s.add(Box::new(BatchNorm::new(c_out)));
        s.add(Box::new(Relu::new()));
        c_in = c_out;
    }
    s
}

#[test]
fn sequential_eval_matches_forward() {
    let mut rng = SeededRng::new(0);
    let mut stack = cnn_stack(&mut rng);
    // Burn in batch-norm running statistics so eval mode is non-trivial.
    for i in 0..5 {
        let xb = Tensor::uniform(&[3, 4, 4, 24], -1.0, 1.0, &mut SeededRng::new(100 + i));
        stack.forward(&xb, true);
        stack.zero_grads();
    }
    let x = Tensor::uniform(&[7, 4, 4, 24], -1.0, 1.0, &mut rng);
    let want = stack.forward(&x, false);
    let mut arena = BatchArena::new();
    let got = stack.forward_eval(x.clone(), &mut arena);
    assert_eq!(got.dims(), want.dims());
    assert!(got.allclose(&want, 1e-5), "eval path diverged");
    arena.recycle(got);

    // Steady state: many more calls — drawing inputs from and recycling
    // outputs to the pool, as the batched engine does — stay correct and
    // keep the arena bounded (holds for every DCAM_CONV_STRATEGY).
    for call in 0..8 {
        let mut xb = arena.take(x.len());
        xb.copy_from_slice(x.data());
        let xt = Tensor::from_vec(xb, x.dims()).unwrap();
        let got = stack.forward_eval(xt, &mut arena);
        assert!(got.allclose(&want, 1e-5), "eval call {call} diverged");
        arena.recycle(got);
    }
    assert!(
        arena.pooled() <= BatchArena::MAX_POOLED,
        "arena grew past its cap"
    );
}

#[test]
fn residual_and_dropout_eval_match_forward() {
    let mut rng = SeededRng::new(1);
    let mut main = Sequential::new();
    main.add(Box::new(Conv2dRows::same(3, 5, 3, &mut rng)));
    main.add(Box::new(BatchNorm::new(5)));
    main.add(Box::new(Relu::new()));
    let mut shortcut = Sequential::new();
    shortcut.add(Box::new(Conv2dRows::same(3, 5, 1, &mut rng)));
    let mut model = Sequential::new();
    model.add(Box::new(Residual::with_shortcut(main, shortcut)));
    model.add(Box::new(Dropout::new(0.3, 7)));

    let x = Tensor::uniform(&[4, 3, 3, 19], -1.0, 1.0, &mut rng);
    let want = model.forward(&x, false);
    let mut arena = BatchArena::new();
    let got = model.forward_eval(x, &mut arena);
    assert!(got.allclose(&want, 1e-5), "residual/dropout eval diverged");
}

#[test]
fn gap_and_dense_default_eval_path() {
    // Layers without an override run through the default forward_eval and
    // must still agree (and recycle their inputs).
    let mut rng = SeededRng::new(2);
    let mut model = Sequential::new();
    model.add(Box::new(GlobalAvgPool::new()));
    model.add(Box::new(Dense::new(5, 3, &mut rng)));
    let x = Tensor::uniform(&[2, 5, 2, 9], -1.0, 1.0, &mut rng);
    let want = model.forward(&x, false);
    let mut arena = BatchArena::new();
    let got = model.forward_eval(x, &mut arena);
    assert!(got.allclose(&want, 1e-6));
    assert!(arena.pooled() > 0, "inputs were not recycled");
}
