//! Property tests: the im2col+GEMM and fft convolution strategies are
//! numerically interchangeable with the direct sliding-window loops —
//! forward output, grad-input, grad-weight and grad-bias all agree within
//! 1e-4 (absolute for the GEMM path, relative for the fft path, whose
//! long-series sums grow with W) across odd/even kernels, k = 1 degenerate
//! kernels, stride 2, asymmetric padding, and non-power-of-two series
//! lengths (the transform's zero-padding path). This is the guard that
//! lets the Auto strategy switch paths by size without ever silently
//! changing results.

use dcam_nn::layers::{Conv2dRows, ConvStrategy, Layer};
use dcam_tensor::{SeededRng, Tensor};
use proptest::prelude::*;

/// Runs one forward+backward under the given strategy, returning
/// (output, grad_input, grad_weight, grad_bias).
fn run(
    strategy: ConvStrategy,
    c_in: usize,
    c_out: usize,
    len: usize,
    stride: usize,
    pad_left: usize,
    pad_right: usize,
    h: usize,
    w: usize,
    n: usize,
    seed: u64,
) -> (Tensor, Tensor, Tensor, Tensor) {
    let mut rng = SeededRng::new(seed);
    let mut conv =
        Conv2dRows::with_padding(c_in, c_out, len, stride, pad_left, pad_right, &mut rng);
    conv.set_strategy(strategy);
    let x = Tensor::uniform(&[n, c_in, h, w], -1.0, 1.0, &mut rng);
    let y = conv.forward(&x, true);
    let g = Tensor::uniform(y.dims(), -1.0, 1.0, &mut SeededRng::new(seed ^ 0x5bd1e995));
    let gx = conv.backward(&g);
    let mut grads = Vec::new();
    conv.visit_params(&mut |p| grads.push(p.grad.clone()));
    let gb = grads.pop().unwrap();
    let gw = grads.pop().unwrap();
    (y, gx, gw, gb)
}

/// Elementwise `|a − b| ≤ 1e-4 · (1 + max(|a|, |b|))` — a relative check
/// with an absolute floor, so fft results stay pinned to the direct path
/// even where long-series reductions grow the magnitudes far beyond 1.
fn close_rel(a: &Tensor, b: &Tensor, what: &str) {
    assert_eq!(a.dims(), b.dims(), "{what} shape mismatch");
    for (i, (&x, &y)) in a.data().iter().zip(b.data().iter()).enumerate() {
        let tol = 1e-4 * (1.0 + x.abs().max(y.abs()));
        assert!(
            (x - y).abs() <= tol,
            "{what} mismatch at flat index {i}: {x} vs {y}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn im2col_matches_direct(
        (c_in, c_out, n) in (1usize..=6, 1usize..=8, 1usize..=4),
        // Kernel lengths 1..=6 cover odd and even extents.
        len in 1usize..=6,
        stride in 1usize..=2,
        (pl_raw, pr_raw) in (0usize..6, 0usize..6),
        (h, w_extra) in (1usize..=4, 0usize..=20),
        seed in any::<u64>(),
    ) {
        // Padding must stay below the kernel length; asymmetric on purpose.
        let pad_left = pl_raw % len;
        let pad_right = pr_raw % len;
        // Input long enough for at least one kernel application.
        let w = len.saturating_sub(pad_left + pad_right) + w_extra + 1;
        let a = run(ConvStrategy::Direct, c_in, c_out, len, stride, pad_left, pad_right, h, w, n, seed);
        let b = run(ConvStrategy::Im2col, c_in, c_out, len, stride, pad_left, pad_right, h, w, n, seed);
        prop_assert!(a.0.allclose(&b.0, 1e-4), "forward mismatch (len {len} stride {stride} pad {pad_left}/{pad_right} w {w})");
        prop_assert!(a.1.allclose(&b.1, 1e-4), "grad-input mismatch (len {len} stride {stride} pad {pad_left}/{pad_right} w {w})");
        prop_assert!(a.2.allclose(&b.2, 1e-4), "grad-weight mismatch (len {len} stride {stride} pad {pad_left}/{pad_right} w {w})");
        prop_assert!(a.3.allclose(&b.3, 1e-4), "grad-bias mismatch (len {len} stride {stride} pad {pad_left}/{pad_right} w {w})");
    }

    /// The fft strategy against the direct path over the same arbitrary
    /// geometry grid: (channels, kernel length incl. the k = 1 degenerate
    /// case, stride, asymmetric padding, rows, width). Width is whatever
    /// the generator produces — almost never a power of two, so the
    /// transform's zero-padding path is always exercised.
    #[test]
    fn fft_matches_direct(
        (c_in, c_out, n) in (1usize..=6, 1usize..=8, 1usize..=4),
        len in 1usize..=6,
        stride in 1usize..=2,
        (pl_raw, pr_raw) in (0usize..6, 0usize..6),
        (h, w_extra) in (1usize..=4, 0usize..=20),
        seed in any::<u64>(),
    ) {
        let pad_left = pl_raw % len;
        let pad_right = pr_raw % len;
        let w = len.saturating_sub(pad_left + pad_right) + w_extra + 1;
        let a = run(ConvStrategy::Direct, c_in, c_out, len, stride, pad_left, pad_right, h, w, n, seed);
        let b = run(ConvStrategy::Fft, c_in, c_out, len, stride, pad_left, pad_right, h, w, n, seed);
        let ctx = format!("(len {len} stride {stride} pad {pad_left}/{pad_right} w {w})");
        close_rel(&a.0, &b.0, &format!("fft forward {ctx}"));
        close_rel(&a.1, &b.1, &format!("fft grad-input {ctx}"));
        close_rel(&a.2, &b.2, &format!("fft grad-weight {ctx}"));
        close_rel(&a.3, &b.3, &format!("fft grad-bias {ctx}"));
    }

    /// Long, non-power-of-two series — the geometry the fft strategy
    /// exists for (and where its transform padding is largest). Fewer
    /// random cases, bigger shapes.
    #[test]
    fn fft_matches_direct_on_long_series(
        wi in 0usize..4,
        li in 0usize..4,
        stride in 1usize..=2,
        seed in any::<u64>(),
    ) {
        let w = [997usize, 1200, 1536, 2000][wi];
        let len = [1usize, 15, 33, 64][li];
        let pad = (len - 1) / 2;
        let a = run(ConvStrategy::Direct, 2, 3, len, stride, pad, pad, 2, w, 2, seed);
        let b = run(ConvStrategy::Fft, 2, 3, len, stride, pad, pad, 2, w, 2, seed);
        let ctx = format!("(w {w} len {len} stride {stride})");
        close_rel(&a.0, &b.0, &format!("fft forward {ctx}"));
        close_rel(&a.1, &b.1, &format!("fft grad-input {ctx}"));
        close_rel(&a.2, &b.2, &format!("fft grad-weight {ctx}"));
        close_rel(&a.3, &b.3, &format!("fft grad-bias {ctx}"));
    }

    /// Stride 2 with even kernels — the configuration most likely to break
    /// index bookkeeping — against a fixed dense grid rather than random
    /// samples alone.
    #[test]
    fn stride_two_even_kernels_agree(seed in any::<u64>()) {
        for &(len, pad_left, pad_right) in &[(4usize, 1usize, 3usize), (2, 0, 1), (6, 5, 0)] {
            let a = run(ConvStrategy::Direct, 3, 4, len, 2, pad_left, pad_right, 2, 23, 2, seed);
            let b = run(ConvStrategy::Im2col, 3, 4, len, 2, pad_left, pad_right, 2, 23, 2, seed);
            prop_assert!(a.0.allclose(&b.0, 1e-4), "forward (len {len})");
            prop_assert!(a.1.allclose(&b.1, 1e-4), "grad-input (len {len})");
            prop_assert!(a.2.allclose(&b.2, 1e-4), "grad-weight (len {len})");
            prop_assert!(a.3.allclose(&b.3, 1e-4), "grad-bias (len {len})");
            let c = run(ConvStrategy::Fft, 3, 4, len, 2, pad_left, pad_right, 2, 23, 2, seed);
            close_rel(&a.0, &c.0, &format!("fft forward (len {len})"));
            close_rel(&a.1, &c.1, &format!("fft grad-input (len {len})"));
            close_rel(&a.2, &c.2, &format!("fft grad-weight (len {len})"));
            close_rel(&a.3, &c.3, &format!("fft grad-bias (len {len})"));
        }
    }

    /// Regression: a kernel longer than the padded input width (w = 1,
    /// ℓ = 6, pads 3/5) used to panic with a usize underflow in the im2col
    /// stride-1 fast path; the fft path must survive the same degenerate
    /// geometry.
    #[test]
    fn kernel_longer_than_input_agrees(seed in any::<u64>()) {
        let a = run(ConvStrategy::Direct, 2, 3, 6, 1, 3, 5, 20, 1, 1, seed);
        for (name, strategy) in [("im2col", ConvStrategy::Im2col), ("fft", ConvStrategy::Fft)] {
            let b = run(strategy, 2, 3, 6, 1, 3, 5, 20, 1, 1, seed);
            close_rel(&a.0, &b.0, &format!("{name} forward"));
            close_rel(&a.1, &b.1, &format!("{name} grad-input"));
            close_rel(&a.2, &b.2, &format!("{name} grad-weight"));
            close_rel(&a.3, &b.3, &format!("{name} grad-bias"));
        }
    }
}
