//! Active shard health checking: the state machine behind the router's
//! per-shard prober threads.
//!
//! Each shard gets one checker thread probing `GET /healthz` on an
//! interval. The state machine is hysteretic in both directions:
//! `fail_threshold` *consecutive* probe failures mark a shard down (one
//! dropped packet must not evict a healthy replica), and
//! `recovery_threshold` consecutive successes mark it up again (a shard
//! flapping during startup must not receive traffic between crashes).
//! The machine itself is pure — probe outcomes go in, transitions come
//! out — so tests drive it without sockets or sleeps.

use std::time::Duration;

/// Prober tuning.
#[derive(Debug, Clone)]
pub struct HealthConfig {
    /// Time between probes of one shard.
    pub probe_interval: Duration,
    /// Per-probe budget (connect + request + response).
    pub probe_timeout: Duration,
    /// Consecutive probe failures that mark a shard down.
    pub fail_threshold: u32,
    /// Consecutive probe successes that mark a down shard up again.
    pub recovery_threshold: u32,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            probe_interval: Duration::from_millis(200),
            probe_timeout: Duration::from_millis(500),
            fail_threshold: 3,
            recovery_threshold: 2,
        }
    }
}

/// What one probe observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeOutcome {
    /// `/healthz` answered 200.
    Ok,
    /// Connect failure, timeout, or a non-200 answer.
    Failed,
}

/// A state transition worth acting on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthTransition {
    /// No state change.
    None,
    /// The shard just crossed the failure threshold: stop routing to it.
    WentDown,
    /// The shard just crossed the recovery threshold: route to it again
    /// (the router also resets its circuit breaker on this edge).
    Recovered,
}

/// Health state of one shard as seen by its prober.
#[derive(Debug)]
pub struct HealthState {
    up: bool,
    consecutive_failures: u32,
    consecutive_successes: u32,
    /// Total probes sent (for /fleet).
    probes: u64,
    /// Total failed probes (for /fleet).
    probe_failures: u64,
}

impl Default for HealthState {
    /// Shards start **up**: the fleet is taken at the operator's word at
    /// boot, and the first failed probes (or proxied requests, via the
    /// breaker) demote a shard that is actually dead. Starting down would
    /// make every cold boot a `fail_threshold * probe_interval` outage.
    fn default() -> Self {
        HealthState {
            up: true,
            consecutive_failures: 0,
            consecutive_successes: 0,
            probes: 0,
            probe_failures: 0,
        }
    }
}

impl HealthState {
    /// Whether the shard currently receives traffic.
    pub fn is_up(&self) -> bool {
        self.up
    }

    /// Current consecutive probe-failure streak.
    pub fn consecutive_failures(&self) -> u32 {
        self.consecutive_failures
    }

    /// Total probes sent.
    pub fn probes(&self) -> u64 {
        self.probes
    }

    /// Total failed probes.
    pub fn probe_failures(&self) -> u64 {
        self.probe_failures
    }

    /// Folds one probe outcome into the state.
    pub fn on_probe(&mut self, cfg: &HealthConfig, outcome: ProbeOutcome) -> HealthTransition {
        self.probes += 1;
        match outcome {
            ProbeOutcome::Ok => {
                self.consecutive_failures = 0;
                self.consecutive_successes = self.consecutive_successes.saturating_add(1);
                if !self.up && self.consecutive_successes >= cfg.recovery_threshold.max(1) {
                    self.up = true;
                    HealthTransition::Recovered
                } else {
                    HealthTransition::None
                }
            }
            ProbeOutcome::Failed => {
                self.probe_failures += 1;
                self.consecutive_successes = 0;
                self.consecutive_failures = self.consecutive_failures.saturating_add(1);
                if self.up && self.consecutive_failures >= cfg.fail_threshold.max(1) {
                    self.up = false;
                    HealthTransition::WentDown
                } else {
                    HealthTransition::None
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> HealthConfig {
        HealthConfig {
            fail_threshold: 3,
            recovery_threshold: 2,
            ..HealthConfig::default()
        }
    }

    #[test]
    fn starts_up_and_needs_consecutive_failures_to_go_down() {
        let c = cfg();
        let mut h = HealthState::default();
        assert!(h.is_up());
        assert_eq!(h.on_probe(&c, ProbeOutcome::Failed), HealthTransition::None);
        assert_eq!(h.on_probe(&c, ProbeOutcome::Ok), HealthTransition::None);
        assert_eq!(h.on_probe(&c, ProbeOutcome::Failed), HealthTransition::None);
        assert_eq!(h.on_probe(&c, ProbeOutcome::Failed), HealthTransition::None);
        assert!(h.is_up(), "streak was broken by the success");
        assert_eq!(
            h.on_probe(&c, ProbeOutcome::Failed),
            HealthTransition::WentDown
        );
        assert!(!h.is_up());
    }

    #[test]
    fn recovery_needs_consecutive_successes() {
        let c = cfg();
        let mut h = HealthState::default();
        for _ in 0..3 {
            h.on_probe(&c, ProbeOutcome::Failed);
        }
        assert!(!h.is_up());
        assert_eq!(h.on_probe(&c, ProbeOutcome::Ok), HealthTransition::None);
        assert_eq!(h.on_probe(&c, ProbeOutcome::Failed), HealthTransition::None);
        assert!(!h.is_up(), "flap broke the recovery streak");
        assert_eq!(h.on_probe(&c, ProbeOutcome::Ok), HealthTransition::None);
        assert_eq!(
            h.on_probe(&c, ProbeOutcome::Ok),
            HealthTransition::Recovered
        );
        assert!(h.is_up());
    }

    #[test]
    fn transitions_fire_exactly_once_per_edge() {
        let c = cfg();
        let mut h = HealthState::default();
        for _ in 0..3 {
            h.on_probe(&c, ProbeOutcome::Failed);
        }
        assert_eq!(
            h.on_probe(&c, ProbeOutcome::Failed),
            HealthTransition::None,
            "already down: no repeated WentDown"
        );
        for _ in 0..2 {
            h.on_probe(&c, ProbeOutcome::Ok);
        }
        assert_eq!(
            h.on_probe(&c, ProbeOutcome::Ok),
            HealthTransition::None,
            "already up: no repeated Recovered"
        );
    }

    #[test]
    fn counters_track_probe_history() {
        let c = cfg();
        let mut h = HealthState::default();
        h.on_probe(&c, ProbeOutcome::Ok);
        h.on_probe(&c, ProbeOutcome::Failed);
        h.on_probe(&c, ProbeOutcome::Ok);
        assert_eq!(h.probes(), 3);
        assert_eq!(h.probe_failures(), 1);
    }

    #[test]
    fn zero_thresholds_are_clamped_to_one() {
        let c = HealthConfig {
            fail_threshold: 0,
            recovery_threshold: 0,
            ..HealthConfig::default()
        };
        let mut h = HealthState::default();
        assert_eq!(
            h.on_probe(&c, ProbeOutcome::Failed),
            HealthTransition::WentDown
        );
        assert_eq!(
            h.on_probe(&c, ProbeOutcome::Ok),
            HealthTransition::Recovered
        );
    }
}
