//! `dcam-router` — a fault-tolerant HTTP routing tier fronting a fleet of
//! `dcam-server` shards.
//!
//! The single-process [`dcam_server`] serves a model registry well, but a
//! production deployment wants N of them: for capacity, for isolation,
//! and so one crashed process does not take the explanation API down.
//! This crate is the tier that makes a fleet look like one server:
//!
//! * **Placement** — requests carry an optional `"model"` name; the
//!   router rendezvous-hashes it over the shard list ([`placement`]) and
//!   replicates each model on `replicas` shards. Among the healthy
//!   replicas it picks the least-loaded (fewest router-side in-flight
//!   requests, placement rank breaking ties).
//! * **Health checking** — one prober thread per shard hits
//!   `GET /healthz` on an interval; consecutive failures mark the shard
//!   down ([`health`]), consecutive successes bring it back.
//! * **Retry, backoff, failover** — every proxied request runs under an
//!   end-to-end deadline with a bounded number of attempts. Connect
//!   errors, timeouts and 5xx answers fail over to the next replica;
//!   rounds are separated by jittered exponential backoff ([`retry`]).
//!   Shard 4xx answers pass through verbatim (the request is wrong, not
//!   the shard).
//! * **Circuit breaking** — consecutive failures open a per-shard
//!   breaker ([`breaker`]); an open breaker skips the shard until a
//!   half-open trial succeeds. Health-check recovery resets the breaker.
//! * **Graceful degradation** — when no replica can take a request the
//!   client gets a structured 503 with `Retry-After`, never a hang and
//!   never a panic.
//! * **Rollouts** — `POST /v1/models/{name}/swap` at the router walks
//!   the model's replica set in placement order, swapping one shard at a
//!   time and aborting on first failure, so a bad checkpoint stops after
//!   one shard instead of taking out every replica.
//! * **Observability** — `GET /fleet` reports per-shard health, breaker
//!   state, in-flight counts and failure counters plus router totals.
//!
//! The HTTP plumbing (request parsing, keep-alive handling, response
//! writing) is reused from [`dcam_server::http`]; the router adds no new
//! dependencies beyond `dcam-server` itself and the vendored JSON shims.

#![warn(missing_docs)]

pub mod breaker;
pub mod health;
pub mod placement;
pub mod retry;

use breaker::{BreakerConfig, CircuitBreaker};
use dcam_server::http::{self, Conn, RecvError, Request};
use dcam_server::wire::error_body;
use dcam_server::{ClientConfig, ClientError, HttpClient, HttpResponse};
use health::{HealthConfig, HealthState, HealthTransition, ProbeOutcome};
use retry::{BackoffConfig, XorShift64};
use serde::Value;
use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Configuration of a [`Router`].
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Bind address; port `0` picks an ephemeral port.
    pub addr: String,
    /// Shard addresses (`host:port`), the hash universe for placement.
    /// Order does not matter — rendezvous hashing scores each address
    /// independently.
    pub shards: Vec<String>,
    /// Replicas per model (clamped to the fleet size).
    pub replicas: usize,
    /// Connection-worker threads.
    pub conn_workers: usize,
    /// Bound on accepted-but-unclaimed connections.
    pub conn_backlog: usize,
    /// Request bodies above this get a 413.
    pub max_body_bytes: usize,
    /// End-to-end budget per proxied request, covering every attempt,
    /// failover and backoff sleep.
    pub request_deadline: Duration,
    /// Per-attempt cap within the request deadline: a stalled shard is
    /// abandoned (and failed over) after this long even when the overall
    /// deadline still has budget.
    pub upstream_timeout: Duration,
    /// TCP connect budget per upstream attempt.
    pub connect_timeout: Duration,
    /// Total upstream attempts per request before giving up with 503.
    pub max_attempts: u32,
    /// Backoff between retry rounds.
    pub backoff: BackoffConfig,
    /// Health-prober tuning.
    pub health: HealthConfig,
    /// Per-shard circuit-breaker thresholds.
    pub breaker: BreakerConfig,
    /// Per-shard budget for one rollout swap (checkpoint loads take
    /// longer than explain requests).
    pub rollout_deadline: Duration,
    /// How long an idle keep-alive client connection is held open.
    pub idle_keepalive: Duration,
    /// `Retry-After` value on router-origin 503s, seconds.
    pub retry_after_s: u32,
    /// When set, the router's rollout endpoint requires a matching
    /// `X-Admin-Token` header (401 missing / 403 mismatch), and the
    /// token is forwarded to the shards' own swap gates.
    pub admin_token: Option<String>,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            addr: "127.0.0.1:0".into(),
            shards: Vec::new(),
            replicas: 2,
            conn_workers: 2,
            conn_backlog: 64,
            max_body_bytes: 8 * 1024 * 1024,
            request_deadline: Duration::from_secs(30),
            upstream_timeout: Duration::from_secs(10),
            connect_timeout: Duration::from_secs(2),
            max_attempts: 4,
            backoff: BackoffConfig::default(),
            health: HealthConfig::default(),
            breaker: BreakerConfig::default(),
            rollout_deadline: Duration::from_secs(30),
            idle_keepalive: Duration::from_secs(5),
            retry_after_s: 1,
            admin_token: None,
        }
    }
}

/// Cap on pooled keep-alive connections per shard.
const POOL_CAP: usize = 4;

/// Router-side state for one shard.
struct ShardState {
    addr: String,
    health: Mutex<HealthState>,
    breaker: Mutex<CircuitBreaker>,
    /// Requests this router currently has in flight against the shard
    /// (the load signal for replica choice).
    inflight: AtomicU64,
    /// Idle keep-alive connections to the shard.
    pool: Mutex<Vec<HttpClient>>,
    proxied_ok: AtomicU64,
    proxy_failures: AtomicU64,
    last_error: Mutex<Option<String>>,
}

impl ShardState {
    fn new(addr: String, breaker_cfg: BreakerConfig) -> Self {
        ShardState {
            addr,
            health: Mutex::new(HealthState::default()),
            breaker: Mutex::new(CircuitBreaker::new(breaker_cfg)),
            inflight: AtomicU64::new(0),
            pool: Mutex::new(Vec::new()),
            proxied_ok: AtomicU64::new(0),
            proxy_failures: AtomicU64::new(0),
            last_error: Mutex::new(None),
        }
    }

    fn record_failure(&self, now: Instant, why: String) {
        lock(&self.breaker).on_failure(now);
        self.proxy_failures.fetch_add(1, Ordering::Relaxed);
        *lock(&self.last_error) = Some(why);
    }
}

#[derive(Default)]
struct Counters {
    requests: AtomicU64,
    proxied_ok: AtomicU64,
    retries: AtomicU64,
    failovers: AtomicU64,
    unavailable_503: AtomicU64,
    rollouts: AtomicU64,
    rollouts_failed: AtomicU64,
}

/// State shared by the accept thread, connection workers and probers.
struct Ctx {
    cfg: RouterConfig,
    shards: Vec<ShardState>,
    counters: Counters,
    shutdown: AtomicBool,
    conns: Mutex<VecDeque<TcpStream>>,
    conns_ready: Condvar,
    /// Prober sleep wakes early on shutdown via this pair.
    sleeper: Mutex<()>,
    sleeper_cv: Condvar,
    /// Backoff jitter source, shared across connection workers.
    rng: Mutex<XorShift64>,
}

/// A running router tier.
///
/// Dropping it (or calling [`Router::shutdown`]) stops the HTTP threads
/// and the health probers; the shards it fronts are independent
/// processes (or [`dcam_server::DcamServer`] instances) and keep running.
pub struct Router {
    ctx: Arc<Ctx>,
    addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
    conn_threads: Vec<JoinHandle<()>>,
    health_threads: Vec<JoinHandle<()>>,
}

/// Boots a router over `cfg.shards`. Fails if the shard list is empty or
/// the bind address is taken; the shards themselves do not need to be up
/// yet — the health checkers find them when they arrive.
pub fn serve_router(cfg: RouterConfig) -> io::Result<Router> {
    if cfg.shards.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "router needs at least one shard address",
        ));
    }
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let shards = cfg
        .shards
        .iter()
        .map(|a| ShardState::new(a.clone(), cfg.breaker.clone()))
        .collect();
    // Jitter seed: wall clock + pid, so two routers booted together do
    // not back off in lockstep. Determinism in tests comes from driving
    // BackoffConfig::delay with an explicit seed, not from here.
    let seed = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(1)
        ^ (std::process::id() as u64).rotate_left(32);
    let ctx = Arc::new(Ctx {
        cfg: cfg.clone(),
        shards,
        counters: Counters::default(),
        shutdown: AtomicBool::new(false),
        conns: Mutex::new(VecDeque::new()),
        conns_ready: Condvar::new(),
        sleeper: Mutex::new(()),
        sleeper_cv: Condvar::new(),
        rng: Mutex::new(XorShift64::new(seed)),
    });
    let accept_thread = {
        let ctx = Arc::clone(&ctx);
        std::thread::Builder::new()
            .name("router-accept".into())
            .spawn(move || accept_loop(listener, &ctx))
            .expect("spawn accept thread")
    };
    let conn_threads = (0..cfg.conn_workers.max(1))
        .map(|i| {
            let ctx = Arc::clone(&ctx);
            std::thread::Builder::new()
                .name(format!("router-conn-{i}"))
                .spawn(move || conn_worker(&ctx))
                .expect("spawn connection worker")
        })
        .collect();
    let health_threads = (0..ctx.shards.len())
        .map(|i| {
            let ctx = Arc::clone(&ctx);
            std::thread::Builder::new()
                .name(format!("router-health-{i}"))
                .spawn(move || health_loop(&ctx, i))
                .expect("spawn health checker")
        })
        .collect();
    Ok(Router {
        ctx,
        addr,
        accept_thread: Some(accept_thread),
        conn_threads,
        health_threads,
    })
}

impl Router {
    /// The bound socket address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the HTTP threads and health probers. Idempotent via drop.
    pub fn shutdown(mut self) {
        self.stop_threads();
    }

    fn stop_threads(&mut self) {
        self.ctx.shutdown.store(true, Ordering::Release);
        self.ctx.conns_ready.notify_all();
        self.ctx.sleeper_cv.notify_all();
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        for t in self.conn_threads.drain(..) {
            let _ = t.join();
        }
        for t in self.health_threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for Router {
    fn drop(&mut self) {
        self.stop_threads();
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn accept_loop(listener: TcpListener, ctx: &Ctx) {
    while !ctx.shutdown.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let _ = stream.set_nodelay(true);
                let mut conns = lock(&ctx.conns);
                if conns.len() >= ctx.cfg.conn_backlog {
                    drop(conns);
                    let mut stream = stream;
                    let _ = http::write_response(
                        &mut stream,
                        503,
                        &[("retry-after", ctx.cfg.retry_after_s.to_string())],
                        &error_body("overloaded", "router connection backlog full"),
                        true,
                    );
                } else {
                    conns.push_back(stream);
                    drop(conns);
                    ctx.conns_ready.notify_one();
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
}

fn conn_worker(ctx: &Ctx) {
    loop {
        let stream = {
            let mut conns = lock(&ctx.conns);
            loop {
                if let Some(s) = conns.pop_front() {
                    break Some(s);
                }
                if ctx.shutdown.load(Ordering::Acquire) {
                    break None;
                }
                conns = ctx
                    .conns_ready
                    .wait_timeout(conns, Duration::from_millis(100))
                    .unwrap_or_else(|poisoned| poisoned.into_inner())
                    .0;
            }
        };
        let Some(stream) = stream else { return };
        handle_connection(Conn::new(stream), ctx);
    }
}

/// Whether the connection survives the response.
enum After {
    KeepAlive,
    Close,
}

fn handle_connection(mut conn: Conn, ctx: &Ctx) {
    if conn
        .stream()
        .set_read_timeout(Some(Duration::from_millis(100)))
        .is_err()
    {
        return;
    }
    let mut idle_deadline = Instant::now() + ctx.cfg.idle_keepalive;
    loop {
        match conn.read_request(ctx.cfg.max_body_bytes) {
            Ok(req) => {
                let want_close = req.close;
                match route(&mut conn, &req, ctx) {
                    After::KeepAlive if !want_close && !ctx.shutdown.load(Ordering::Acquire) => {
                        idle_deadline = Instant::now() + ctx.cfg.idle_keepalive;
                    }
                    _ => return,
                }
            }
            Err(RecvError::Idle) => {
                // Past the idle deadline the connection is dropped even
                // mid-request: a client that stalls while writing must not
                // pin a conn worker forever.
                if Instant::now() >= idle_deadline
                    || (!conn.has_partial() && ctx.shutdown.load(Ordering::Acquire))
                {
                    return;
                }
            }
            Err(RecvError::Closed) | Err(RecvError::Io(_)) => return,
            Err(RecvError::Bad(msg)) => {
                respond(
                    &mut conn,
                    ctx,
                    400,
                    &[],
                    &error_body("bad_request", &msg),
                    true,
                );
                return;
            }
            Err(RecvError::TooLarge { limit }) => {
                respond(
                    &mut conn,
                    ctx,
                    413,
                    &[],
                    &error_body(
                        "payload_too_large",
                        &format!("request body exceeds {limit} bytes"),
                    ),
                    true,
                );
                return;
            }
        }
    }
}

fn respond(
    conn: &mut Conn,
    ctx: &Ctx,
    status: u16,
    extra: &[(&str, String)],
    body: &str,
    close: bool,
) -> After {
    let close = close || ctx.shutdown.load(Ordering::Acquire);
    match http::write_response(conn.stream(), status, extra, body, close) {
        Ok(()) if !close => After::KeepAlive,
        _ => After::Close,
    }
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
}

fn num(n: f64) -> Value {
    Value::Number(n)
}

fn route(conn: &mut Conn, req: &Request, ctx: &Ctx) -> After {
    if let Some(rest) = req.path.strip_prefix("/v1/models/") {
        if let Some(name) = rest.strip_suffix("/swap") {
            return if req.method == "POST" {
                handle_rollout(conn, req, ctx, name)
            } else {
                respond(
                    conn,
                    ctx,
                    405,
                    &[("allow", "POST".into())],
                    &error_body("method_not_allowed", "use POST"),
                    false,
                )
            };
        }
    }
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => {
            let available = ctx
                .shards
                .iter()
                .filter(|s| lock(&s.health).is_up())
                .count();
            let body = serde_json::to_string(&obj(vec![
                (
                    "status",
                    Value::String(if available > 0 { "ok" } else { "degraded" }.into()),
                ),
                ("shards", num(ctx.shards.len() as f64)),
                ("available", num(available as f64)),
            ]))
            .unwrap_or_default();
            // A router with zero reachable shards is still *alive* — the
            // probe answers 200 and the body says degraded. Kubernetes-style
            // liveness kills on non-200; restarting the router would not
            // revive the shards.
            respond(conn, ctx, 200, &[], &body, false)
        }
        ("GET", "/fleet") => {
            let body = serde_json::to_string(&fleet_value(ctx)).unwrap_or_default();
            respond(conn, ctx, 200, &[], &body, false)
        }
        ("GET", "/v1/models") => handle_models(conn, ctx),
        ("POST", "/v1/explain" | "/v1/classify") => handle_proxy(conn, req, ctx),
        (_, "/healthz" | "/fleet" | "/v1/models") => respond(
            conn,
            ctx,
            405,
            &[("allow", "GET".into())],
            &error_body("method_not_allowed", "use GET"),
            false,
        ),
        (_, "/v1/explain" | "/v1/classify") => respond(
            conn,
            ctx,
            405,
            &[("allow", "POST".into())],
            &error_body("method_not_allowed", "use POST"),
            false,
        ),
        (_, path) => respond(
            conn,
            ctx,
            404,
            &[],
            &error_body("not_found", &format!("no route for {path}")),
            false,
        ),
    }
}

/// The `GET /fleet` document.
fn fleet_value(ctx: &Ctx) -> Value {
    let now = Instant::now();
    let mut fleet = Vec::with_capacity(ctx.shards.len());
    let mut available = 0usize;
    for s in &ctx.shards {
        let health = lock(&s.health);
        let breaker = lock(&s.breaker);
        if health.is_up() {
            available += 1;
        }
        let mut fields = vec![
            ("addr", Value::String(s.addr.clone())),
            ("healthy", Value::Bool(health.is_up())),
            (
                "consecutive_probe_failures",
                num(health.consecutive_failures() as f64),
            ),
            ("probes", num(health.probes() as f64)),
            ("probe_failures", num(health.probe_failures() as f64)),
            ("circuit", Value::String(breaker.state(now).name().into())),
            ("circuit_opens", num(breaker.opens() as f64)),
            ("inflight", num(s.inflight.load(Ordering::Relaxed) as f64)),
            (
                "proxied_ok",
                num(s.proxied_ok.load(Ordering::Relaxed) as f64),
            ),
            (
                "proxy_failures",
                num(s.proxy_failures.load(Ordering::Relaxed) as f64),
            ),
        ];
        if let Some(err) = lock(&s.last_error).clone() {
            fields.push(("last_error", Value::String(err)));
        }
        fleet.push(obj(fields));
    }
    let c = &ctx.counters;
    obj(vec![
        (
            "status",
            Value::String(if available == ctx.shards.len() {
                "ok".into()
            } else if available > 0 {
                "degraded".into()
            } else {
                "down".into()
            }),
        ),
        ("shards", num(ctx.shards.len() as f64)),
        ("available", num(available as f64)),
        ("replicas", num(ctx.cfg.replicas as f64)),
        (
            "router",
            obj(vec![
                ("requests", num(c.requests.load(Ordering::Relaxed) as f64)),
                (
                    "proxied_ok",
                    num(c.proxied_ok.load(Ordering::Relaxed) as f64),
                ),
                ("retries", num(c.retries.load(Ordering::Relaxed) as f64)),
                ("failovers", num(c.failovers.load(Ordering::Relaxed) as f64)),
                (
                    "unavailable_503",
                    num(c.unavailable_503.load(Ordering::Relaxed) as f64),
                ),
                ("rollouts", num(c.rollouts.load(Ordering::Relaxed) as f64)),
                (
                    "rollouts_failed",
                    num(c.rollouts_failed.load(Ordering::Relaxed) as f64),
                ),
            ]),
        ),
        ("fleet", Value::Array(fleet)),
    ])
}

/// `GET /v1/models`: fans out to every healthy shard and reports each
/// shard's model list side by side (models are placed per shard, so the
/// union view keeps the shard attribution).
fn handle_models(conn: &mut Conn, ctx: &Ctx) -> After {
    let mut entries = Vec::with_capacity(ctx.shards.len());
    for s in &ctx.shards {
        if !lock(&s.health).is_up() {
            entries.push(obj(vec![
                ("addr", Value::String(s.addr.clone())),
                ("reachable", Value::Bool(false)),
            ]));
            continue;
        }
        let result = HttpClient::connect_with(
            &s.addr,
            ClientConfig {
                connect_timeout: ctx.cfg.connect_timeout,
                request_deadline: ctx.cfg.upstream_timeout,
            },
        )
        .and_then(|mut client| client.get("/v1/models"));
        match result.map(|resp| (resp.status, resp.json())) {
            Ok((200, Ok(models))) => entries.push(obj(vec![
                ("addr", Value::String(s.addr.clone())),
                ("reachable", Value::Bool(true)),
                ("models", models),
            ])),
            Ok((status, _)) => entries.push(obj(vec![
                ("addr", Value::String(s.addr.clone())),
                ("reachable", Value::Bool(false)),
                ("status", num(status as f64)),
            ])),
            Err(e) => entries.push(obj(vec![
                ("addr", Value::String(s.addr.clone())),
                ("reachable", Value::Bool(false)),
                ("error", Value::String(e.to_string())),
            ])),
        }
    }
    let body =
        serde_json::to_string(&obj(vec![("shards", Value::Array(entries))])).unwrap_or_default();
    respond(conn, ctx, 200, &[], &body, false)
}

/// The replica candidates able to take a request right now, ordered by
/// (in-flight load, placement rank).
fn available_candidates(ctx: &Ctx, order: &[usize], now: Instant) -> Vec<usize> {
    let mut cands: Vec<(u64, usize, usize)> = order
        .iter()
        .enumerate()
        .filter_map(|(rank, &i)| {
            let s = &ctx.shards[i];
            if !lock(&s.health).is_up() || !lock(&s.breaker).would_allow(now) {
                return None;
            }
            Some((s.inflight.load(Ordering::Relaxed), rank, i))
        })
        .collect();
    cands.sort_unstable();
    cands.into_iter().map(|(_, _, i)| i).collect()
}

/// One upstream attempt against one shard: reuse a pooled keep-alive
/// connection when possible, falling back to a fresh connect when the
/// pooled one turns out stale (the shard may have closed it while idle —
/// that is not a shard failure).
fn attempt_shard(
    ctx: &Ctx,
    shard: &ShardState,
    path: &str,
    body: &str,
    budget: Duration,
) -> Result<HttpResponse, ClientError> {
    let start = Instant::now();
    // One statement, so the pool guard drops before the request is sent:
    // under the 2021 if-let temporary rules, writing `lock(...).pop()` in
    // the scrutinee would hold the pool mutex across the network round
    // trip — and self-deadlock when `pool_back` re-locks it.
    let pooled = lock(&shard.pool).pop();
    if let Some(mut client) = pooled {
        match client.request_with_deadline("POST", path, Some(body), budget) {
            Ok(resp) => {
                pool_back(shard, client, &resp);
                return Ok(resp);
            }
            // A timeout on a live connection is a real shard problem; an
            // Io/Malformed failure on a *reused* connection is more likely
            // a stale keep-alive — retry once on a fresh connection.
            Err(e) if e.is_timeout() => return Err(e),
            Err(_) => {}
        }
    }
    let remaining = budget
        .checked_sub(start.elapsed())
        .filter(|r| !r.is_zero())
        .ok_or(ClientError::ReadTimeout {
            after: start.elapsed(),
        })?;
    let mut client = HttpClient::connect_with(
        &shard.addr,
        ClientConfig {
            connect_timeout: ctx.cfg.connect_timeout.min(remaining),
            request_deadline: remaining,
        },
    )?;
    let after_connect = budget
        .checked_sub(start.elapsed())
        .filter(|r| !r.is_zero())
        .ok_or(ClientError::ReadTimeout {
            after: start.elapsed(),
        })?;
    let resp = client.request_with_deadline("POST", path, Some(body), after_connect)?;
    pool_back(shard, client, &resp);
    Ok(resp)
}

fn pool_back(shard: &ShardState, client: HttpClient, resp: &HttpResponse) {
    if resp
        .header("connection")
        .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    {
        return;
    }
    let mut pool = lock(&shard.pool);
    if pool.len() < POOL_CAP {
        pool.push(client);
    }
}

/// `POST /v1/explain` / `POST /v1/classify`: proxy with load-aware
/// replica choice, bounded retry, backoff and failover.
fn handle_proxy(conn: &mut Conn, req: &Request, ctx: &Ctx) -> After {
    ctx.counters.requests.fetch_add(1, Ordering::Relaxed);
    let Ok(text) = std::str::from_utf8(&req.body) else {
        return respond(
            conn,
            ctx,
            400,
            &[],
            &error_body("bad_json", "request body is not UTF-8"),
            false,
        );
    };
    let value = match serde_json::parse(text) {
        Ok(v) => v,
        Err(e) => {
            return respond(
                conn,
                ctx,
                400,
                &[],
                &error_body("bad_json", &e.to_string()),
                false,
            )
        }
    };
    // The hash key: the named model, or the fleet-wide "default" entry
    // (the same fallback each shard's registry applies).
    let model = value
        .get("model")
        .and_then(Value::as_str)
        .unwrap_or("default");
    let order = placement::placement(model, &ctx.cfg.shards, ctx.cfg.replicas);

    let start = Instant::now();
    let deadline = start + ctx.cfg.request_deadline;
    let mut attempts: u32 = 0;
    let mut last_failure: Option<String> = None;
    let mut round: u32 = 0;
    loop {
        let candidates = available_candidates(ctx, &order, Instant::now());
        if candidates.is_empty() {
            // Every replica is down or circuit-broken: fail fast with a
            // structured 503 instead of burning the deadline on sleeps.
            break;
        }
        for i in candidates {
            if attempts >= ctx.cfg.max_attempts || Instant::now() >= deadline {
                break;
            }
            let s = &ctx.shards[i];
            if !lock(&s.breaker).try_acquire(Instant::now()) {
                continue;
            }
            attempts += 1;
            if attempts > 1 {
                ctx.counters.failovers.fetch_add(1, Ordering::Relaxed);
            }
            let budget = deadline
                .saturating_duration_since(Instant::now())
                .min(ctx.cfg.upstream_timeout);
            s.inflight.fetch_add(1, Ordering::Relaxed);
            let result = attempt_shard(ctx, s, &req.path, text, budget);
            s.inflight.fetch_sub(1, Ordering::Relaxed);
            match result {
                Ok(resp) if resp.status < 500 => {
                    // 2xx pass through; 4xx pass through too — the request
                    // is at fault, not the shard, so it counts as a breaker
                    // success and is never retried elsewhere.
                    lock(&s.breaker).on_success();
                    s.proxied_ok.fetch_add(1, Ordering::Relaxed);
                    ctx.counters.proxied_ok.fetch_add(1, Ordering::Relaxed);
                    let extra: Vec<(&str, String)> = resp
                        .retry_after
                        .map(|v| vec![("retry-after", v.to_string())])
                        .unwrap_or_default();
                    return respond(conn, ctx, resp.status, &extra, &resp.body, false);
                }
                Ok(resp) => {
                    let why = format!("upstream status {}", resp.status);
                    s.record_failure(Instant::now(), why.clone());
                    last_failure = Some(format!("{}: {why}", s.addr));
                }
                Err(e) => {
                    s.record_failure(Instant::now(), e.to_string());
                    last_failure = Some(format!("{}: {e}", s.addr));
                }
            }
        }
        if attempts >= ctx.cfg.max_attempts || Instant::now() >= deadline {
            break;
        }
        // Round exhausted with budget left: back off (jittered) and retry.
        let delay = {
            let mut rng = lock(&ctx.rng);
            ctx.cfg.backoff.delay(round, &mut rng)
        };
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            break;
        }
        std::thread::sleep(delay.min(remaining));
        ctx.counters.retries.fetch_add(1, Ordering::Relaxed);
        round += 1;
    }
    ctx.counters.unavailable_503.fetch_add(1, Ordering::Relaxed);
    let (code, detail) = match &last_failure {
        Some(why) => (
            "upstream_unavailable",
            format!("no replica of {model:?} answered after {attempts} attempts; last: {why}"),
        ),
        None => (
            "no_healthy_replica",
            format!("every replica of {model:?} is down or circuit-broken"),
        ),
    };
    respond(
        conn,
        ctx,
        503,
        &[("retry-after", ctx.cfg.retry_after_s.to_string())],
        &error_body(code, &detail),
        false,
    )
}

/// `POST /v1/models/{name}/swap` at the router: a fleet-wide rolling
/// swap. Walks the model's replica set in placement order, swapping one
/// shard at a time; the first failing shard aborts the rollout (the
/// remaining replicas keep the old version, which is the safe state) and
/// the response reports exactly what happened on each shard.
fn handle_rollout(conn: &mut Conn, req: &Request, ctx: &Ctx, name: &str) -> After {
    if let Some(expected) = ctx.cfg.admin_token.as_deref() {
        match req.header("x-admin-token") {
            None => {
                return respond(
                    conn,
                    ctx,
                    401,
                    &[],
                    &error_body(
                        "unauthorized",
                        "this operator endpoint requires the X-Admin-Token header",
                    ),
                    false,
                )
            }
            Some(got) if !constant_time_eq(got.as_bytes(), expected.as_bytes()) => {
                return respond(
                    conn,
                    ctx,
                    403,
                    &[],
                    &error_body("forbidden", "X-Admin-Token does not match"),
                    false,
                )
            }
            Some(_) => {}
        }
    }
    let Ok(text) = std::str::from_utf8(&req.body) else {
        return respond(
            conn,
            ctx,
            400,
            &[],
            &error_body("bad_json", "request body is not UTF-8"),
            false,
        );
    };
    let token = req.header("x-admin-token");
    let order = placement::placement(name, &ctx.cfg.shards, ctx.cfg.replicas);
    let path = format!("/v1/models/{name}/swap");
    let mut reports: Vec<Value> = Vec::with_capacity(order.len());
    for &i in &order {
        let s = &ctx.shards[i];
        let result = HttpClient::connect_with(
            &s.addr,
            ClientConfig {
                connect_timeout: ctx.cfg.connect_timeout,
                request_deadline: ctx.cfg.rollout_deadline,
            },
        )
        .and_then(|mut client| {
            let headers: Vec<(&str, &str)> = token
                .map(|t| vec![("x-admin-token", t)])
                .unwrap_or_default();
            client.request_headers_deadline(
                "POST",
                &path,
                Some(text),
                &headers,
                ctx.cfg.rollout_deadline,
            )
        });
        let failure = match result {
            Ok(resp) if resp.status == 200 => {
                let version = resp
                    .json()
                    .ok()
                    .and_then(|v| v.get("version").and_then(Value::as_usize));
                let mut fields = vec![
                    ("addr", Value::String(s.addr.clone())),
                    ("swapped", Value::Bool(true)),
                ];
                if let Some(v) = version {
                    fields.push(("version", num(v as f64)));
                }
                reports.push(obj(fields));
                None
            }
            Ok(resp) => {
                reports.push(obj(vec![
                    ("addr", Value::String(s.addr.clone())),
                    ("swapped", Value::Bool(false)),
                    ("status", num(resp.status as f64)),
                    ("body", Value::String(resp.body.clone())),
                ]));
                Some(format!("shard {} answered {}", s.addr, resp.status))
            }
            Err(e) => {
                reports.push(obj(vec![
                    ("addr", Value::String(s.addr.clone())),
                    ("swapped", Value::Bool(false)),
                    ("error", Value::String(e.to_string())),
                ]));
                Some(format!("shard {} unreachable: {e}", s.addr))
            }
        };
        if let Some(why) = failure {
            ctx.counters.rollouts_failed.fetch_add(1, Ordering::Relaxed);
            let body = serde_json::to_string(&obj(vec![
                ("rolled_out", Value::Bool(false)),
                ("model", Value::String(name.into())),
                ("aborted_at", Value::String(s.addr.clone())),
                ("reason", Value::String(why)),
                ("shards", Value::Array(reports)),
            ]))
            .unwrap_or_default();
            return respond(conn, ctx, 502, &[], &body, false);
        }
    }
    ctx.counters.rollouts.fetch_add(1, Ordering::Relaxed);
    let body = serde_json::to_string(&obj(vec![
        ("rolled_out", Value::Bool(true)),
        ("model", Value::String(name.into())),
        ("shards", Value::Array(reports)),
    ]))
    .unwrap_or_default();
    respond(conn, ctx, 200, &[], &body, false)
}

/// Length-leaking but content-constant-time comparison for the admin
/// token (same contract as the shard-side gate).
fn constant_time_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    a.iter().zip(b).fold(0u8, |acc, (x, y)| acc | (x ^ y)) == 0
}

/// One shard's health-prober loop.
fn health_loop(ctx: &Ctx, shard_idx: usize) {
    let shard = &ctx.shards[shard_idx];
    let cfg = &ctx.cfg.health;
    while !ctx.shutdown.load(Ordering::Acquire) {
        let outcome = probe(&shard.addr, cfg.probe_timeout);
        let transition = lock(&shard.health).on_probe(cfg, outcome);
        match transition {
            HealthTransition::Recovered => {
                // A recovered shard gets a clean slate: without the reset,
                // the first real request would still be spent on the
                // breaker's half-open dance against a known-good shard.
                lock(&shard.breaker).reset();
                *lock(&shard.last_error) = None;
            }
            HealthTransition::WentDown => {
                // Pooled connections to a down shard are dead weight (and
                // would each cost a stale-retry on the next use).
                lock(&shard.pool).clear();
            }
            HealthTransition::None => {}
        }
        // Condvar sleep so shutdown interrupts the interval promptly.
        let guard = lock(&ctx.sleeper);
        if !ctx.shutdown.load(Ordering::Acquire) {
            let _ = ctx
                .sleeper_cv
                .wait_timeout(guard, cfg.probe_interval)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }
}

/// One health probe: fresh connection, `GET /healthz`, 200 means up.
fn probe(addr: &str, timeout: Duration) -> ProbeOutcome {
    let result = HttpClient::connect_with(
        addr,
        ClientConfig {
            connect_timeout: timeout,
            request_deadline: timeout,
        },
    )
    .and_then(|mut client| client.get("/healthz"));
    match result {
        Ok(resp) if resp.status == 200 => ProbeOutcome::Ok,
        _ => ProbeOutcome::Failed,
    }
}
