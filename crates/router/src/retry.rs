//! Retry pacing: exponential backoff with full-range jitter.
//!
//! The delay schedule is a pure function of `(config, attempt, rng)` so
//! tests can assert the exact sequence with a seeded RNG and no sleeps.
//! Jitter matters in a fleet: when a shard dies, every router worker that
//! was mid-request fails over at the same instant; un-jittered backoff
//! keeps them synchronized and they hammer the surviving replica in
//! waves.

use std::time::Duration;

/// Backoff schedule parameters.
#[derive(Debug, Clone)]
pub struct BackoffConfig {
    /// Delay before the first retry.
    pub base: Duration,
    /// Multiplier applied per subsequent retry.
    pub factor: f64,
    /// Ceiling on the un-jittered delay.
    pub max: Duration,
    /// Fraction of the delay randomized away: the final delay is uniform
    /// in `[delay * (1 - jitter), delay]`. `0.0` disables jitter.
    pub jitter: f64,
}

impl Default for BackoffConfig {
    fn default() -> Self {
        BackoffConfig {
            base: Duration::from_millis(25),
            factor: 2.0,
            max: Duration::from_millis(400),
            jitter: 0.5,
        }
    }
}

impl BackoffConfig {
    /// The un-jittered delay before retry number `attempt` (0-based):
    /// `min(base * factor^attempt, max)`.
    pub fn raw_delay(&self, attempt: u32) -> Duration {
        let factor = self.factor.max(1.0).powi(attempt.min(30) as i32);
        let ms = self.base.as_secs_f64() * 1e3 * factor;
        Duration::from_secs_f64((ms / 1e3).min(self.max.as_secs_f64()))
    }

    /// The jittered delay before retry number `attempt`, drawn from
    /// `rng`: uniform in `[raw * (1 - jitter), raw]`.
    pub fn delay(&self, attempt: u32, rng: &mut XorShift64) -> Duration {
        let raw = self.raw_delay(attempt).as_secs_f64();
        let jitter = self.jitter.clamp(0.0, 1.0);
        let lo = raw * (1.0 - jitter);
        Duration::from_secs_f64(lo + (raw - lo) * rng.next_f64())
    }
}

/// Tiny xorshift64 PRNG — the vendored `rand` shim is seeded-determinism
/// oriented too, but backoff only needs a few uniform draws per failure
/// and keeping the router dependency-light keeps it reusable.
#[derive(Debug, Clone)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Seeds the generator; a zero seed is remapped (xorshift fixes on 0).
    pub fn new(seed: u64) -> Self {
        XorShift64 {
            state: if seed == 0 {
                0x9e37_79b9_7f4a_7c15
            } else {
                seed
            },
        }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x
    }

    /// Uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits → the full f64 mantissa range.
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BackoffConfig {
        BackoffConfig {
            base: Duration::from_millis(10),
            factor: 2.0,
            max: Duration::from_millis(100),
            jitter: 0.5,
        }
    }

    #[test]
    fn raw_schedule_doubles_then_caps() {
        let c = cfg();
        let ms: Vec<u128> = (0..6).map(|a| c.raw_delay(a).as_millis()).collect();
        assert_eq!(ms, vec![10, 20, 40, 80, 100, 100]);
    }

    #[test]
    fn jittered_delay_stays_in_band_and_is_deterministic() {
        let c = cfg();
        let mut rng_a = XorShift64::new(42);
        let mut rng_b = XorShift64::new(42);
        for attempt in 0..8 {
            let d = c.delay(attempt, &mut rng_a);
            assert_eq!(d, c.delay(attempt, &mut rng_b), "same seed, same delay");
            let raw = c.raw_delay(attempt);
            assert!(d <= raw, "jitter never exceeds the raw delay");
            assert!(
                d.as_secs_f64() >= raw.as_secs_f64() * 0.5 - 1e-9,
                "jitter floor is raw * (1 - jitter)"
            );
        }
    }

    #[test]
    fn zero_jitter_reproduces_raw_schedule() {
        let c = BackoffConfig {
            jitter: 0.0,
            ..cfg()
        };
        let mut rng = XorShift64::new(7);
        for attempt in 0..6 {
            assert_eq!(c.delay(attempt, &mut rng), c.raw_delay(attempt));
        }
    }

    #[test]
    fn different_seeds_desynchronize() {
        let c = cfg();
        let mut a = XorShift64::new(1);
        let mut b = XorShift64::new(2);
        let delays_a: Vec<Duration> = (0..4).map(|i| c.delay(i, &mut a)).collect();
        let delays_b: Vec<Duration> = (0..4).map(|i| c.delay(i, &mut b)).collect();
        assert_ne!(delays_a, delays_b, "two routers must not retry in lockstep");
    }

    #[test]
    fn huge_attempt_counts_do_not_overflow() {
        let c = cfg();
        assert_eq!(c.raw_delay(1_000_000), Duration::from_millis(100));
    }

    #[test]
    fn rng_survives_zero_seed() {
        let mut rng = XorShift64::new(0);
        assert_ne!(rng.next_u64(), 0);
    }
}
