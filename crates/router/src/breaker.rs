//! Per-shard circuit breaker.
//!
//! A shard that answers every request with connect errors or 5xxs should
//! not keep eating a connect-timeout's worth of latency from every client
//! request routed at it. After `failure_threshold` consecutive failures
//! the breaker **opens** and the proxy path skips the shard outright;
//! after `cooldown` it lets exactly one trial request through
//! (**half-open**), and that trial's outcome decides between closing the
//! breaker and re-opening it for another cooldown.
//!
//! The state machine takes `now: Instant` explicitly on every transition,
//! so unit tests drive it with synthetic clocks — no sleeps, fully
//! deterministic.

use std::time::{Duration, Instant};

/// Breaker thresholds.
#[derive(Debug, Clone)]
pub struct BreakerConfig {
    /// Consecutive proxy failures that open the breaker.
    pub failure_threshold: u32,
    /// How long an open breaker rejects before allowing a half-open trial.
    pub cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 3,
            cooldown: Duration::from_millis(500),
        }
    }
}

/// Observable breaker state (reported on `GET /fleet`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: requests flow.
    Closed,
    /// Tripped: requests are skipped until the cooldown elapses.
    Open,
    /// Cooldown elapsed: one trial request is in flight.
    HalfOpen,
}

impl BreakerState {
    /// Lower-case name for wire reporting.
    pub fn name(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }
}

/// The circuit breaker for one shard.
#[derive(Debug)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    consecutive_failures: u32,
    /// `Some` while open or half-open: when the breaker tripped.
    opened_at: Option<Instant>,
    /// A half-open trial request is currently in flight.
    trial_inflight: bool,
    /// Times the breaker has opened (monotonic, for /fleet).
    opens: u64,
}

impl CircuitBreaker {
    /// A closed breaker with the given thresholds.
    pub fn new(cfg: BreakerConfig) -> Self {
        CircuitBreaker {
            cfg,
            consecutive_failures: 0,
            opened_at: None,
            trial_inflight: false,
            opens: 0,
        }
    }

    /// The state as of `now` (an open breaker whose cooldown has elapsed
    /// reports half-open).
    pub fn state(&self, now: Instant) -> BreakerState {
        match self.opened_at {
            None => BreakerState::Closed,
            Some(at) if self.trial_inflight || now.duration_since(at) >= self.cfg.cooldown => {
                BreakerState::HalfOpen
            }
            Some(_) => BreakerState::Open,
        }
    }

    /// Whether a request would currently be admitted, without acquiring
    /// the half-open trial slot. Used when ranking candidate replicas.
    pub fn would_allow(&self, now: Instant) -> bool {
        match self.opened_at {
            None => true,
            Some(at) => !self.trial_inflight && now.duration_since(at) >= self.cfg.cooldown,
        }
    }

    /// Admits or rejects one request. Half-open admission claims the
    /// single trial slot — concurrent callers get `false` until the trial
    /// resolves via [`CircuitBreaker::on_success`] /
    /// [`CircuitBreaker::on_failure`].
    pub fn try_acquire(&mut self, now: Instant) -> bool {
        match self.opened_at {
            None => true,
            Some(at) => {
                if !self.trial_inflight && now.duration_since(at) >= self.cfg.cooldown {
                    self.trial_inflight = true;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Reports a successful proxied request: closes the breaker and
    /// clears the failure streak.
    pub fn on_success(&mut self) {
        self.consecutive_failures = 0;
        self.opened_at = None;
        self.trial_inflight = false;
    }

    /// Reports a failed proxied request. A failed half-open trial
    /// re-opens immediately; in the closed state the breaker opens once
    /// the streak reaches the threshold.
    pub fn on_failure(&mut self, now: Instant) {
        if self.trial_inflight {
            self.trial_inflight = false;
            self.opened_at = Some(now);
            self.opens += 1;
            return;
        }
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
        if self.opened_at.is_none() && self.consecutive_failures >= self.cfg.failure_threshold {
            self.opened_at = Some(now);
            self.opens += 1;
        }
    }

    /// Forces the breaker closed — used when the health checker observes
    /// a shard recover, so the first real request is not burned on a
    /// half-open dance against a known-good shard.
    pub fn reset(&mut self) {
        self.on_success();
    }

    /// Current consecutive-failure streak.
    pub fn consecutive_failures(&self) -> u32 {
        self.consecutive_failures
    }

    /// Times the breaker has opened since construction.
    pub fn opens(&self) -> u64 {
        self.opens
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker() -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig {
            failure_threshold: 3,
            cooldown: Duration::from_millis(500),
        })
    }

    #[test]
    fn opens_after_threshold_consecutive_failures() {
        let t0 = Instant::now();
        let mut b = breaker();
        assert_eq!(b.state(t0), BreakerState::Closed);
        b.on_failure(t0);
        b.on_failure(t0);
        assert_eq!(b.state(t0), BreakerState::Closed, "below threshold");
        assert!(b.try_acquire(t0));
        b.on_failure(t0);
        assert_eq!(b.state(t0), BreakerState::Open);
        assert!(!b.try_acquire(t0), "open breaker rejects");
        assert_eq!(b.opens(), 1);
    }

    #[test]
    fn success_resets_the_streak() {
        let t0 = Instant::now();
        let mut b = breaker();
        b.on_failure(t0);
        b.on_failure(t0);
        b.on_success();
        b.on_failure(t0);
        b.on_failure(t0);
        assert_eq!(b.state(t0), BreakerState::Closed, "streak was reset");
    }

    #[test]
    fn half_open_after_cooldown_single_trial() {
        let t0 = Instant::now();
        let mut b = breaker();
        for _ in 0..3 {
            b.on_failure(t0);
        }
        let before = t0 + Duration::from_millis(499);
        let after = t0 + Duration::from_millis(500);
        assert!(!b.try_acquire(before), "still cooling down");
        assert!(b.would_allow(after));
        assert!(b.try_acquire(after), "cooldown elapsed: one trial admitted");
        assert_eq!(b.state(after), BreakerState::HalfOpen);
        assert!(!b.try_acquire(after), "second concurrent trial rejected");
        assert!(!b.would_allow(after), "trial slot is taken");
    }

    #[test]
    fn half_open_success_closes() {
        let t0 = Instant::now();
        let mut b = breaker();
        for _ in 0..3 {
            b.on_failure(t0);
        }
        let trial_at = t0 + Duration::from_millis(500);
        assert!(b.try_acquire(trial_at));
        b.on_success();
        assert_eq!(b.state(trial_at), BreakerState::Closed);
        assert!(b.try_acquire(trial_at));
        assert_eq!(b.consecutive_failures(), 0);
    }

    #[test]
    fn half_open_failure_reopens_for_another_cooldown() {
        let t0 = Instant::now();
        let mut b = breaker();
        for _ in 0..3 {
            b.on_failure(t0);
        }
        let trial_at = t0 + Duration::from_millis(500);
        assert!(b.try_acquire(trial_at));
        b.on_failure(trial_at);
        assert_eq!(b.state(trial_at), BreakerState::Open);
        assert_eq!(b.opens(), 2);
        assert!(
            !b.try_acquire(trial_at + Duration::from_millis(499)),
            "new cooldown counts from the failed trial"
        );
        assert!(b.try_acquire(trial_at + Duration::from_millis(500)));
    }

    #[test]
    fn reset_closes_an_open_breaker() {
        let t0 = Instant::now();
        let mut b = breaker();
        for _ in 0..3 {
            b.on_failure(t0);
        }
        assert_eq!(b.state(t0), BreakerState::Open);
        b.reset();
        assert_eq!(b.state(t0), BreakerState::Closed);
        assert!(b.try_acquire(t0));
    }
}
