//! Standalone `dcam-router` bootstrap: fronts a fleet of running
//! `dcam-server` shards until the process is killed.
//!
//! ```text
//! dcam_router --shard 127.0.0.1:7001 --shard 127.0.0.1:7002 \
//!     [--addr 127.0.0.1:0] [--replicas 2] [--conn-workers 2]
//!     [--max-attempts 4] [--request-deadline-ms 30000]
//!     [--upstream-timeout-ms 10000] [--connect-timeout-ms 2000]
//!     [--health-interval-ms 200] [--health-timeout-ms 500]
//!     [--health-fail-threshold 3] [--health-recovery-threshold 2]
//!     [--breaker-failures 3] [--breaker-cooldown-ms 500]
//!     [--admin-token TOKEN] [--port-file PATH] [--run-seconds N]
//! ```
//!
//! `--shard` is repeatable — one flag per shard address. `--port-file`
//! writes the bound address once the listener is up (the CI smoke job
//! reads it to find the ephemeral port). `--admin-token` gates the
//! fleet-rollout endpoint and is forwarded to the shards' swap gates.

use dcam_router::breaker::BreakerConfig;
use dcam_router::health::HealthConfig;
use dcam_router::{serve_router, RouterConfig};
use std::time::Duration;

fn arg_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Every value of a repeatable flag, in order.
fn arg_values(args: &[String], name: &str) -> Vec<String> {
    args.iter()
        .enumerate()
        .filter(|(_, a)| *a == name)
        .filter_map(|(i, _)| args.get(i + 1).cloned())
        .collect()
}

fn arg_parse<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T {
    arg_value(args, name)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn arg_ms(args: &[String], name: &str, default_ms: u64) -> Duration {
    Duration::from_millis(arg_parse(args, name, default_ms))
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let shards = arg_values(&args, "--shard");
    if shards.is_empty() {
        eprintln!("dcam_router needs at least one --shard host:port");
        std::process::exit(2);
    }
    let cfg = RouterConfig {
        addr: arg_value(&args, "--addr").unwrap_or_else(|| "127.0.0.1:0".into()),
        shards,
        replicas: arg_parse(&args, "--replicas", 2),
        conn_workers: arg_parse(&args, "--conn-workers", 2),
        max_attempts: arg_parse(&args, "--max-attempts", 4),
        request_deadline: arg_ms(&args, "--request-deadline-ms", 30_000),
        upstream_timeout: arg_ms(&args, "--upstream-timeout-ms", 10_000),
        connect_timeout: arg_ms(&args, "--connect-timeout-ms", 2_000),
        health: HealthConfig {
            probe_interval: arg_ms(&args, "--health-interval-ms", 200),
            probe_timeout: arg_ms(&args, "--health-timeout-ms", 500),
            fail_threshold: arg_parse(&args, "--health-fail-threshold", 3),
            recovery_threshold: arg_parse(&args, "--health-recovery-threshold", 2),
        },
        breaker: BreakerConfig {
            failure_threshold: arg_parse(&args, "--breaker-failures", 3),
            cooldown: arg_ms(&args, "--breaker-cooldown-ms", 500),
        },
        admin_token: arg_value(&args, "--admin-token"),
        ..RouterConfig::default()
    };
    let n_shards = cfg.shards.len();
    let router = serve_router(cfg).expect("bind router listener");
    let addr = router.addr();
    println!("dcam-router listening on http://{addr} ({n_shards} shards)");
    if let Some(path) = arg_value(&args, "--port-file") {
        std::fs::write(&path, addr.to_string()).expect("write port file");
    }

    let run_seconds: u64 = arg_parse(&args, "--run-seconds", 0);
    if run_seconds > 0 {
        std::thread::sleep(Duration::from_secs(run_seconds));
        router.shutdown();
    } else {
        // Serve until killed (SIGTERM/SIGINT from the operator or CI).
        loop {
            std::thread::sleep(Duration::from_secs(3600));
        }
    }
}
