//! Model → shard placement by rendezvous (highest-random-weight) hashing.
//!
//! Every router instance — and the operator script that decides which
//! `--model name=path` flags each shard boots with — computes the same
//! pure function of `(model name, shard address list)`, so placement
//! needs no coordination service and no shared state. Rendezvous hashing
//! has the property the fleet needs for robustness: removing one shard
//! from the list only remaps the models that shard hosted (their
//! replacement is the next-highest-scoring shard), and every other
//! model's replica set is untouched.

/// FNV-1a 64-bit hash (the same dependency-free hash the checkpoint
/// format uses for its payload checksum).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// splitmix64 finalizer: FNV-1a avalanches poorly (near-identical keys —
/// shard addresses differing in one port digit — land in the same region
/// of the u64 space, which collapses the rendezvous ranking onto one
/// shard), so the raw hash is pushed through a strong bit mixer.
fn mix64(mut h: u64) -> u64 {
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// Rendezvous score of one `(shard, model)` pair.
fn score(shard: &str, model: &str) -> u64 {
    let mut bytes = Vec::with_capacity(shard.len() + model.len() + 1);
    bytes.extend_from_slice(shard.as_bytes());
    // Separator outside UTF-8 so ("ab", "c") and ("a", "bc") differ.
    bytes.push(0xff);
    bytes.extend_from_slice(model.as_bytes());
    mix64(fnv1a(&bytes))
}

/// The replica set for `model` over `shards`: indices of the
/// `min(replicas, shards.len())` highest-scoring shards, best first. The
/// order is the failover order — the head is the model's "home" shard,
/// later entries absorb its traffic when it is down.
pub fn placement<S: AsRef<str>>(model: &str, shards: &[S], replicas: usize) -> Vec<usize> {
    let mut scored: Vec<(u64, usize)> = shards
        .iter()
        .enumerate()
        .map(|(i, s)| (score(s.as_ref(), model), i))
        .collect();
    // Descending by score; index breaks exact-score ties deterministically.
    scored.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    scored.truncate(replicas.max(1).min(shards.len()));
    scored.into_iter().map(|(_, i)| i).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SHARDS: [&str; 4] = [
        "127.0.0.1:7001",
        "127.0.0.1:7002",
        "127.0.0.1:7003",
        "127.0.0.1:7004",
    ];

    #[test]
    fn placement_is_deterministic_and_distinct() {
        for model in ["alpha", "beta", "default", "x"] {
            let a = placement(model, &SHARDS, 2);
            let b = placement(model, &SHARDS, 2);
            assert_eq!(a, b, "same inputs, same placement");
            assert_eq!(a.len(), 2);
            assert_ne!(a[0], a[1], "replicas land on distinct shards");
        }
    }

    #[test]
    fn replicas_clamped_to_fleet_size() {
        assert_eq!(placement("m", &SHARDS[..2], 5).len(), 2);
        assert_eq!(placement("m", &SHARDS, 0).len(), 1, "at least one");
    }

    /// The rendezvous property: dropping one shard only remaps models
    /// whose replica set contained it — everyone else keeps their exact
    /// placement (with indices shifted to the smaller list).
    #[test]
    fn removing_a_shard_only_remaps_its_own_models() {
        let removed = 2usize;
        let survivors: Vec<&str> = SHARDS
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != removed)
            .map(|(_, s)| *s)
            .collect();
        // Map old index → new index in the survivor list.
        let new_index = |old: usize| -> usize { old - usize::from(old > removed) };
        for m in 0..200 {
            let model = format!("model-{m}");
            let before = placement(&model, &SHARDS, 2);
            let after = placement(&model, &survivors, 2);
            if !before.contains(&removed) {
                let expected: Vec<usize> = before.iter().map(|&i| new_index(i)).collect();
                assert_eq!(
                    after, expected,
                    "model {model} did not host shard {removed}, its placement must not move"
                );
            } else {
                // The surviving replica stays in the set.
                for &i in before.iter().filter(|&&i| i != removed) {
                    assert!(
                        after.contains(&new_index(i)),
                        "model {model}: surviving replica must be retained"
                    );
                }
            }
        }
    }

    /// Models spread over the fleet instead of piling on one shard.
    #[test]
    fn load_spreads_across_shards() {
        let mut homes = [0usize; 4];
        for m in 0..400 {
            homes[placement(&format!("model-{m}"), &SHARDS, 2)[0]] += 1;
        }
        for (i, &count) in homes.iter().enumerate() {
            assert!(
                count > 40,
                "shard {i} homes {count}/400 models — distribution collapsed: {homes:?}"
            );
        }
    }
}
