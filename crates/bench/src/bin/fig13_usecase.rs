//! Figure 13: the surgeon-skills use case on the JIGSAWS-like simulator
//! (§5.8).
//!
//! The paper trains dCNN on surgical kinematics (76 sensors, skill classes
//! novice/intermediate/expert), then explains the novice class:
//! (b) per-instance dCAM heatmaps, (c) box-plots of the maximal activation
//! per sensor, (d) averaged activation per sensor per gesture. Their
//! findings: gripper-angle and rotation-matrix sensors during gestures G6
//! and G9 discriminate novices; velocities do not.
//!
//! Our simulator *plants* exactly that structure (see
//! `dcam_series::synth::jigsaws`), so this binary verifies that dCAM
//! recovers it: the top-ranked sensors must be the planted discriminant
//! ones and the hottest gesture windows must be G6/G9.
//!
//! Run: `cargo run --release -p dcam-bench --bin fig13_usecase -- [--quick|--full]`

use dcam::aggregate::{max_activation_distribution, mean_activation_per_window, rank_dimensions};
use dcam::dcam::{compute_dcam, DcamConfig};
use dcam::model::ArchKind;
use dcam::train::{build_and_train, Protocol};
use dcam::ModelScale;
use dcam_bench::harness::{parse_scale, write_json, RunScale};
use dcam_eval::{dr_acc, dr_acc_random};
use dcam_series::synth::jigsaws::{
    generate, sensor_name, JigsawsConfig, DISCRIMINANT_GESTURES, N_GESTURES,
};
use serde::Serialize;

#[derive(Serialize)]
struct UseCaseResult {
    c_acc_val: f32,
    mean_ng_ratio: f32,
    dr_acc_mean: f32,
    dr_acc_random: f32,
    top_sensors: Vec<(String, f32)>,
    top_sensor_hit_rate: f32,
    gesture_activation: Vec<f32>,
    hottest_gestures: Vec<usize>,
}

fn main() {
    let scale = parse_scale();
    let (cfg, k, n_explain, model_scale, epochs) = match scale {
        RunScale::Quick => (
            JigsawsConfig {
                n_groups: 1,
                gesture_len: 10,
                n_per_class: [14, 8, 8],
                seed: 5,
            },
            16usize,
            6usize,
            ModelScale::Tiny,
            30usize,
        ),
        RunScale::Full => (
            JigsawsConfig {
                n_groups: 4,
                gesture_len: 16,
                n_per_class: [19, 10, 10],
                seed: 5,
            },
            60,
            12,
            ModelScale::Small,
            50,
        ),
    };

    println!(
        "=== Figure 13: surgeon skills use case ({}) ===",
        scale.name()
    );
    let data = generate(&cfg);
    let ds = &data.dataset;
    println!(
        "simulated JIGSAWS: {} instances, {} sensors, {} points ({} gestures)",
        ds.len(),
        ds.n_dims(),
        ds.series_len(),
        N_GESTURES
    );

    // Train dCNN, as the paper does for this use case.
    let protocol = Protocol {
        epochs,
        patience: epochs / 2,
        seed: 3,
        ..Default::default()
    };
    let (mut clf, outcome) = build_and_train(ArchKind::DCnn, ds, model_scale, &protocol);
    println!("dCNN validation accuracy: {:.2}", outcome.val_acc);

    // dCAM for the novice class C_N on novice instances.
    let gap = clf.as_gap_mut().expect("dCNN");
    let dcam_cfg = DcamConfig {
        k,
        seed: 19,
        ..Default::default()
    };
    let novice = ds.class_indices(0);
    let mut maps = Vec::new();
    let mut ngs = Vec::new();
    let mut drs = Vec::new();
    let mut randoms = Vec::new();
    for &i in novice.iter().take(n_explain) {
        let result = compute_dcam(gap, &ds.samples[i], 0, &dcam_cfg);
        ngs.push(result.ng_ratio());
        if let Some(mask) = &ds.masks[i] {
            drs.push(dr_acc(&result.dcam, mask.tensor()));
            randoms.push(dr_acc_random(mask.tensor()));
        }
        maps.push(result.dcam);
    }
    let mean_ng = ngs.iter().sum::<f32>() / ngs.len().max(1) as f32;
    let dr_mean = drs.iter().sum::<f32>() / drs.len().max(1) as f32;
    let rnd = randoms.iter().sum::<f32>() / randoms.len().max(1) as f32;
    println!("mean ng/k = {mean_ng:.2}; Dr-acc vs planted truth = {dr_mean:.3} (random {rnd:.3})");

    // Fig. 13(c): distribution of max activation per sensor.
    let dist = max_activation_distribution(&maps);
    let ranked = rank_dimensions(&maps);
    println!("\ntop 10 sensors by mean max activation (Fig. 13(c)):");
    let top: Vec<(String, f32)> = ranked
        .iter()
        .take(10)
        .map(|&(dim, v)| (sensor_name(dim), v))
        .collect();
    for (name, v) in &top {
        println!("  {name:<28} {v:.4}");
    }
    // How many of the top-|planted| sensors are actually planted?
    let planted: std::collections::HashSet<usize> =
        data.discriminant_dims.iter().copied().collect();
    let n_planted = planted.len().min(ranked.len());
    let hits = ranked
        .iter()
        .take(n_planted)
        .filter(|(dim, _)| planted.contains(dim))
        .count();
    let hit_rate = hits as f32 / n_planted as f32;
    println!(
        "\nplanted-sensor recovery: {hits}/{n_planted} of the top-{n_planted} sensors are planted ({:.0}%)",
        hit_rate * 100.0
    );
    // Also report the least-activated kind (paper: velocities not discriminant).
    let median_of = |dim: usize| dist[dim].median;
    let worst = ranked
        .last()
        .map(|&(dim, _)| sensor_name(dim))
        .unwrap_or_default();
    println!(
        "least discriminant sensor: {worst} (median max act {:.4})",
        {
            let dim = ranked.last().unwrap().0;
            median_of(dim)
        }
    );

    // Fig. 13(d): average activation per gesture window.
    let windows = data.gesture_windows.clone();
    let per_window = mean_activation_per_window(&maps, &windows);
    let d = ds.n_dims();
    let mut gesture_score = vec![0.0f32; windows.len()];
    for gi in 0..windows.len() {
        for dim in 0..d {
            gesture_score[gi] += per_window.at(&[dim, gi]).unwrap() / d as f32;
        }
    }
    println!("\nmean activation per gesture (Fig. 13(d)):");
    for (gi, v) in gesture_score.iter().enumerate() {
        let marker = if DISCRIMINANT_GESTURES.contains(&gi) {
            "  <- planted (G6/G9)"
        } else {
            ""
        };
        println!("  G{:<2} {v:>8.4}{marker}", gi + 1);
    }
    let mut order: Vec<usize> = (0..gesture_score.len()).collect();
    order.sort_by(|&a, &b| {
        gesture_score[b]
            .partial_cmp(&gesture_score[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let hottest: Vec<usize> = order.iter().take(2).copied().collect();
    println!(
        "hottest gestures: {:?} (planted: {:?})",
        hottest
            .iter()
            .map(|g| format!("G{}", g + 1))
            .collect::<Vec<_>>(),
        DISCRIMINANT_GESTURES
            .iter()
            .map(|g| format!("G{}", g + 1))
            .collect::<Vec<_>>()
    );

    write_json(
        "fig13_usecase",
        scale,
        &UseCaseResult {
            c_acc_val: outcome.val_acc,
            mean_ng_ratio: mean_ng,
            dr_acc_mean: dr_mean,
            dr_acc_random: rnd,
            top_sensors: top,
            top_sensor_hit_rate: hit_rate,
            gesture_activation: gesture_score,
            hottest_gestures: hottest,
        },
    );
}
