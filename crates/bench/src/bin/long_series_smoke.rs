//! Long-series smoke check: an explanation computed under the fft
//! convolution strategy must rank dimensions the same way the direct
//! sliding-window strategy does.
//!
//! The fft path reassociates every inner product through the frequency
//! domain, so bit-identical CAMs are off the table — but dCAM's *product*
//! is a per-dimension importance ranking, and that must be invariant to
//! execution strategy. This binary generates the EigenWorms stand-in at
//! n = 16384 (the UEA archive's canonically long dataset, the workload the
//! fft strategy exists for), re-runs itself as two child processes with
//! `DCAM_CONV_STRATEGY=fft` and `=direct` (the env override is latched
//! once per process, so separate processes are the honest way to compare
//! pins), and asserts the top-k per-dimension rankings agree.
//!
//! CI runs this from the `long-series-smoke` job; locally:
//! `cargo run --release -p dcam-bench --bin long_series_smoke`.

use dcam::arch::{cnn, InputEncoding, ModelScale};
use dcam::dcam::{compute_dcam, DcamConfig};
use dcam_series::synth::uea;
use dcam_tensor::SeededRng;

/// Dimensions whose ranking must agree between the two strategies. All 6
/// EigenWorms dimensions are ranked; the comparison stops at 3 because the
/// trailing ranks separate near-zero importance scores whose order is
/// legitimately float-noise.
const TOP_K: usize = 3;
const SERIES_LEN: usize = 16384;
const DIMS: usize = 6;

/// Child mode: one explanation under whatever `DCAM_CONV_STRATEGY` the
/// parent pinned; prints the per-dimension importance scores.
fn explain() {
    let meta = uea::meta("EigenWorms").expect("EigenWorms stand-in metadata");
    let data = uea::generate(
        meta,
        &uea::UeaStandInConfig {
            n_per_class: 1,
            max_len: SERIES_LEN,
            max_dims: DIMS,
            seed: 7,
        },
    );
    let series = &data.samples[0];
    assert_eq!((series.n_dims(), series.len()), (DIMS, SERIES_LEN));

    // Both children build from the same seed, so the weights are
    // identical and only the convolution strategy differs.
    let mut model = cnn(
        InputEncoding::Dcnn,
        DIMS,
        data.n_classes,
        ModelScale::Tiny,
        &mut SeededRng::new(42),
    );
    let cfg = DcamConfig {
        k: 4,
        only_correct: false,
        seed: 9,
        ..Default::default()
    };
    let result = compute_dcam(&mut model, series, data.labels[0], &cfg);
    let (d, n) = (DIMS, SERIES_LEN);
    assert_eq!(result.dcam.dims(), &[d, n]);
    let scores: Vec<String> = (0..d)
        .map(|row| {
            let s: f32 = result.dcam.data()[row * n..(row + 1) * n]
                .iter()
                .map(|v| v.abs())
                .sum::<f32>()
                / n as f32;
            format!("{s:.6e}")
        })
        .collect();
    println!("{}", scores.join(" "));
}

fn run_child(strategy: &str) -> Vec<f32> {
    let out = std::process::Command::new(std::env::current_exe().expect("current exe"))
        .arg("--explain")
        .env("DCAM_CONV_STRATEGY", strategy)
        .output()
        .expect("spawn child explain process");
    assert!(
        out.status.success(),
        "child explain under {strategy} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    let scores: Vec<f32> = text
        .split_whitespace()
        .map(|t| t.parse().expect("score"))
        .collect();
    assert_eq!(
        scores.len(),
        DIMS,
        "child under {strategy} printed {text:?}"
    );
    scores
}

/// Dimension indices sorted by descending importance.
fn ranking(scores: &[f32]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]));
    idx
}

fn main() {
    if std::env::args().any(|a| a == "--explain") {
        explain();
        return;
    }
    eprintln!("long-series smoke: n = {SERIES_LEN}, D = {DIMS}, EigenWorms stand-in");
    let fft = run_child("fft");
    let direct = run_child("direct");
    let rank_fft = ranking(&fft);
    let rank_direct = ranking(&direct);
    eprintln!("fft    scores {fft:?} ranking {rank_fft:?}");
    eprintln!("direct scores {direct:?} ranking {rank_direct:?}");
    assert_eq!(
        &rank_fft[..TOP_K],
        &rank_direct[..TOP_K],
        "top-{TOP_K} per-dimension rankings diverged between fft and direct"
    );
    // The scores themselves must agree too, not just their order.
    for (i, (f, d)) in fft.iter().zip(&direct).enumerate() {
        assert!(
            (f - d).abs() <= 1e-3 * f.abs().max(d.abs()).max(1e-6),
            "dimension {i}: fft score {f} vs direct {d}"
        );
    }
    println!("long-series smoke OK: top-{TOP_K} rankings agree");
}
