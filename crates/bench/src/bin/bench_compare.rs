//! Perf-smoke regression gate: compares a freshly measured
//! `BENCH_micro.json` against the committed baseline and fails (exit 1) if
//! any tracked metric regresses by more than the threshold.
//!
//! Usage:
//! `bench_compare <baseline.json> <candidate.json> [--max-regress 0.30]`
//!
//! Tracked metrics (matched structurally, so reordered rows still compare):
//!
//! * `matmul[n].new_gflops`              — higher is better
//! * `conv[shape].im2col_fwd_ns`         — lower is better
//! * `conv[shape].im2col_bwd_ns`         — lower is better
//! * `dcam.new_ms`                       — lower is better
//! * `dcam_many[n_instances].many_ms`    — lower is better
//! * `eval[n_instances].harness_ms`      — lower is better
//! * `eval[n_instances].batched_classify_ms` — lower is better
//! * `analyze[series_len].dtw_pairs_per_s` — higher is better
//! * `analyze[series_len].dba_iter_ms`   — lower is better
//! * `analyze[series_len].mine_ms`       — lower is better
//! * `service[n_submitters].throughput_rps` — higher is better
//! * `server[conn_workers].throughput_rps`  — higher is better
//! * `registry[active_models].throughput_rps` — higher is better
//! * `registry[active_models].swap_stall_p99_ms` — lower is better
//!   (only on rows that measure it, i.e. a positive baseline value)
//! * `router[shards].throughput_rps` — higher is better
//! * `router[shards].failover_stall_p99_ms` — lower is better
//!   (only on rows that stage a kill, i.e. a positive baseline value)
//!
//! Metrics present only in the candidate are reported but not compared
//! (new benchmarks must not fail the first run that introduces them);
//! metrics missing from the candidate fail the gate.

use serde::Value;
use std::process::ExitCode;

struct Metric {
    name: String,
    baseline: f64,
    /// True when larger values are better (throughput-style metrics).
    higher_is_better: bool,
}

fn field<'a>(v: &'a Value, key: &str) -> Option<&'a Value> {
    match v {
        Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
        _ => None,
    }
}

fn number(v: &Value, key: &str) -> Option<f64> {
    match field(v, key) {
        Some(Value::Number(n)) => Some(*n),
        _ => None,
    }
}

fn rows<'a>(v: &'a Value, key: &str) -> Vec<&'a Value> {
    match field(v, key) {
        Some(Value::Array(items)) => items.iter().collect(),
        _ => Vec::new(),
    }
}

/// Finds the row of `rows` whose identity fields all match `want`.
fn matching_row<'a>(rows: &[&'a Value], want: &[(&str, f64)]) -> Option<&'a Value> {
    rows.iter()
        .copied()
        .find(|row| want.iter().all(|(k, v)| number(row, k) == Some(*v)))
}

fn tracked_metrics(report: &Value) -> Vec<Metric> {
    let mut out = Vec::new();
    for row in rows(report, "matmul") {
        if let (Some(n), Some(gf)) = (number(row, "n"), number(row, "new_gflops")) {
            out.push(Metric {
                name: format!("matmul[{n}].new_gflops"),
                baseline: gf,
                higher_is_better: true,
            });
        }
    }
    for row in rows(report, "conv") {
        let id: Vec<String> = ["c_in", "c_out", "h", "w"]
            .iter()
            .filter_map(|k| number(row, k).map(|v| format!("{v}")))
            .collect();
        let shape = id.join("x");
        for key in ["im2col_fwd_ns", "im2col_bwd_ns"] {
            if let Some(v) = number(row, key) {
                out.push(Metric {
                    name: format!("conv[{shape}].{key}"),
                    baseline: v,
                    higher_is_better: false,
                });
            }
        }
    }
    for row in rows(report, "conv_long") {
        let Some(w) = number(row, "w") else {
            continue;
        };
        if let Some(v) = number(row, "fft_fwd_us") {
            out.push(Metric {
                name: format!("conv_long[{w}].fft_fwd_us"),
                baseline: v,
                higher_is_better: false,
            });
        }
        if let Some(v) = number(row, "fft_bwd_us") {
            out.push(Metric {
                name: format!("conv_long[{w}].fft_bwd_us"),
                baseline: v,
                higher_is_better: false,
            });
        }
    }
    if let Some(gemm_i8) = field(report, "gemm_i8") {
        if let Some(v) = number(gemm_i8, "i8_us") {
            out.push(Metric {
                name: "gemm_i8.i8_us".into(),
                baseline: v,
                higher_is_better: false,
            });
        }
    }
    if let Some(dcam) = field(report, "dcam") {
        if let Some(v) = number(dcam, "new_ms") {
            out.push(Metric {
                name: "dcam.new_ms".into(),
                baseline: v,
                higher_is_better: false,
            });
        }
    }
    if let Some(dcam_int8) = field(report, "dcam_int8") {
        if let Some(v) = number(dcam_int8, "int8_ms") {
            out.push(Metric {
                name: "dcam_int8.int8_ms".into(),
                baseline: v,
                higher_is_better: false,
            });
        }
    }
    for row in rows(report, "dcam_many") {
        if let (Some(n), Some(v)) = (number(row, "n_instances"), number(row, "many_ms")) {
            out.push(Metric {
                name: format!("dcam_many[{n}].many_ms"),
                baseline: v,
                higher_is_better: false,
            });
        }
    }
    for row in rows(report, "eval") {
        let Some(n) = number(row, "n_instances") else {
            continue;
        };
        for key in ["harness_ms", "batched_classify_ms"] {
            if let Some(v) = number(row, key) {
                out.push(Metric {
                    name: format!("eval[{n}].{key}"),
                    baseline: v,
                    higher_is_better: false,
                });
            }
        }
    }
    for row in rows(report, "analyze") {
        let Some(l) = number(row, "series_len") else {
            continue;
        };
        if let Some(v) = number(row, "dtw_pairs_per_s") {
            out.push(Metric {
                name: format!("analyze[{l}].dtw_pairs_per_s"),
                baseline: v,
                higher_is_better: true,
            });
        }
        for key in ["dba_iter_ms", "mine_ms"] {
            if let Some(v) = number(row, key) {
                out.push(Metric {
                    name: format!("analyze[{l}].{key}"),
                    baseline: v,
                    higher_is_better: false,
                });
            }
        }
    }
    for row in rows(report, "service") {
        if let (Some(n), Some(v)) = (number(row, "n_submitters"), number(row, "throughput_rps")) {
            out.push(Metric {
                name: format!("service[{n}].throughput_rps"),
                baseline: v,
                higher_is_better: true,
            });
        }
    }
    for row in rows(report, "server") {
        if let (Some(w), Some(v)) = (number(row, "conn_workers"), number(row, "throughput_rps")) {
            out.push(Metric {
                name: format!("server[{w}].throughput_rps"),
                baseline: v,
                higher_is_better: true,
            });
        }
    }
    for row in rows(report, "registry") {
        let Some(m) = number(row, "active_models") else {
            continue;
        };
        if let Some(v) = number(row, "throughput_rps") {
            out.push(Metric {
                name: format!("registry[{m}].throughput_rps"),
                baseline: v,
                higher_is_better: true,
            });
        }
        // The baseline row reports 0 (no swap happens there); only rows
        // that actually measure the stall are tracked.
        if let Some(v) = number(row, "swap_stall_p99_ms").filter(|&v| v > 0.0) {
            out.push(Metric {
                name: format!("registry[{m}].swap_stall_p99_ms"),
                baseline: v,
                higher_is_better: false,
            });
        }
    }
    for row in rows(report, "router") {
        let Some(s) = number(row, "shards") else {
            continue;
        };
        if let Some(v) = number(row, "throughput_rps") {
            out.push(Metric {
                name: format!("router[{s}].throughput_rps"),
                baseline: v,
                higher_is_better: true,
            });
        }
        // The proxy-overhead baseline row reports 0 (nothing is killed
        // there); only rows that actually stage a failover are tracked.
        if let Some(v) = number(row, "failover_stall_p99_ms").filter(|&v| v > 0.0) {
            out.push(Metric {
                name: format!("router[{s}].failover_stall_p99_ms"),
                baseline: v,
                higher_is_better: false,
            });
        }
    }
    out
}

/// Looks the metric's current value up in the candidate report by the same
/// structural path used to enumerate it.
fn candidate_value(report: &Value, name: &str) -> Option<f64> {
    if let Some(rest) = name.strip_prefix("matmul[") {
        let (n, key) = rest.split_once("].")?;
        return number(
            matching_row(&rows(report, "matmul"), &[("n", n.parse().ok()?)])?,
            key,
        );
    }
    if let Some(rest) = name.strip_prefix("conv[") {
        let (shape, key) = rest.split_once("].")?;
        let dims: Vec<f64> = shape.split('x').filter_map(|v| v.parse().ok()).collect();
        let want: Vec<(&str, f64)> = ["c_in", "c_out", "h", "w"].into_iter().zip(dims).collect();
        return number(matching_row(&rows(report, "conv"), &want)?, key);
    }
    if let Some(rest) = name.strip_prefix("conv_long[") {
        let (w, key) = rest.split_once("].")?;
        return number(
            matching_row(&rows(report, "conv_long"), &[("w", w.parse().ok()?)])?,
            key,
        );
    }
    if let Some(key) = name.strip_prefix("gemm_i8.") {
        return number(field(report, "gemm_i8")?, key);
    }
    if let Some(key) = name.strip_prefix("dcam.") {
        return number(field(report, "dcam")?, key);
    }
    if let Some(key) = name.strip_prefix("dcam_int8.") {
        return number(field(report, "dcam_int8")?, key);
    }
    if let Some(rest) = name.strip_prefix("dcam_many[") {
        let (n, key) = rest.split_once("].")?;
        return number(
            matching_row(
                &rows(report, "dcam_many"),
                &[("n_instances", n.parse().ok()?)],
            )?,
            key,
        );
    }
    if let Some(rest) = name.strip_prefix("eval[") {
        let (n, key) = rest.split_once("].")?;
        return number(
            matching_row(&rows(report, "eval"), &[("n_instances", n.parse().ok()?)])?,
            key,
        );
    }
    if let Some(rest) = name.strip_prefix("analyze[") {
        let (l, key) = rest.split_once("].")?;
        return number(
            matching_row(&rows(report, "analyze"), &[("series_len", l.parse().ok()?)])?,
            key,
        );
    }
    if let Some(rest) = name.strip_prefix("service[") {
        let (n, key) = rest.split_once("].")?;
        return number(
            matching_row(
                &rows(report, "service"),
                &[("n_submitters", n.parse().ok()?)],
            )?,
            key,
        );
    }
    if let Some(rest) = name.strip_prefix("registry[") {
        let (m, key) = rest.split_once("].")?;
        return number(
            matching_row(
                &rows(report, "registry"),
                &[("active_models", m.parse().ok()?)],
            )?,
            key,
        );
    }
    if let Some(rest) = name.strip_prefix("server[") {
        let (w, key) = rest.split_once("].")?;
        return number(
            matching_row(
                &rows(report, "server"),
                &[("conn_workers", w.parse().ok()?)],
            )?,
            key,
        );
    }
    if let Some(rest) = name.strip_prefix("router[") {
        let (s, key) = rest.split_once("].")?;
        return number(
            matching_row(&rows(report, "router"), &[("shards", s.parse().ok()?)])?,
            key,
        );
    }
    None
}

fn load(path: &str) -> Value {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    serde_json::parse(&text).unwrap_or_else(|e| panic!("cannot parse {path}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let mut max_regress = 0.30f64;
    let mut files = Vec::new();
    let mut it = args.iter().skip(1);
    while let Some(a) = it.next() {
        if a == "--max-regress" {
            max_regress = it
                .next()
                .and_then(|v| v.parse().ok())
                .expect("--max-regress needs a fraction, e.g. 0.30");
        } else {
            files.push(a.clone());
        }
    }
    let [baseline_path, candidate_path] = files.as_slice() else {
        eprintln!("usage: bench_compare <baseline.json> <candidate.json> [--max-regress 0.30]");
        return ExitCode::from(2);
    };
    let baseline = load(baseline_path);
    let candidate = load(candidate_path);

    let mut failures = 0usize;
    println!(
        "{:<42} {:>12} {:>12} {:>9}  verdict (allowed regression {:.0}%)",
        "metric",
        "baseline",
        "candidate",
        "change",
        max_regress * 100.0
    );
    for m in tracked_metrics(&baseline) {
        let Some(cand) = candidate_value(&candidate, &m.name) else {
            println!(
                "{:<42} {:>12.3} {:>12} {:>9}  FAIL (metric missing)",
                m.name, m.baseline, "-", "-"
            );
            failures += 1;
            continue;
        };
        // Positive change = improvement in the metric's own direction.
        let change = if m.higher_is_better {
            cand / m.baseline - 1.0
        } else {
            m.baseline / cand - 1.0
        };
        let regressed = change < -max_regress;
        println!(
            "{:<42} {:>12.3} {:>12.3} {:>+8.1}%  {}",
            m.name,
            m.baseline,
            cand,
            change * 100.0,
            if regressed { "FAIL" } else { "ok" }
        );
        if regressed {
            failures += 1;
        }
    }
    // Informational: new metrics only in the candidate.
    for m in tracked_metrics(&candidate) {
        if candidate_value(&baseline, &m.name).is_none() {
            println!(
                "{:<42} {:>12} {:>12.3} {:>9}  new (not compared)",
                m.name, "-", m.baseline, "-"
            );
        }
    }

    if failures > 0 {
        eprintln!(
            "bench_compare: {failures} tracked metric(s) regressed more than {:.0}%",
            max_regress * 100.0
        );
        ExitCode::FAILURE
    } else {
        println!("bench_compare: all tracked metrics within budget");
        ExitCode::SUCCESS
    }
}
