//! Figure 11: the coupling between classification accuracy (`C-acc`),
//! explanation accuracy (`Dr-acc`) and the correctly-classified-permutation
//! ratio `n_g/k` (§5.6).
//!
//! Paper shape being reproduced: (1) `Dr-acc` grows with `C-acc`
//! (log-like), (2) `n_g/k` grows with `Dr-acc`, (3) `n_g/k` is roughly
//! linear in `C-acc` for accurate models — so `n_g/k` works as a label-free
//! proxy for explanation quality.
//!
//! Model quality is varied by training each d-architecture with several
//! epoch budgets (under-trained → converged), mirroring the paper's spread
//! of model accuracies across datasets.
//!
//! Run: `cargo run --release -p dcam-bench --bin fig11 -- [--quick|--full]`

use dcam::dcam::{compute_dcam, DcamConfig};
use dcam::model::ArchKind;
use dcam::train::{build_and_train, test_accuracy, Protocol};
use dcam::ModelScale;
use dcam_bench::harness::{parse_scale, write_json, RunScale};
use dcam_eval::dr_acc;
use dcam_series::synth::inject::{generate, DatasetType, InjectConfig};
use dcam_series::synth::seeds::SeedKind;
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    method: String,
    dataset_type: String,
    dims: usize,
    epochs: usize,
    c_acc: f32,
    dr_acc: f32,
    ng_ratio: f32,
}

fn main() {
    let scale = parse_scale();
    let (dims_grid, epoch_budgets, n_instances, k, model_scale) = match scale {
        RunScale::Quick => (
            vec![6usize],
            vec![2usize, 8, 25],
            4usize,
            24usize,
            ModelScale::Small,
        ),
        RunScale::Full => (
            vec![10, 20, 40],
            vec![2, 5, 10, 20, 40, 80],
            10,
            100,
            ModelScale::Small,
        ),
    };
    let methods = [ArchKind::DCnn, ArchKind::DResNet, ArchKind::DInceptionTime];

    let mut points: Vec<Point> = Vec::new();
    println!(
        "=== Figure 11: C-acc vs Dr-acc vs ng/k ({}) ===",
        scale.name()
    );
    println!(
        "{:<14}{:<8}{:>4}{:>8} | {:>7} {:>7} {:>7}",
        "method", "type", "D", "epochs", "C-acc", "Dr-acc", "ng/k"
    );

    for dataset_type in [DatasetType::Type1, DatasetType::Type2] {
        for &d in &dims_grid {
            let mut cfg = InjectConfig::new(SeedKind::StarLight, dataset_type, d);
            cfg.n_per_class = 50;
            cfg.series_len = 64;
            cfg.pattern_len = 16;
            cfg.amplitude = 2.0;
            cfg.seed = 41;
            let train_ds = generate(&cfg);
            let mut test_cfg = cfg.clone();
            test_cfg.seed = 1041;
            test_cfg.n_per_class = 10;
            let test_ds = generate(&test_cfg);

            for kind in methods {
                for &epochs in &epoch_budgets {
                    let protocol = Protocol {
                        epochs,
                        patience: epochs,
                        seed: 23,
                        ..Default::default()
                    };
                    let (mut clf, _) = build_and_train(kind, &train_ds, model_scale, &protocol);
                    let c_acc = test_accuracy(&mut clf, &test_ds, 8);

                    let gap = clf.as_gap_mut().expect("d-architecture");
                    let dcam_cfg = DcamConfig {
                        k,
                        seed: 29,
                        ..Default::default()
                    };
                    let mut drs = Vec::new();
                    let mut ngs = Vec::new();
                    for &i in test_ds.class_indices(1).iter().take(n_instances) {
                        let mask = test_ds.masks[i].as_ref().unwrap();
                        let result = compute_dcam(gap, &test_ds.samples[i], 1, &dcam_cfg);
                        drs.push(dr_acc(&result.dcam, mask.tensor()));
                        ngs.push(result.ng_ratio());
                    }
                    let dr = drs.iter().sum::<f32>() / drs.len().max(1) as f32;
                    let ng = ngs.iter().sum::<f32>() / ngs.len().max(1) as f32;
                    println!(
                        "{:<14}{:<8}{:>4}{:>8} | {:>7.2} {:>7.3} {:>7.2}",
                        kind.name(),
                        dataset_type.name(),
                        d,
                        epochs,
                        c_acc,
                        dr,
                        ng
                    );
                    points.push(Point {
                        method: kind.name().to_string(),
                        dataset_type: dataset_type.name().to_string(),
                        dims: d,
                        epochs,
                        c_acc,
                        dr_acc: dr,
                        ng_ratio: ng,
                    });
                }
            }
        }
    }

    // Correlations over the pooled points (the trends of Fig. 11 panels).
    let corr = |xs: &[f32], ys: &[f32]| -> f32 {
        let n = xs.len() as f32;
        let mx = xs.iter().sum::<f32>() / n;
        let my = ys.iter().sum::<f32>() / n;
        let cov: f32 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
        let vx: f32 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
        let vy: f32 = ys.iter().map(|y| (y - my) * (y - my)).sum();
        if vx <= 0.0 || vy <= 0.0 {
            0.0
        } else {
            cov / (vx.sqrt() * vy.sqrt())
        }
    };
    let c: Vec<f32> = points.iter().map(|p| p.c_acc).collect();
    let dr: Vec<f32> = points.iter().map(|p| p.dr_acc).collect();
    let ng: Vec<f32> = points.iter().map(|p| p.ng_ratio).collect();
    println!("\ncorr(C-acc, Dr-acc) = {:.3}", corr(&c, &dr));
    println!("corr(ng/k,  Dr-acc) = {:.3}", corr(&ng, &dr));
    println!("corr(C-acc, ng/k)   = {:.3}", corr(&c, &ng));

    write_json("fig11", scale, &points);
}
