//! Table 2 + Figure 8: classification accuracy of all 13 methods over the
//! UCR/UEA multivariate archive (synthetic stand-ins; see DESIGN.md §1).
//!
//! Paper shape being reproduced (§5.3):
//! * recurrent baselines trail CNN-based models;
//! * c-variants lose accuracy relative to their plain counterparts;
//! * d-variants match or beat their plain counterparts (dResNet best rank);
//! * MTEX-CNN lands near cCNN.
//!
//! Run: `cargo run --release -p dcam-bench --bin table2 -- [--quick|--full]`

use dcam::model::ArchKind;
use dcam::train::{build_and_train, test_accuracy, Protocol};
use dcam::ModelScale;
use dcam_bench::harness::{cell, parse_scale, timed, write_json, RunScale};
use dcam_eval::average_ranks;
use dcam_series::synth::uea::{generate, UeaStandInConfig, UEA_DATASETS};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    dataset: String,
    n_classes: usize,
    series_len: usize,
    n_dims: usize,
    accuracies: Vec<f32>,
    train_secs: f64,
}

/// Quick-mode subset: spread of |C|, |T| and D across the archive.
const QUICK_SUBSET: [&str; 8] = [
    "RacketSports",
    "BasicMotions",
    "Libras",
    "AtrialFibrillation",
    "NATOPS",
    "LSST",
    "FingerMovements",
    "SelfRegulationSCP2",
];

fn main() {
    let scale = parse_scale();
    let (names, model_scale, epochs, max_len, max_dims, budget): (
        Vec<&str>,
        ModelScale,
        usize,
        usize,
        usize,
        usize,
    ) = match scale {
        RunScale::Quick => (QUICK_SUBSET.to_vec(), ModelScale::Tiny, 24, 64, 12, 96),
        RunScale::Full => (
            UEA_DATASETS.iter().map(|m| m.name).collect(),
            ModelScale::Small,
            40,
            128,
            24,
            240,
        ),
    };
    let methods = ArchKind::ALL;

    println!(
        "=== Table 2: C-acc over UEA stand-ins ({}) ===",
        scale.name()
    );
    print!("{:<22}{:>4}{:>6}{:>5} |", "dataset", "|C|", "|T|", "D");
    for m in methods {
        print!(" {:>7}", m.name());
    }
    println!();

    let mut rows: Vec<Row> = Vec::new();
    for name in &names {
        let meta = dcam_series::synth::uea::meta(name).expect("dataset in archive");
        // Sample budget shared across classes so many-class datasets stay
        // tractable; two extra folds generated for train vs held-out test.
        let n_per_class = (budget / meta.n_classes).clamp(6, 24);
        let cfg = UeaStandInConfig {
            n_per_class: n_per_class * 2,
            max_len,
            max_dims,
            seed: 5,
        };
        let all = generate(meta, &cfg);
        let (train_ds, test_ds) = all.split(0.5, 99);

        let mut accs = Vec::with_capacity(methods.len());
        let (_, secs) = timed(|| {
            for kind in methods {
                let protocol = Protocol {
                    epochs,
                    patience: epochs / 3,
                    seed: 13,
                    ..Default::default()
                };
                let (mut clf, _) = build_and_train(kind, &train_ds, model_scale, &protocol);
                let acc = test_accuracy(&mut clf, &test_ds, 8);
                accs.push(acc);
            }
        });

        print!(
            "{:<22}{:>4}{:>6}{:>5} |",
            meta.name,
            meta.n_classes,
            train_ds.series_len(),
            train_ds.n_dims()
        );
        for &a in &accs {
            print!(" {:>7}", cell(a));
        }
        println!("   ({secs:.0}s)");
        rows.push(Row {
            dataset: meta.name.to_string(),
            n_classes: meta.n_classes,
            series_len: train_ds.series_len(),
            n_dims: train_ds.n_dims(),
            accuracies: accs,
            train_secs: secs,
        });
    }

    // Mean and rank rows (the paper's last two rows).
    let score_matrix: Vec<Vec<f32>> = rows.iter().map(|r| r.accuracies.clone()).collect();
    let means: Vec<f32> = (0..methods.len())
        .map(|m| score_matrix.iter().map(|r| r[m]).sum::<f32>() / score_matrix.len() as f32)
        .collect();
    let ranks = average_ranks(&score_matrix);
    print!("{:<37} |", "Mean");
    for &m in &means {
        print!(" {:>7}", cell(m));
    }
    println!();
    print!("{:<37} |", "Rank");
    for &r in &ranks {
        print!(" {:>7}", format!("{r:5.2}"));
    }
    println!();

    // Figure 8 scatter points: d-variant vs plain / c-variant / MTEX.
    println!("\n=== Figure 8 scatter points (x = competitor C-acc, y = d-variant C-acc) ===");
    let idx = |k: ArchKind| methods.iter().position(|&m| m == k).unwrap();
    let pairs = [
        ("dCNN vs CNN", ArchKind::DCnn, ArchKind::Cnn),
        ("dCNN vs cCNN", ArchKind::DCnn, ArchKind::CCnn),
        ("dCNN vs MTEX", ArchKind::DCnn, ArchKind::Mtex),
        ("dResNet vs ResNet", ArchKind::DResNet, ArchKind::ResNet),
        ("dResNet vs cResNet", ArchKind::DResNet, ArchKind::CResNet),
        ("dResNet vs MTEX", ArchKind::DResNet, ArchKind::Mtex),
        (
            "dInceptionT. vs InceptionT.",
            ArchKind::DInceptionTime,
            ArchKind::InceptionTime,
        ),
        (
            "dInceptionT. vs cInceptionT.",
            ArchKind::DInceptionTime,
            ArchKind::CInceptionTime,
        ),
        (
            "dInceptionT. vs MTEX",
            ArchKind::DInceptionTime,
            ArchKind::Mtex,
        ),
    ];
    for (label, d_kind, other) in pairs {
        let (di, oi) = (idx(d_kind), idx(other));
        let wins = rows
            .iter()
            .filter(|r| r.accuracies[di] > r.accuracies[oi])
            .count();
        let points: Vec<(f32, f32)> = rows
            .iter()
            .map(|r| (r.accuracies[oi], r.accuracies[di]))
            .collect();
        println!(
            "{label:<30} d-variant wins {wins}/{}: {points:?}",
            rows.len()
        );
    }

    write_json("table2", scale, &rows);
}
