//! Figure 10: influence of the number of permutations `k` on `Dr-acc`
//! (§5.5), plus the number of permutations needed to reach 90 % of the
//! best `Dr-acc` as `D` grows.
//!
//! Paper shape being reproduced: `Dr-acc` rises with `k` and saturates;
//! more dimensions require more permutations to converge; dResNet /
//! dInceptionTime converge faster than dCNN.
//!
//! Run: `cargo run --release -p dcam-bench --bin fig10 -- [--quick|--full]`

use dcam::dcam::DcamConfig;
use dcam::model::ArchKind;
use dcam::train::{build_and_train, Protocol};
use dcam::ModelScale;
use dcam_bench::attribution::dr_acc_of_method;
use dcam_bench::harness::{parse_scale, write_json, RunScale};
use dcam_series::synth::inject::{generate, DatasetType, InjectConfig};
use dcam_series::synth::seeds::SeedKind;
use serde::Serialize;

#[derive(Serialize)]
struct Series {
    method: String,
    dataset_type: String,
    dims: usize,
    k_values: Vec<usize>,
    dr_acc: Vec<f32>,
    k_to_90pct: Option<usize>,
}

fn main() {
    let scale = parse_scale();
    let (dims_grid, k_values, n_instances, model_scale, epochs, n_per_class) = match scale {
        RunScale::Quick => (
            vec![6usize],
            vec![1usize, 2, 4, 8, 16, 32, 64],
            6usize,
            ModelScale::Small,
            30usize,
            50usize,
        ),
        RunScale::Full => (
            vec![10, 20, 40, 60],
            vec![1, 2, 4, 8, 16, 32, 64, 128, 200, 400],
            15,
            ModelScale::Small,
            50,
            40,
        ),
    };
    let methods = [ArchKind::DCnn, ArchKind::DResNet, ArchKind::DInceptionTime];

    let mut all_series: Vec<Series> = Vec::new();
    println!(
        "=== Figure 10: Dr-acc vs number of permutations k ({}) ===",
        scale.name()
    );

    for dataset_type in [DatasetType::Type1, DatasetType::Type2] {
        for &d in &dims_grid {
            let mut cfg = InjectConfig::new(SeedKind::Shapes, dataset_type, d);
            cfg.n_per_class = n_per_class;
            cfg.series_len = 64;
            cfg.pattern_len = 16;
            cfg.amplitude = 2.0;
            cfg.seed = 31;
            let train_ds = generate(&cfg);
            let mut test_cfg = cfg.clone();
            test_cfg.seed = 1031;
            test_cfg.n_per_class = n_instances.max(4);
            let test_ds = generate(&test_cfg);

            for kind in methods {
                let protocol = Protocol {
                    epochs,
                    patience: epochs / 3,
                    seed: 3,
                    ..Default::default()
                };
                let (mut clf, _) = build_and_train(kind, &train_ds, model_scale, &protocol);

                let mut dr_per_k = Vec::with_capacity(k_values.len());
                for &k in &k_values {
                    let dcam_cfg = DcamConfig {
                        k,
                        seed: 17,
                        ..Default::default()
                    };
                    let mut drs = Vec::new();
                    for &i in test_ds.class_indices(1).iter().take(n_instances) {
                        let mask = test_ds.masks[i].as_ref().unwrap();
                        if let Some(v) = dr_acc_of_method(
                            kind,
                            &mut clf,
                            &test_ds.samples[i],
                            mask,
                            1,
                            &dcam_cfg,
                        ) {
                            drs.push(v);
                        }
                    }
                    dr_per_k.push(drs.iter().sum::<f32>() / drs.len().max(1) as f32);
                }
                let best = dr_per_k.iter().copied().fold(0.0f32, f32::max);
                let k_to_90 = k_values
                    .iter()
                    .zip(&dr_per_k)
                    .find(|(_, &v)| v >= 0.9 * best)
                    .map(|(&k, _)| k);
                println!(
                    "{:<8} {:<14} D={:<4} Dr-acc(k): {:?}  k@90%: {:?}",
                    dataset_type.name(),
                    kind.name(),
                    d,
                    dr_per_k
                        .iter()
                        .map(|v| (v * 100.0).round() / 100.0)
                        .collect::<Vec<_>>(),
                    k_to_90
                );
                all_series.push(Series {
                    method: kind.name().to_string(),
                    dataset_type: dataset_type.name().to_string(),
                    dims: d,
                    k_values: k_values.clone(),
                    dr_acc: dr_per_k,
                    k_to_90pct: k_to_90,
                });
            }
        }
    }

    write_json("fig10", scale, &all_series);
}
