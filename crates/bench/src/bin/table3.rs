//! Table 3 + Figure 9: `C-acc` and `Dr-acc` on Type-1/Type-2 synthetic
//! datasets while the number of dimensions grows.
//!
//! Paper shape being reproduced (§5.4):
//! * every method classifies Type 1 nearly perfectly at low `D`;
//! * plain ResNet and MTEX collapse on Type 2 as `D` grows, while the
//!   d-architectures stay accurate far longer;
//! * cCAM wins `Dr-acc` on Type 1 but falls to the random baseline on
//!   Type 2; dCAM is the only method strong on both;
//! * univariate CAM (starred) is near-random everywhere.
//!
//! Run: `cargo run --release -p dcam-bench --bin table3 -- [--quick|--full]`

use dcam::dcam::DcamConfig;
use dcam::model::ArchKind;
use dcam::train::{build_and_train, test_accuracy, Protocol};
use dcam::ModelScale;
use dcam_bench::attribution::dr_acc_of_method;
use dcam_bench::harness::{cell, parse_scale, timed, write_json, RunScale};
use dcam_eval::{average_ranks, dr_acc_random};
use dcam_series::synth::inject::{generate, DatasetType, InjectConfig};
use dcam_series::synth::seeds::SeedKind;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    dataset: String,
    dataset_type: String,
    dims: usize,
    method: String,
    c_acc: f32,
    dr_acc: f32,
    dr_random: f32,
    train_secs: f64,
}

fn main() {
    let scale = parse_scale();
    let (kinds, dims_grid, n_per_class, series_len, pattern_len, k, n_dr, model_scale, epochs) =
        match scale {
            RunScale::Quick => (
                vec![SeedKind::StarLight],
                vec![6usize, 10],
                40usize,
                64usize,
                16usize,
                24usize,
                8usize,
                ModelScale::Small,
                25usize,
            ),
            RunScale::Full => (
                vec![SeedKind::StarLight, SeedKind::Shapes],
                vec![10, 20, 40, 60, 100],
                50,
                96,
                16,
                100,
                20,
                ModelScale::Small,
                60,
            ),
        };
    let methods = [
        ArchKind::Mtex,
        ArchKind::ResNet,
        ArchKind::CResNet,
        ArchKind::DCnn,
        ArchKind::DResNet,
        ArchKind::DInceptionTime,
    ];

    let mut rows: Vec<Row> = Vec::new();
    println!(
        "=== Table 3: C-acc and Dr-acc on synthetic datasets ({}) ===",
        scale.name()
    );
    println!(
        "{:<16}{:<8}{:>5} | {:>22} | {:>22}",
        "dataset", "type", "D", "C-acc per method", "Dr-acc per method"
    );

    for &seed_kind in &kinds {
        for dataset_type in [DatasetType::Type1, DatasetType::Type2] {
            for &d in &dims_grid {
                let mut cfg = InjectConfig::new(seed_kind, dataset_type, d);
                cfg.n_per_class = n_per_class;
                cfg.series_len = series_len;
                cfg.pattern_len = pattern_len;
                cfg.amplitude = 2.0;
                cfg.seed = 77;
                let train_ds = generate(&cfg);
                // "We generate a fully new test dataset" (§5.2): fresh draws
                // from the same construction.
                let mut test_cfg = cfg.clone();
                test_cfg.seed = 1077;
                test_cfg.n_per_class = n_per_class / 2;
                let test_ds = generate(&test_cfg);

                let mut c_cells = String::new();
                let mut dr_cells = String::new();
                let mut dr_random_avg = 0.0f32;
                for kind in methods {
                    let protocol = Protocol {
                        epochs,
                        patience: epochs / 2,
                        seed: 7,
                        ..Default::default()
                    };
                    let ((mut clf, _outcome), secs) =
                        timed(|| build_and_train(kind, &train_ds, model_scale, &protocol));
                    let c_acc = test_accuracy(&mut clf, &test_ds, 8);

                    // Dr-acc over class-1 test instances with masks.
                    let dcam_cfg = DcamConfig {
                        k,
                        seed: 11,
                        ..Default::default()
                    };
                    let mut drs = Vec::new();
                    let mut randoms = Vec::new();
                    for &i in test_ds.class_indices(1).iter().take(n_dr) {
                        let mask = test_ds.masks[i].as_ref().expect("class-1 mask");
                        if let Some(v) = dr_acc_of_method(
                            kind,
                            &mut clf,
                            &test_ds.samples[i],
                            mask,
                            1,
                            &dcam_cfg,
                        ) {
                            drs.push(v);
                        }
                        randoms.push(dr_acc_random(mask.tensor()));
                    }
                    let dr = if drs.is_empty() {
                        f32::NAN
                    } else {
                        drs.iter().sum::<f32>() / drs.len() as f32
                    };
                    dr_random_avg = randoms.iter().sum::<f32>() / randoms.len().max(1) as f32;
                    c_cells.push_str(&format!("{} ", cell(c_acc)));
                    dr_cells.push_str(&format!("{} ", cell(dr)));
                    rows.push(Row {
                        dataset: seed_kind.name().to_string(),
                        dataset_type: dataset_type.name().to_string(),
                        dims: d,
                        method: kind.name().to_string(),
                        c_acc,
                        dr_acc: dr,
                        dr_random: dr_random_avg,
                        train_secs: secs,
                    });
                }
                println!(
                    "{:<16}{:<8}{:>5} | {} | {} rnd {:.3}",
                    seed_kind.name(),
                    dataset_type.name(),
                    d,
                    c_cells,
                    dr_cells,
                    dr_random_avg
                );
            }
        }
    }

    // Rank summary (methods ranked per configuration, as in the paper).
    let method_names: Vec<&str> = methods.iter().map(|m| m.name()).collect();
    let mut c_scores: Vec<Vec<f32>> = Vec::new();
    let mut dr_scores: Vec<Vec<f32>> = Vec::new();
    for chunk in rows.chunks(methods.len()) {
        c_scores.push(chunk.iter().map(|r| r.c_acc).collect());
        dr_scores.push(chunk.iter().map(|r| r.dr_acc).collect());
    }
    println!("\nmethods: {method_names:?}");
    println!("C-acc mean ranks:  {:?}", average_ranks(&c_scores));
    println!("Dr-acc mean ranks: {:?}", average_ranks(&dr_scores));

    // Figure 9 series: averaged C-acc / Dr-acc per (type, method, D).
    println!("\n=== Figure 9 series (averaged over seed datasets) ===");
    for dataset_type in ["Type 1", "Type 2"] {
        for (mi, m) in method_names.iter().enumerate() {
            let series: Vec<(usize, f32, f32)> = dims_grid
                .iter()
                .map(|&d| {
                    let sel: Vec<&Row> = rows
                        .iter()
                        .filter(|r| {
                            r.dims == d
                                && r.dataset_type == dataset_type
                                && r.method == methods[mi].name()
                        })
                        .collect();
                    let c = sel.iter().map(|r| r.c_acc).sum::<f32>() / sel.len().max(1) as f32;
                    let dr = sel.iter().map(|r| r.dr_acc).sum::<f32>() / sel.len().max(1) as f32;
                    (d, c, dr)
                })
                .collect();
            println!("{dataset_type:<7} {m:<14} {series:?}");
        }
    }

    write_json("table3", scale, &rows);
}
