//! Machine-readable micro-benchmarks of the hot paths: GEMM GFLOP/s,
//! conv forward/backward ns (direct vs im2col strategies), and
//! dCAM-per-instance ms (batched permutation engine vs the seed-style
//! unbatched loop). Writes `BENCH_micro.json` so future PRs have a perf
//! trajectory to diff against.
//!
//! Run: `cargo run --release -p dcam-bench --bin micro_json`
//!
//! The dCAM "seed" row re-runs this binary as a child process with
//! `DCAM_CONV_STRATEGY=direct` so the seed measurement uses the scalar
//! convolution loops end to end (the strategy override is latched once per
//! process, so it cannot be flipped in-process).

use dcam::arch::cnn;
use dcam::dcam::{compute_dcam, DcamConfig};
use dcam::dcam_many::{compute_dcam_many, DcamBatcherConfig, DcamManyConfig, DcamRequest};
use dcam::service::{Backpressure, DcamService, ServiceConfig};
use dcam::{InputEncoding, ModelScale};
use dcam_nn::layers::{Conv2dRows, ConvStrategy, Layer};
use dcam_series::MultivariateSeries;
use dcam_tensor::{SeededRng, Tensor};
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct MatmulRow {
    n: usize,
    new_us: f64,
    new_gflops: f64,
    seed_us: f64,
    seed_gflops: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct ConvRow {
    c_in: usize,
    c_out: usize,
    h: usize,
    w: usize,
    kernel: usize,
    direct_fwd_ns: f64,
    im2col_fwd_ns: f64,
    fwd_speedup: f64,
    direct_bwd_ns: f64,
    im2col_bwd_ns: f64,
    bwd_speedup: f64,
}

#[derive(Serialize)]
struct ConvLongRow {
    c_in: usize,
    c_out: usize,
    w: usize,
    kernel: usize,
    im2col_fwd_us: f64,
    fft_fwd_us: f64,
    /// im2col time over fft time (> 1 means fft is faster).
    fwd_speedup: f64,
    im2col_bwd_us: f64,
    fft_bwd_us: f64,
    bwd_speedup: f64,
    /// What `ConvStrategy::Auto` resolves to at this geometry — the
    /// measured crossover made visible, so a heuristic-constant change
    /// that flips a row shows up in the report diff.
    auto_strategy: String,
}

#[derive(Serialize)]
struct DcamRow {
    dims: usize,
    series_len: usize,
    k: usize,
    new_ms: f64,
    seed_ms: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct GemmI8Row {
    m: usize,
    k: usize,
    n: usize,
    /// Activation quantization + packed int8 GEMM + dequantization — the
    /// full per-call cost the int8 serving path pays.
    i8_us: f64,
    /// The f32 packed GEMM at the same geometry.
    f32_us: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct DcamInt8Row {
    dims: usize,
    series_len: usize,
    k: usize,
    /// Model scale of the row (int8 targets the bigger-than-Tiny models).
    scale: String,
    f32_ms: f64,
    int8_ms: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct DcamManyRow {
    n_instances: usize,
    max_batch: usize,
    /// One `compute_dcam_many` call over all instances.
    many_ms: f64,
    per_instance_ms: f64,
    /// N sequential single-instance `compute_dcam` calls (the PR 1 path).
    sequential_ms: f64,
    aggregate_speedup: f64,
}

#[derive(Serialize)]
struct EvalRow {
    n_instances: usize,
    /// Explanation methods compared (the default harness: dcam + random).
    methods: usize,
    /// Masked-fraction grid points per curve.
    grid_points: usize,
    /// One full faithfulness run: attributions, then a deletion and an
    /// insertion sweep per method, every point re-classifying all
    /// instances through `classify_many`.
    harness_ms: f64,
    /// Instance re-classifications per second across the harness run.
    reclass_per_s: f64,
    /// N single-instance classification calls (the unbatched path).
    sequential_classify_ms: f64,
    /// One `classify_many` call over all N instances.
    batched_classify_ms: f64,
    classify_speedup: f64,
}

#[derive(Serialize)]
struct AnalyzeRow {
    series_len: usize,
    /// Activation profiles in the pool the DTW/DBA primitives run over.
    n_series: usize,
    /// Unconstrained all-pairs DTW throughput over the pool.
    dtw_pairs_per_s: f64,
    /// One Petitjean DBA update of a barycenter against the whole pool.
    dba_iter_ms: f64,
    /// End-to-end `mine_motifs` on the pinned-dim planted fixture at this
    /// series length (16 instances, 4 dims, k = 8 dCAM — the same shape
    /// the analyze endpoint serves), dCAM map extraction included.
    mine_ms: f64,
}

#[derive(Serialize)]
struct ServiceRow {
    n_submitters: usize,
    requests: usize,
    workers: usize,
    /// Wall time from the first submission to the last resolved future.
    total_ms: f64,
    /// Requests served per second of wall time.
    throughput_rps: f64,
    p50_ms: f64,
    p99_ms: f64,
    mean_batch: f64,
}

#[derive(Serialize)]
struct ServerRow {
    conn_workers: usize,
    /// Persistent client connections driving the load.
    connections: usize,
    requests: usize,
    /// Wall time from the first request to the last response.
    total_ms: f64,
    /// Requests served per second of wall time, measured at the client.
    throughput_rps: f64,
    /// Client-side (wire-inclusive) latency percentiles.
    p50_ms: f64,
    p99_ms: f64,
}

#[derive(Serialize)]
struct RegistryRow {
    /// Models registered; each submitter streams at one model, so all
    /// models' pools are loaded concurrently.
    active_models: usize,
    requests: usize,
    /// Wall time from the first submission to the last resolved future.
    total_ms: f64,
    /// Explanations served per second of wall time, summed over models.
    throughput_rps: f64,
    /// p99 per-request latency observed by a submitter streaming at one
    /// model while the *other* model is hot-swapped from a checkpoint
    /// file twice — the stall a swap imposes on innocent traffic. Only
    /// measured on the 2-model row (0 on the baseline).
    swap_stall_p99_ms: f64,
}

#[derive(Serialize)]
struct RouterRow {
    /// Shards behind the router (1 = pure proxy overhead baseline).
    shards: usize,
    /// Persistent client connections driving the load.
    connections: usize,
    requests: usize,
    /// Wall time from the first request to the last response.
    total_ms: f64,
    /// Requests served per second of wall time, measured at the client.
    throughput_rps: f64,
    p50_ms: f64,
    p99_ms: f64,
    /// p99 client latency on the row where the primary replica is killed
    /// mid-stream — the stall failover imposes on the unlucky requests.
    /// Only measured on the multi-shard row (0 on the baseline).
    failover_stall_p99_ms: f64,
}

#[derive(Serialize)]
struct Report {
    matmul: Vec<MatmulRow>,
    conv: Vec<ConvRow>,
    conv_long: Vec<ConvLongRow>,
    gemm_i8: GemmI8Row,
    dcam: DcamRow,
    dcam_int8: DcamInt8Row,
    dcam_many: Vec<DcamManyRow>,
    eval: Vec<EvalRow>,
    analyze: Vec<AnalyzeRow>,
    service: Vec<ServiceRow>,
    server: Vec<ServerRow>,
    registry: Vec<RegistryRow>,
    router: Vec<RouterRow>,
}

/// Best-of-`reps` wall time per call, in seconds.
fn best_of(mut f: impl FnMut(), iters: usize, reps: usize) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(start.elapsed().as_secs_f64() / iters as f64);
    }
    best
}

/// The seed repository's cache-blocked i-k-j matmul, kept verbatim as the
/// before-measurement.
fn matmul_seed(a: &Tensor, b: &Tensor) -> Tensor {
    const BLOCK: usize = 64;
    let (m, k, n) = (a.dims()[0], a.dims()[1], b.dims()[1]);
    let mut out = Tensor::zeros(&[m, n]);
    let (ad, bd) = (a.data(), b.data());
    let c = out.data_mut();
    for kk in (0..k).step_by(BLOCK) {
        let k_end = (kk + BLOCK).min(k);
        for i in 0..m {
            let a_row = &ad[i * k..(i + 1) * k];
            let c_row = &mut c[i * n..(i + 1) * n];
            for p in kk..k_end {
                let aik = a_row[p];
                if aik == 0.0 {
                    continue;
                }
                let b_row = &bd[p * n..(p + 1) * n];
                for (cv, bv) in c_row.iter_mut().zip(b_row) {
                    *cv += aik * bv;
                }
            }
        }
    }
    out
}

fn bench_matmul() -> Vec<MatmulRow> {
    let mut rng = SeededRng::new(2);
    let mut rows = Vec::new();
    for &n in &[64usize, 128, 256] {
        let a = Tensor::uniform(&[n, n], -1.0, 1.0, &mut rng);
        let b = Tensor::uniform(&[n, n], -1.0, 1.0, &mut rng);
        let iters = (50_000_000 / (n * n * n)).max(3);
        let new = best_of(|| drop(a.matmul(&b).unwrap()), iters, 7);
        let seed = best_of(|| drop(matmul_seed(&a, &b)), iters, 7);
        let flops = 2.0 * (n * n * n) as f64;
        rows.push(MatmulRow {
            n,
            new_us: new * 1e6,
            new_gflops: flops / new / 1e9,
            seed_us: seed * 1e6,
            seed_gflops: flops / seed / 1e9,
            speedup: seed / new,
        });
    }
    rows
}

fn bench_conv() -> Vec<ConvRow> {
    let mut rng = SeededRng::new(3);
    let mut rows = Vec::new();
    // The micro.rs shapes plus a dCAM-shaped case (C_in = D = 20 positions,
    // H = D rows).
    for &(c_in, c_out, h, w) in &[
        (8usize, 16usize, 1usize, 128usize),
        (8, 16, 8, 64),
        (20, 16, 20, 128),
    ] {
        let kernel = 3;
        let x = Tensor::uniform(&[4, c_in, h, w], -1.0, 1.0, &mut rng);
        let mut times = Vec::new(); // [direct fwd, direct bwd, im2col fwd, im2col bwd]
        for strategy in [ConvStrategy::Direct, ConvStrategy::Im2col] {
            let mut conv = Conv2dRows::same(c_in, c_out, kernel, &mut SeededRng::new(5));
            conv.set_strategy(strategy);
            let y = conv.forward(&x, false);
            let fwd = best_of(|| drop(conv.forward(&x, false)), 3, 7);
            let bwd = best_of(
                || {
                    let _ = conv.forward(&x, true);
                    drop(conv.backward(&y));
                },
                3,
                7,
            );
            times.push(fwd);
            times.push(bwd);
        }
        rows.push(ConvRow {
            c_in,
            c_out,
            h,
            w,
            kernel,
            direct_fwd_ns: times[0] * 1e9,
            im2col_fwd_ns: times[2] * 1e9,
            fwd_speedup: times[0] / times[2],
            direct_bwd_ns: times[1] * 1e9,
            im2col_bwd_ns: times[3] * 1e9,
            bwd_speedup: times[1] / times[3],
        });
    }
    rows
}

/// Long-series convolutions (EigenWorms-like D = 6) where the fft strategy
/// earns its keep: im2col vs fft at a fixed kernel across series lengths
/// spanning the measured crossover. The `auto_strategy` column records what
/// `ConvStrategy::Auto` actually picks, pinning the heuristic to the data.
fn bench_conv_long() -> Vec<ConvLongRow> {
    let mut rng = SeededRng::new(13);
    let (c_in, c_out, h, kernel) = (6usize, 8usize, 1usize, 63usize);
    let mut rows = Vec::new();
    for &w in &[1024usize, 8192, 32768] {
        let x = Tensor::uniform(&[1, c_in, h, w], -1.0, 1.0, &mut rng);
        let mut times = Vec::new(); // [im2col fwd, im2col bwd, fft fwd, fft bwd]
        for strategy in [ConvStrategy::Im2col, ConvStrategy::Fft] {
            let mut conv = Conv2dRows::same(c_in, c_out, kernel, &mut SeededRng::new(5));
            conv.set_strategy(strategy);
            let y = conv.forward(&x, false);
            let fwd = best_of(|| drop(conv.forward(&x, false)), 3, 7);
            let bwd = best_of(
                || {
                    let _ = conv.forward(&x, true);
                    drop(conv.backward(&y));
                },
                2,
                5,
            );
            times.push(fwd);
            times.push(bwd);
        }
        let auto = Conv2dRows::same(c_in, c_out, kernel, &mut SeededRng::new(5));
        rows.push(ConvLongRow {
            c_in,
            c_out,
            w,
            kernel,
            im2col_fwd_us: times[0] * 1e6,
            fft_fwd_us: times[2] * 1e6,
            fwd_speedup: times[0] / times[2],
            im2col_bwd_us: times[1] * 1e6,
            fft_bwd_us: times[3] * 1e6,
            bwd_speedup: times[1] / times[3],
            auto_strategy: format!("{:?}", auto.resolved_strategy(h, w)).to_lowercase(),
        });
    }
    rows
}

const DCAM_DIMS: usize = 20;
const DCAM_LEN: usize = 128;
const DCAM_K: usize = 100;

/// One dCAM instance timing (ms per compute_dcam call) under whatever
/// conv strategy the environment dictates.
fn dcam_ms() -> f64 {
    let mut rng = SeededRng::new(1);
    let rows: Vec<Vec<f32>> = (0..DCAM_DIMS)
        .map(|_| (0..DCAM_LEN).map(|_| rng.normal()).collect())
        .collect();
    let series = MultivariateSeries::from_rows(&rows);
    let mut model = cnn(
        InputEncoding::Dcnn,
        DCAM_DIMS,
        2,
        ModelScale::Tiny,
        &mut rng,
    );
    let cfg = DcamConfig {
        k: DCAM_K,
        only_correct: false,
        seed: 3,
        ..Default::default()
    };
    best_of(|| drop(compute_dcam(&mut model, &series, 0, &cfg)), 1, 5) * 1e3
}

/// Seed-style dCAM loop: one permuted-series copy + cube + batch stack per
/// permutation and a per-sample feature copy, exactly as the seed did it.
fn dcam_seed_ms() -> f64 {
    use dcam::cam::weighted_map;
    use dcam_nn::trainer::stack;
    use dcam_series::cube;
    let mut rng = SeededRng::new(1);
    let rows: Vec<Vec<f32>> = (0..DCAM_DIMS)
        .map(|_| (0..DCAM_LEN).map(|_| rng.normal()).collect())
        .collect();
    let series = MultivariateSeries::from_rows(&rows);
    let mut model = cnn(
        InputEncoding::Dcnn,
        DCAM_DIMS,
        2,
        ModelScale::Tiny,
        &mut rng,
    );
    let cfg = DcamConfig {
        k: DCAM_K,
        only_correct: false,
        seed: 3,
        ..Default::default()
    };
    let (d, n) = (DCAM_DIMS, DCAM_LEN);

    best_of(
        || {
            let mut perm_rng = SeededRng::new(cfg.seed);
            let mut perms: Vec<Vec<usize>> = vec![(0..d).collect()];
            while perms.len() < cfg.k {
                perms.push(perm_rng.permutation(d));
            }
            let mut m_acc = Tensor::zeros(&[d, d, n]);
            for chunk in perms.chunks(cfg.batch) {
                let cubes: Vec<Tensor> = chunk
                    .iter()
                    .map(|p| cube::cube(&series.permute_dims(p)))
                    .collect();
                let refs: Vec<&Tensor> = cubes.iter().collect();
                let xb = stack(&refs);
                let (features, _logits) = model.forward_with_features(&xb);
                let nf = features.dims()[1];
                let plane = d * n;
                for (bi, perm) in chunk.iter().enumerate() {
                    let f_sample = Tensor::from_vec(
                        features.data()[bi * nf * plane..(bi + 1) * nf * plane].to_vec(),
                        &[1, nf, d, n],
                    )
                    .unwrap();
                    let cam_rows = weighted_map(&f_sample, model.class_weights(), 0);
                    let mut slot_of = vec![0usize; d];
                    for (j, &dim) in perm.iter().enumerate() {
                        slot_of[dim] = j;
                    }
                    for dim in 0..d {
                        let j = slot_of[dim];
                        for p in 0..d {
                            let r = cube::idx(j, p, d);
                            let src = &cam_rows.data()[r * n..(r + 1) * n];
                            let dst = (dim * d + p) * n;
                            for (acc, &v) in m_acc.data_mut()[dst..dst + n].iter_mut().zip(src) {
                                *acc += v;
                            }
                        }
                    }
                }
            }
            std::hint::black_box(&m_acc);
        },
        1,
        5,
    ) * 1e3
}

/// Int8 GEMM vs the f32 packed GEMM at one dense-layer-like geometry. The
/// int8 side pays the activation quantization and the dequantization on
/// every call — the end-to-end per-layer cost of serving quantized.
fn bench_gemm_i8() -> GemmI8Row {
    use dcam_tensor::{
        activation_scale, dequantize_row, k_groups, qgemm_i32, quantize_transpose_into,
        QuantizedWeights,
    };
    let (m, k, n) = (64usize, 256usize, 512usize);
    let mut rng = SeededRng::new(4);
    let w = Tensor::uniform(&[m, k], -1.0, 1.0, &mut rng);
    let x = Tensor::uniform(&[k, n], -1.0, 1.0, &mut rng);
    let f32_us = best_of(|| drop(w.matmul(&x).unwrap()), 4, 5) * 1e6;

    let wd = w.data().to_vec();
    let qw = QuantizedWeights::from_rows(m, k, |i, p| wd[i * k + p]);
    // The packer wants n rows of k (the right operand transposed).
    let xt: Vec<f32> = {
        let xd = x.data();
        (0..n * k).map(|i| xd[(i % k) * n + i / k]).collect()
    };
    let s_a = activation_scale(1.0);
    let mut b = vec![0u8; k_groups(k) * n * 4];
    let mut acc = vec![0i32; m * n];
    let mut out = vec![0f32; m * n];
    let i8_us = best_of(
        || {
            quantize_transpose_into(&xt, n, k, 1.0 / s_a, &mut b);
            qgemm_i32(&qw, &b, n * 4, 0, n, &mut acc, n, false);
            for i in 0..m {
                dequantize_row(
                    &acc[i * n..(i + 1) * n],
                    qw.corr()[i],
                    qw.scales()[i] * s_a,
                    0.0,
                    &mut out[i * n..(i + 1) * n],
                );
            }
            std::hint::black_box(&out);
        },
        4,
        5,
    ) * 1e6;
    GemmI8Row {
        m,
        k,
        n,
        i8_us,
        f32_us,
        speedup: f32_us / i8_us,
    }
}

/// Single-instance dCAM at the Small model scale, f32 vs the quantized
/// int8 serving path (identical weights; the int8 twin is calibrated on
/// the bench series). The acceptance row for the quantized inference
/// path: the k permuted C(T) cubes forwarded per explanation are where
/// the int8 conv kernels earn their keep.
fn bench_dcam_int8() -> DcamInt8Row {
    let rows: Vec<Vec<f32>> = {
        let mut rng = SeededRng::new(1);
        (0..DCAM_DIMS)
            .map(|_| (0..DCAM_LEN).map(|_| rng.normal()).collect())
            .collect()
    };
    let series = MultivariateSeries::from_rows(&rows);
    let build = || {
        let mut rng = SeededRng::new(9);
        cnn(
            InputEncoding::Dcnn,
            DCAM_DIMS,
            2,
            ModelScale::Small,
            &mut rng,
        )
    };
    let mut f32_model = build();
    let mut int8_model = build();
    int8_model.calibrate_int8_on(std::slice::from_ref(&series));
    let cfg = DcamConfig {
        k: DCAM_K,
        only_correct: false,
        seed: 3,
        ..Default::default()
    };
    let f32_ms = best_of(
        || drop(compute_dcam(&mut f32_model, &series, 0, &cfg)),
        1,
        3,
    ) * 1e3;
    let int8_ms = best_of(
        || drop(compute_dcam(&mut int8_model, &series, 0, &cfg)),
        1,
        3,
    ) * 1e3;
    DcamInt8Row {
        dims: DCAM_DIMS,
        series_len: DCAM_LEN,
        k: DCAM_K,
        scale: "small".into(),
        f32_ms,
        int8_ms,
        speedup: f32_ms / int8_ms,
    }
}

/// Cross-instance engine vs N sequential `compute_dcam` calls, for
/// N ∈ {1, 4, 16} concurrent instances (same model and shape as the
/// single-instance row; run with `DCAM_THREADS=1` for comparable numbers).
fn bench_dcam_many() -> Vec<DcamManyRow> {
    let mut rng = SeededRng::new(1);
    let mut model = cnn(
        InputEncoding::Dcnn,
        DCAM_DIMS,
        2,
        ModelScale::Tiny,
        &mut rng,
    );
    let dcam_cfg = DcamConfig {
        k: DCAM_K,
        only_correct: false,
        seed: 3,
        ..Default::default()
    };
    let many_cfg = DcamManyConfig {
        dcam: dcam_cfg.clone(),
        ..Default::default()
    };
    let mut rows = Vec::new();
    for n_inst in [1usize, 4, 16] {
        let series: Vec<MultivariateSeries> = (0..n_inst)
            .map(|i| {
                let mut r = SeededRng::new(50 + i as u64);
                let dims: Vec<Vec<f32>> = (0..DCAM_DIMS)
                    .map(|_| (0..DCAM_LEN).map(|_| r.normal()).collect())
                    .collect();
                MultivariateSeries::from_rows(&dims)
            })
            .collect();
        let sequential = best_of(
            || {
                for s in &series {
                    std::hint::black_box(compute_dcam(&mut model, s, 0, &dcam_cfg));
                }
            },
            1,
            5,
        );
        let requests: Vec<DcamRequest<'_>> = series
            .iter()
            .map(|series| DcamRequest { series, class: 0 })
            .collect();
        let many = best_of(
            || {
                std::hint::black_box(compute_dcam_many(&mut model, &requests, &many_cfg));
            },
            1,
            5,
        );
        rows.push(DcamManyRow {
            n_instances: n_inst,
            max_batch: many_cfg.max_batch,
            many_ms: many * 1e3,
            per_instance_ms: many * 1e3 / n_inst as f64,
            sequential_ms: sequential * 1e3,
            aggregate_speedup: sequential / many,
        });
    }
    rows
}

/// Faithfulness-harness throughput on the planted fixture: a full
/// deletion/insertion evaluation (default methods and grid) end to end,
/// plus the batched-vs-sequential re-classification comparison that is
/// the harness's hot path.
fn bench_eval() -> Vec<EvalRow> {
    use dcam::dcam_many::DcamManyConfig as ManyCfg;
    use dcam::{classify_many, planted_dataset, planted_model, PlantedSpec};
    use dcam_eval::{run_harness, HarnessConfig, LocalBackend};

    let mut rows = Vec::new();
    for per_class in [8usize, 32] {
        let spec = PlantedSpec {
            per_class,
            ..Default::default()
        };
        let mut model = planted_model(&spec);
        let data = planted_dataset(&spec);
        let cfg = HarnessConfig::default();
        let harness = best_of(
            || {
                let mut backend = LocalBackend::new(&mut model);
                std::hint::black_box(
                    run_harness(&mut backend, &data.samples, &data.labels, &cfg, None)
                        .expect("harness on the planted fixture"),
                );
            },
            1,
            5,
        );
        // Base classification plus one full-dataset re-classification per
        // (method × direction × grid point).
        let grid_points = cfg.k_grid.len();
        let reclassifications = data.samples.len() * (1 + cfg.methods.len() * 2 * grid_points);
        let sequential = best_of(
            || {
                for s in &data.samples {
                    std::hint::black_box(classify_many(&mut model, std::slice::from_ref(s), 1));
                }
            },
            1,
            5,
        );
        let max_batch = ManyCfg::default().max_batch;
        let batched = best_of(
            || {
                std::hint::black_box(classify_many(&mut model, &data.samples, max_batch));
            },
            1,
            5,
        );
        rows.push(EvalRow {
            n_instances: data.samples.len(),
            methods: cfg.methods.len(),
            grid_points,
            harness_ms: harness * 1e3,
            reclass_per_s: reclassifications as f64 / harness,
            sequential_classify_ms: sequential * 1e3,
            batched_classify_ms: batched * 1e3,
            classify_speedup: sequential / batched,
        });
    }
    rows
}

/// Analytics-subsystem hot paths: all-pairs DTW throughput and one DBA
/// barycenter update over a pool of random activation profiles, plus the
/// full `mine_motifs` pipeline on the pinned-dim planted fixture under
/// the serving-side dCAM config (k = 8, every permutation kept).
fn bench_analyze() -> Vec<AnalyzeRow> {
    use dcam::{planted_dataset, planted_model, PlantedSpec};
    use dcam_analyze::{dba_step, dtw_distance, mine_motifs, AnalyzeConfig};
    use dcam_eval::LocalBackend;

    let mut rows = Vec::new();
    for &len in &[32usize, 128] {
        let n_series = 16usize;
        let pool: Vec<Vec<f32>> = (0..n_series)
            .map(|i| {
                let mut r = SeededRng::new(90 + i as u64);
                (0..len).map(|_| r.normal()).collect()
            })
            .collect();
        let pairs = n_series * (n_series - 1) / 2;
        let dtw = best_of(
            || {
                for i in 0..n_series {
                    for j in (i + 1)..n_series {
                        std::hint::black_box(dtw_distance(&pool[i], &pool[j], None));
                    }
                }
            },
            1,
            7,
        );
        let members: Vec<&[f32]> = pool.iter().map(|r| r.as_slice()).collect();
        let center = pool[0].clone();
        let dba = best_of(|| drop(dba_step(&center, &members, None)), 1, 7);

        let spec = PlantedSpec {
            len,
            bump_dim: Some(2),
            ..Default::default()
        };
        let mut model = planted_model(&spec);
        let data = planted_dataset(&spec);
        let cfg = AnalyzeConfig {
            kmeans_iters: 4,
            dba_iters: 2,
            ..Default::default()
        };
        let dcam = DcamConfig {
            k: 8,
            only_correct: false,
            ..Default::default()
        };
        let mine = best_of(
            || {
                let mut backend = LocalBackend::new(&mut model).with_dcam(dcam.clone());
                std::hint::black_box(
                    mine_motifs(&mut backend, &data.samples, &data.labels, &cfg, None)
                        .expect("mining the planted fixture"),
                );
            },
            1,
            3,
        );
        rows.push(AnalyzeRow {
            series_len: len,
            n_series,
            dtw_pairs_per_s: pairs as f64 / dtw,
            dba_iter_ms: dba * 1e3,
            mine_ms: mine * 1e3,
        });
    }
    rows
}

/// Latency-under-load of the async explanation service: `n_submitters`
/// threads each fire a burst of requests at a single-worker service
/// (single worker so the numbers are comparable to the `dcam_many`
/// rows measured with one model). Same shape as the other dCAM rows
/// (D=20, n=128, k=100); best-of-3 wall time, with the service's own
/// latency percentiles from the final run.
fn bench_service() -> Vec<ServiceRow> {
    let mut rows = Vec::new();
    for n_submitters in [1usize, 16] {
        let per_thread = 2usize;
        let requests = n_submitters * per_thread;
        let mut best_total = f64::INFINITY;
        let mut best_stats = None;
        for _rep in 0..3 {
            let mut rng = SeededRng::new(1);
            let model = cnn(
                InputEncoding::Dcnn,
                DCAM_DIMS,
                2,
                ModelScale::Tiny,
                &mut rng,
            );
            let cfg = ServiceConfig {
                batcher: DcamBatcherConfig {
                    many: DcamManyConfig {
                        dcam: DcamConfig {
                            k: DCAM_K,
                            only_correct: false,
                            seed: 3,
                            ..Default::default()
                        },
                        ..Default::default()
                    },
                    max_pending: 8,
                    max_wait: Some(std::time::Duration::from_millis(2)),
                },
                queue_capacity: 256,
                backpressure: Backpressure::Block,
                latency_window: 4096,
                queue_policy: dcam::service::QueuePolicy::Fifo,
                precision: dcam_nn::Precision::F32,
            };
            let service = DcamService::spawn(vec![model], cfg);
            let start = Instant::now();
            std::thread::scope(|scope| {
                for t in 0..n_submitters as u64 {
                    let handle = service.handle();
                    scope.spawn(move || {
                        for r in 0..per_thread as u64 {
                            let mut srng = SeededRng::new(50 + t * 10 + r);
                            let dims: Vec<Vec<f32>> = (0..DCAM_DIMS)
                                .map(|_| (0..DCAM_LEN).map(|_| srng.normal()).collect())
                                .collect();
                            let series = MultivariateSeries::from_rows(&dims);
                            let future = handle.submit(&series, 0).expect("submit");
                            std::hint::black_box(future.wait().expect("served"));
                        }
                    });
                }
            });
            let total = start.elapsed().as_secs_f64();
            let (_, stats) = service.shutdown();
            assert_eq!(stats.completed as usize, requests);
            if total < best_total {
                best_total = total;
                best_stats = Some(stats);
            }
        }
        let stats = best_stats.expect("at least one rep");
        rows.push(ServiceRow {
            n_submitters,
            requests,
            workers: 1,
            total_ms: best_total * 1e3,
            throughput_rps: requests as f64 / best_total,
            p50_ms: stats.p50_latency.as_secs_f64() * 1e3,
            p99_ms: stats.p99_latency.as_secs_f64() * 1e3,
            mean_batch: stats.mean_batch,
        });
    }
    rows
}

/// End-to-end HTTP serving over loopback: the same single-worker service
/// as the `service` rows behind `dcam-server`, driven by 4 persistent
/// client connections (the in-repo `HttpClient`). `conn_workers` bounds
/// how many requests can be in flight — and therefore batch — at once, so
/// the 1 vs 4 rows expose what the connection pool buys. Latency
/// percentiles are measured at the client, wire included.
fn bench_server() -> Vec<ServerRow> {
    use dcam_server::{explain_payload, serve, HttpClient, ServerConfig};

    let connections = 4usize;
    let per_conn = 4usize;
    let requests = connections * per_conn;
    let payloads: Vec<String> = (0..requests)
        .map(|i| {
            let mut r = SeededRng::new(50 + i as u64);
            let dims: Vec<Vec<f32>> = (0..DCAM_DIMS)
                .map(|_| (0..DCAM_LEN).map(|_| r.normal()).collect())
                .collect();
            explain_payload(&MultivariateSeries::from_rows(&dims), 0)
        })
        .collect();

    let mut rows = Vec::new();
    for conn_workers in [1usize, 4] {
        let mut best_total = f64::INFINITY;
        let mut best_latencies: Vec<f64> = Vec::new();
        for _rep in 0..3 {
            let mut rng = SeededRng::new(1);
            let model = cnn(
                InputEncoding::Dcnn,
                DCAM_DIMS,
                2,
                ModelScale::Tiny,
                &mut rng,
            );
            let cfg = ServiceConfig {
                batcher: DcamBatcherConfig {
                    many: DcamManyConfig {
                        dcam: DcamConfig {
                            k: DCAM_K,
                            only_correct: false,
                            seed: 3,
                            ..Default::default()
                        },
                        ..Default::default()
                    },
                    max_pending: 8,
                    max_wait: Some(std::time::Duration::from_millis(2)),
                },
                queue_capacity: 256,
                backpressure: Backpressure::Block,
                queue_policy: dcam::service::QueuePolicy::Fifo,
                latency_window: 4096,
                precision: dcam_nn::Precision::F32,
            };
            let service = DcamService::spawn(vec![model], cfg);
            let server = serve(
                service,
                ServerConfig {
                    conn_workers,
                    ..Default::default()
                },
            )
            .expect("bind loopback listener");
            let addr = server.addr().to_string();
            let start = Instant::now();
            let latencies: Vec<f64> = std::thread::scope(|scope| {
                let handles: Vec<_> = payloads
                    .chunks(per_conn)
                    .map(|chunk| {
                        let addr = addr.clone();
                        scope.spawn(move || {
                            let mut client = HttpClient::connect(&addr).expect("connect");
                            chunk
                                .iter()
                                .map(|body| {
                                    let t0 = Instant::now();
                                    let resp = client.post("/v1/explain", body).expect("request");
                                    assert_eq!(resp.status, 200, "body: {}", resp.body);
                                    t0.elapsed().as_secs_f64() * 1e3
                                })
                                .collect::<Vec<f64>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("client thread"))
                    .collect()
            });
            let total = start.elapsed().as_secs_f64();
            server.shutdown();
            if total < best_total {
                best_total = total;
                best_latencies = latencies;
            }
        }
        best_latencies.sort_by(f64::total_cmp);
        let pct = |p: f64| best_latencies[((best_latencies.len() - 1) as f64 * p).round() as usize];
        rows.push(ServerRow {
            conn_workers,
            connections,
            requests,
            total_ms: best_total * 1e3,
            throughput_rps: requests as f64 / best_total,
            p50_ms: pct(0.50),
            p99_ms: pct(0.99),
        });
    }
    rows
}

/// Multi-model registry serving: explain throughput with 1 vs 2 active
/// models (same shape and service config as the `service` rows; each
/// submitter sticks to one model but resolves a fresh handle per request,
/// exactly as the HTTP layer routes — so the 2-model row loads both pools
/// concurrently), plus the hot-swap stall: p99 latency a submitter
/// streaming at one model sees while the other model is swapped from a
/// checkpoint file twice.
fn bench_registry() -> Vec<RegistryRow> {
    use dcam::arch::{ArchDescriptor, ArchFamily};
    use dcam::registry::{checkpoint_model, save_checkpoint, ModelRegistry};

    let desc = ArchDescriptor {
        family: ArchFamily::Cnn,
        encoding: InputEncoding::Dcnn,
        dims: DCAM_DIMS,
        classes: 2,
        scale: ModelScale::Tiny,
    };
    let dir = std::env::temp_dir().join("dcam-bench-registry");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let ckpt_path = |seed: u64| {
        let path = dir.join(format!("bench-{seed}.ckpt"));
        save_checkpoint(&checkpoint_model(&mut desc.build(seed), &desc), &path)
            .expect("write checkpoint");
        path
    };
    let service_cfg = || ServiceConfig {
        batcher: DcamBatcherConfig {
            many: DcamManyConfig {
                dcam: DcamConfig {
                    k: DCAM_K,
                    only_correct: false,
                    seed: 3,
                    ..Default::default()
                },
                ..Default::default()
            },
            max_pending: 8,
            max_wait: Some(std::time::Duration::from_millis(2)),
        },
        queue_capacity: 256,
        backpressure: Backpressure::Block,
        queue_policy: dcam::service::QueuePolicy::Fifo,
        latency_window: 4096,
        precision: dcam_nn::Precision::F32,
    };
    let series_for = |seed: u64| {
        let mut r = SeededRng::new(seed);
        let dims: Vec<Vec<f32>> = (0..DCAM_DIMS)
            .map(|_| (0..DCAM_LEN).map(|_| r.normal()).collect())
            .collect();
        MultivariateSeries::from_rows(&dims)
    };

    let mut rows = Vec::new();
    for active_models in [1usize, 2] {
        let n_submitters = 2usize;
        let per_thread = 4usize;
        let requests = n_submitters * per_thread;
        let mut best_total = f64::INFINITY;
        for _rep in 0..3 {
            let registry = ModelRegistry::new();
            for m in 0..active_models {
                registry
                    .register_from_checkpoint(
                        &format!("m{m}"),
                        ckpt_path(1 + m as u64),
                        service_cfg(),
                        1,
                    )
                    .expect("register bench model");
            }
            let start = Instant::now();
            std::thread::scope(|scope| {
                for t in 0..n_submitters as u64 {
                    let registry = &registry;
                    scope.spawn(move || {
                        // Each submitter sticks to one model lane, so the
                        // 2-model row genuinely exercises both pools.
                        let model = format!("m{}", t as usize % active_models);
                        for r in 0..per_thread as u64 {
                            let series = series_for(50 + t * 10 + r);
                            let handle = registry.handle(&model).expect("resolve");
                            let future = handle.submit(&series, 0).expect("submit");
                            std::hint::black_box(future.wait().expect("served"));
                        }
                    });
                }
            });
            let total = start.elapsed().as_secs_f64();
            registry.shutdown_all();
            best_total = best_total.min(total);
        }

        // Hot-swap stall, on the 2-model row: one submitter streams at m0
        // while the main thread swaps m1 twice.
        let swap_stall_p99_ms = if active_models < 2 {
            0.0
        } else {
            let registry = ModelRegistry::new();
            registry
                .register_from_checkpoint("m0", ckpt_path(1), service_cfg(), 1)
                .expect("register");
            registry
                .register_from_checkpoint("m1", ckpt_path(2), service_cfg(), 1)
                .expect("register");
            let swap_target = ckpt_path(3);
            let latencies: Vec<f64> = std::thread::scope(|scope| {
                let registry = &registry;
                let stream = scope.spawn(move || {
                    (0..10u64)
                        .map(|r| {
                            let series = series_for(200 + r);
                            let handle = registry.handle("m0").expect("resolve");
                            let t0 = Instant::now();
                            let future = handle.submit(&series, 0).expect("submit");
                            std::hint::black_box(future.wait().expect("served"));
                            t0.elapsed().as_secs_f64() * 1e3
                        })
                        .collect::<Vec<f64>>()
                });
                for _ in 0..2 {
                    registry.swap("m1", &swap_target).expect("swap");
                }
                stream.join().expect("stream thread")
            });
            registry.shutdown_all();
            let mut sorted = latencies;
            sorted.sort_by(f64::total_cmp);
            sorted[((sorted.len() - 1) as f64 * 0.99).round() as usize]
        };

        rows.push(RegistryRow {
            active_models,
            requests,
            total_ms: best_total * 1e3,
            throughput_rps: requests as f64 / best_total,
            swap_stall_p99_ms,
        });
    }
    rows
}

/// Routed HTTP serving: the same explain traffic as the `server` rows,
/// but proxied through `dcam-router`. The 1-shard row is the pure proxy
/// overhead baseline; on the 2-shard row the model's primary replica is
/// killed mid-stream, so the row's tail latency *is* the failover stall
/// (every request must still answer 200 — the client asserts it).
fn bench_router() -> Vec<RouterRow> {
    use dcam_router::breaker::BreakerConfig;
    use dcam_router::health::HealthConfig;
    use dcam_router::placement::placement;
    use dcam_router::retry::BackoffConfig;
    use dcam_router::{serve_router, RouterConfig};
    use dcam_server::{explain_payload, serve, DcamServer, HttpClient, ServerConfig};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    let connections = 2usize;
    let per_conn = 6usize;
    let requests = connections * per_conn;
    let payloads: Vec<String> = (0..requests)
        .map(|i| {
            let mut r = SeededRng::new(50 + i as u64);
            let dims: Vec<Vec<f32>> = (0..DCAM_DIMS)
                .map(|_| (0..DCAM_LEN).map(|_| r.normal()).collect())
                .collect();
            explain_payload(&MultivariateSeries::from_rows(&dims), 0)
        })
        .collect();

    let boot_shard = || -> DcamServer {
        let mut rng = SeededRng::new(1);
        let model = cnn(
            InputEncoding::Dcnn,
            DCAM_DIMS,
            2,
            ModelScale::Tiny,
            &mut rng,
        );
        let cfg = ServiceConfig {
            batcher: DcamBatcherConfig {
                many: DcamManyConfig {
                    dcam: DcamConfig {
                        k: DCAM_K,
                        only_correct: false,
                        seed: 3,
                        ..Default::default()
                    },
                    ..Default::default()
                },
                max_pending: 8,
                max_wait: Some(Duration::from_millis(2)),
            },
            queue_capacity: 256,
            backpressure: Backpressure::Block,
            queue_policy: dcam::service::QueuePolicy::Fifo,
            latency_window: 4096,
            precision: dcam_nn::Precision::F32,
        };
        let service = DcamService::spawn(vec![model], cfg);
        serve(
            service,
            ServerConfig {
                conn_workers: 2,
                ..Default::default()
            },
        )
        .expect("bind shard listener")
    };

    let mut rows = Vec::new();
    for (n_shards, kill_primary) in [(1usize, false), (2, true)] {
        let mut shards: Vec<DcamServer> = (0..n_shards).map(|_| boot_shard()).collect();
        let addrs: Vec<String> = shards.iter().map(|s| s.addr().to_string()).collect();
        let router = serve_router(RouterConfig {
            shards: addrs.clone(),
            replicas: 2,
            conn_workers: connections.max(2),
            request_deadline: Duration::from_secs(10),
            upstream_timeout: Duration::from_secs(2),
            connect_timeout: Duration::from_millis(500),
            max_attempts: 6,
            backoff: BackoffConfig {
                base: Duration::from_millis(5),
                factor: 2.0,
                max: Duration::from_millis(40),
                jitter: 0.5,
            },
            health: HealthConfig {
                probe_interval: Duration::from_millis(25),
                probe_timeout: Duration::from_millis(250),
                fail_threshold: 2,
                recovery_threshold: 2,
            },
            breaker: BreakerConfig {
                failure_threshold: 2,
                cooldown: Duration::from_millis(300),
            },
            ..RouterConfig::default()
        })
        .expect("bind router listener");
        let addr = router.addr().to_string();

        let completed = AtomicUsize::new(0);
        let start = Instant::now();
        let latencies: Vec<f64> = std::thread::scope(|scope| {
            let completed = &completed;
            let handles: Vec<_> = payloads
                .chunks(per_conn)
                .map(|chunk| {
                    let addr = addr.clone();
                    scope.spawn(move || {
                        let mut client = HttpClient::connect(&addr).expect("connect");
                        chunk
                            .iter()
                            .map(|body| {
                                let t0 = Instant::now();
                                let resp = client.post("/v1/explain", body).expect("request");
                                assert_eq!(resp.status, 200, "body: {}", resp.body);
                                completed.fetch_add(1, Ordering::Relaxed);
                                t0.elapsed().as_secs_f64() * 1e3
                            })
                            .collect::<Vec<f64>>()
                    })
                })
                .collect();
            if kill_primary {
                // Let the stream establish, then SIGKILL-style drop the
                // primary replica; the rest of the stream rides failover.
                while completed.load(Ordering::Relaxed) < connections {
                    std::thread::sleep(Duration::from_millis(1));
                }
                let victim = placement("default", &addrs, 2)[0];
                drop(shards.remove(victim));
            }
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("client thread"))
                .collect()
        });
        let total = start.elapsed().as_secs_f64();
        router.shutdown();

        let mut sorted = latencies;
        sorted.sort_by(f64::total_cmp);
        let pct = |p: f64| sorted[((sorted.len() - 1) as f64 * p).round() as usize];
        rows.push(RouterRow {
            shards: n_shards,
            connections,
            requests,
            total_ms: total * 1e3,
            throughput_rps: requests as f64 / total,
            p50_ms: pct(0.50),
            p99_ms: pct(0.99),
            failover_stall_p99_ms: if kill_primary { pct(0.99) } else { 0.0 },
        });
    }
    rows
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--dcam-seed-only") {
        // Child mode: print the seed-style dCAM time under the conv
        // strategy the parent pinned via DCAM_CONV_STRATEGY.
        println!("{}", dcam_seed_ms());
        return;
    }

    eprintln!("matmul ...");
    let matmul = bench_matmul();
    eprintln!("conv ...");
    let conv = bench_conv();
    eprintln!("conv_long (im2col vs fft) ...");
    let conv_long = bench_conv_long();

    eprintln!("gemm_i8 (packed int8 GEMM vs f32) ...");
    let gemm_i8 = bench_gemm_i8();

    eprintln!("dcam (new engine) ...");
    let new_ms = dcam_ms();
    eprintln!("dcam (seed loop, direct conv, child process) ...");
    let seed_ms = match std::process::Command::new(std::env::current_exe().expect("current exe"))
        .arg("--dcam-seed-only")
        .env("DCAM_CONV_STRATEGY", "direct")
        .output()
    {
        Ok(out) if out.status.success() => String::from_utf8_lossy(&out.stdout)
            .trim()
            .parse::<f64>()
            .unwrap_or(f64::NAN),
        _ => {
            eprintln!("warning: child run failed; measuring seed loop in-process");
            dcam_seed_ms()
        }
    };

    eprintln!("dcam_int8 (Small model, f32 vs int8 serving path) ...");
    let dcam_int8 = bench_dcam_int8();

    eprintln!("dcam_many (cross-instance engine, N in {{1, 4, 16}}) ...");
    let dcam_many = bench_dcam_many();

    eprintln!("eval (faithfulness harness on the planted fixture) ...");
    let eval = bench_eval();

    eprintln!("analyze (DTW/DBA primitives and motif mining) ...");
    let analyze = bench_analyze();

    eprintln!("service (async explanation service under load) ...");
    let service = bench_service();

    eprintln!("server (loopback HTTP, 1 and 4 connection workers) ...");
    let server = bench_server();

    eprintln!("registry (1 vs 2 active models, hot-swap stall) ...");
    let registry = bench_registry();

    eprintln!("router (1-shard proxy overhead, 2-shard kill-mid-stream failover) ...");
    let router = bench_router();

    let report = Report {
        matmul,
        conv,
        conv_long,
        gemm_i8,
        dcam: DcamRow {
            dims: DCAM_DIMS,
            series_len: DCAM_LEN,
            k: DCAM_K,
            new_ms,
            seed_ms,
            speedup: seed_ms / new_ms,
        },
        dcam_int8,
        dcam_many,
        eval,
        analyze,
        service,
        server,
        registry,
        router,
    };

    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    println!("{json}");
    let path = "BENCH_micro.json";
    match std::fs::write(path, &json) {
        Ok(()) => eprintln!("written to {path}"),
        Err(e) => eprintln!("warning: could not write {path}: {e}"),
    }
}
