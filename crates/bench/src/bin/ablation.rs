//! Ablation study of the dCAM design choices (DESIGN.md §2):
//!
//! 1. **Definition 3 decomposition** — dCAM multiplies the per-dimension
//!    positional variance `σ²_p(M̄)` by the global temporal mean `μ(M̄)`.
//!    We score each factor alone against the full product.
//! 2. **`only_correct` merging** — average `M̄` over correctly classified
//!    permutations (the reference implementation) vs. all permutations.
//! 3. **Baseline explainers** — occlusion saliency and cCAM on the same
//!    trained instances, for context.
//!
//! Run: `cargo run --release -p dcam-bench --bin ablation -- [--quick|--full]`

use dcam::dcam::{compute_dcam, DcamConfig};
use dcam::model::ArchKind;
use dcam::occlusion::{occlusion_map, OcclusionConfig};
use dcam::train::{build_and_train, Protocol};
use dcam::ModelScale;
use dcam_bench::harness::{parse_scale, write_json, RunScale};
use dcam_eval::{dr_acc, dr_acc_random};
use dcam_series::synth::inject::{generate, DatasetType, InjectConfig};
use dcam_series::synth::seeds::SeedKind;
use dcam_tensor::Tensor;
use serde::Serialize;

#[derive(Serialize)]
struct AblationRow {
    dataset_type: String,
    variant: String,
    dr_acc: f32,
}

/// Rebuilds the Definition-3 map from `mbar` with selectable factors.
fn recombine(mbar: &Tensor, mu: &[f32], use_var: bool, use_mu: bool) -> Tensor {
    let dims = mbar.dims();
    let (d, n) = (dims[0], dims[2]);
    let mut out = Tensor::zeros(&[d, n]);
    for dim in 0..d {
        for t in 0..n {
            let mut mean = 0.0f32;
            for p in 0..d {
                mean += mbar.at(&[dim, p, t]).unwrap();
            }
            mean /= d as f32;
            let mut var = 0.0f32;
            for p in 0..d {
                let v = mbar.at(&[dim, p, t]).unwrap() - mean;
                var += v * v;
            }
            var /= d as f32;
            let value = match (use_var, use_mu) {
                (true, true) => var * mu[t],
                (true, false) => var,
                (false, true) => mu[t],
                (false, false) => mean, // raw averaged activation
            };
            out.data_mut()[dim * n + t] = value;
        }
    }
    out
}

fn main() {
    let scale = parse_scale();
    let (d, n_instances, k, epochs, model_scale) = match scale {
        RunScale::Quick => (6usize, 8usize, 24usize, 25usize, ModelScale::Small),
        RunScale::Full => (20, 20, 100, 50, ModelScale::Small),
    };

    println!("=== dCAM ablation (D = {d}, {}) ===", scale.name());
    let mut rows: Vec<AblationRow> = Vec::new();

    for dataset_type in [DatasetType::Type1, DatasetType::Type2] {
        let mut cfg = InjectConfig::new(SeedKind::StarLight, dataset_type, d);
        cfg.n_per_class = 40;
        cfg.series_len = 64;
        cfg.pattern_len = 16;
        cfg.amplitude = 2.0;
        cfg.seed = 71;
        let train_ds = generate(&cfg);
        let mut test_cfg = cfg.clone();
        test_cfg.seed = 1071;
        test_cfg.n_per_class = n_instances;
        let test_ds = generate(&test_cfg);

        let protocol = Protocol {
            epochs,
            patience: epochs / 2,
            seed: 7,
            ..Default::default()
        };
        let (mut clf, outcome) = build_and_train(ArchKind::DCnn, &train_ds, model_scale, &protocol);
        println!(
            "\n{}: dCNN val acc {:.2}",
            dataset_type.name(),
            outcome.val_acc
        );
        let gap = clf.as_gap_mut().unwrap();

        let mut scores: Vec<(String, Vec<f32>)> = vec![
            ("dCAM (var × μ, only_correct)".into(), vec![]),
            ("dCAM (var × μ, all perms)".into(), vec![]),
            ("variance only".into(), vec![]),
            ("μ only (temporal)".into(), vec![]),
            ("mean activation (no Def.3)".into(), vec![]),
            ("occlusion saliency".into(), vec![]),
            ("random".into(), vec![]),
        ];

        for &i in test_ds.class_indices(1).iter().take(n_instances) {
            let series = &test_ds.samples[i];
            let mask = test_ds.masks[i].as_ref().unwrap();
            let base = DcamConfig {
                k,
                seed: 13,
                ..Default::default()
            };

            let r_correct = compute_dcam(
                gap,
                series,
                1,
                &DcamConfig {
                    only_correct: true,
                    ..base.clone()
                },
            );
            let r_all = compute_dcam(
                gap,
                series,
                1,
                &DcamConfig {
                    only_correct: false,
                    ..base
                },
            );

            scores[0].1.push(dr_acc(&r_correct.dcam, mask.tensor()));
            scores[1].1.push(dr_acc(&r_all.dcam, mask.tensor()));
            scores[2].1.push(dr_acc(
                &recombine(&r_correct.mbar, &r_correct.mu, true, false),
                mask.tensor(),
            ));
            scores[3].1.push(dr_acc(
                &recombine(&r_correct.mbar, &r_correct.mu, false, true),
                mask.tensor(),
            ));
            scores[4].1.push(dr_acc(
                &recombine(&r_correct.mbar, &r_correct.mu, false, false),
                mask.tensor(),
            ));
            let occ = occlusion_map(gap, series, 1, &OcclusionConfig::default())
                .expect("default occlusion window fits the benchmark series");
            scores[5].1.push(dr_acc(&occ, mask.tensor()));
            scores[6].1.push(dr_acc_random(mask.tensor()));
        }

        for (variant, vals) in &scores {
            let mean = vals.iter().sum::<f32>() / vals.len().max(1) as f32;
            println!("  {variant:<32} Dr-acc {mean:.3}");
            rows.push(AblationRow {
                dataset_type: dataset_type.name().to_string(),
                variant: variant.clone(),
                dr_acc: mean,
            });
        }
    }

    write_json("ablation", scale, &rows);
}
