//! Figure 12(c): training convergence — epochs and wall-clock time to reach
//! 90 % of the best loss, as the number of dimensions grows (§5.7).
//!
//! Paper shape being reproduced: c- and d-variants need a similar total
//! training *time*, while the plain baselines need more *epochs* than the
//! d-methods (the `C(T)` cube exposes `D` permutations per instance, so
//! dCNN effectively sees more data per epoch).
//!
//! Run: `cargo run --release -p dcam-bench --bin fig12_convergence -- [--quick|--full]`

use dcam::model::ArchKind;
use dcam::train::{build_and_train, Protocol};
use dcam::ModelScale;
use dcam_bench::harness::{parse_scale, timed, write_json, RunScale};
use dcam_series::synth::inject::{generate, DatasetType, InjectConfig};
use dcam_series::synth::seeds::SeedKind;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    method: String,
    dims: usize,
    epochs_to_90pct: Option<usize>,
    epochs_run: usize,
    total_secs: f64,
    secs_per_epoch: f64,
    best_val_loss: f32,
    underfit_or_overfit: bool,
}

fn main() {
    let scale = parse_scale();
    let (dims_grid, epochs, model_scale) = match scale {
        RunScale::Quick => (vec![6usize, 10], 25usize, ModelScale::Tiny),
        RunScale::Full => (vec![10, 20, 40, 60, 100], 50, ModelScale::Small),
    };
    let methods = [
        ArchKind::Cnn,
        ArchKind::CCnn,
        ArchKind::DCnn,
        ArchKind::ResNet,
        ArchKind::CResNet,
        ArchKind::DResNet,
        ArchKind::InceptionTime,
        ArchKind::CInceptionTime,
        ArchKind::DInceptionTime,
    ];

    println!(
        "=== Figure 12(c): convergence to 90% of best loss ({}) ===",
        scale.name()
    );
    println!(
        "{:<16}{:>4} | {:>10} {:>8} {:>9} {:>10}",
        "method", "D", "epochs@90%", "epochs", "total(s)", "s/epoch"
    );

    let mut rows = Vec::new();
    for &d in &dims_grid {
        // Type-1 ShapesAll-like datasets, as in the paper's Fig. 12(c).
        let mut cfg = InjectConfig::new(SeedKind::Shapes, DatasetType::Type1, d);
        cfg.n_per_class = 25;
        cfg.series_len = 64;
        cfg.pattern_len = 16;
        cfg.amplitude = 2.0;
        cfg.seed = 53;
        let train_ds = generate(&cfg);

        for kind in methods {
            let protocol = Protocol {
                epochs,
                patience: epochs, // no early stop: we time the loss curve
                seed: 7,
                ..Default::default()
            };
            let ((_, outcome), secs) =
                timed(|| build_and_train(kind, &train_ds, model_scale, &protocol));
            let to90 = outcome.history.epochs_to_fraction_of_best(0.9);
            let run = outcome.history.epochs_run;
            // The paper marks models whose first-epoch loss already equals
            // the best loss (under/overfitting) with a red dot.
            let flat = outcome
                .history
                .val_loss
                .first()
                .zip(outcome.history.val_loss.iter().copied().reduce(f32::min))
                .map(|(first, best)| (first - best).abs() < 0.05 * first.abs().max(1e-6))
                .unwrap_or(true);
            println!(
                "{:<16}{:>4} | {:>10} {:>8} {:>9.1} {:>10.3}{}",
                kind.name(),
                d,
                to90.map(|e| e.to_string()).unwrap_or_else(|| "-".into()),
                run,
                secs,
                secs / run.max(1) as f64,
                if flat { "  (under/overfit)" } else { "" }
            );
            rows.push(Row {
                method: kind.name().to_string(),
                dims: d,
                epochs_to_90pct: to90,
                epochs_run: run,
                total_secs: secs,
                secs_per_epoch: secs / run.max(1) as f64,
                best_val_loss: outcome.val_loss,
                underfit_or_overfit: flat,
            });
        }
    }

    write_json("fig12_convergence", scale, &rows);
}
