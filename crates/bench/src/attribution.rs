//! Method-agnostic attribution extraction: given any trained classifier of
//! the study and an instance, produce the explanation map the paper scores
//! (CAM / cCAM / dCAM / MTEX-grad) and its `Dr-acc`.

use dcam::cam::cam;
use dcam::dcam::{compute_dcam, DcamConfig};
use dcam::model::{ArchKind, Classifier};
use dcam::InputEncoding;
use dcam_eval::{dr_acc, dr_acc_univariate};
use dcam_series::{GroundTruthMask, MultivariateSeries};
use dcam_tensor::Tensor;

/// An attribution produced by one of the study's explanation methods.
pub enum Attribution {
    /// Dimension-wise map `(D, n)` (cCAM, dCAM, MTEX-grad).
    PerDimension(Tensor),
    /// Univariate map of length `n` (plain CAM) — scored by broadcasting to
    /// all dimensions, as the paper does for the starred Table-3 rows.
    Univariate(Vec<f32>),
}

/// Computes the explanation of `series` for `class` using the method that
/// belongs to `kind` (§5.2: CAM for plain, cCAM for c-, dCAM for d-,
/// grad-CAM for MTEX). Recurrent baselines have no attribution method.
pub fn attribution_for(
    kind: ArchKind,
    clf: &mut Classifier,
    series: &MultivariateSeries,
    class: usize,
    dcam_cfg: &DcamConfig,
) -> Option<Attribution> {
    match kind.encoding() {
        InputEncoding::Rnn => None,
        InputEncoding::Dcnn => {
            let gap = clf.as_gap_mut().expect("d-architecture is GAP-headed");
            let result = compute_dcam(gap, series, class, dcam_cfg);
            Some(Attribution::PerDimension(result.dcam))
        }
        InputEncoding::Ccnn => {
            if kind == ArchKind::Mtex {
                let mtex = clf.as_mtex_mut().expect("MTEX classifier");
                let x = InputEncoding::Ccnn.encode(series);
                let mut dims = vec![1usize];
                dims.extend_from_slice(x.dims());
                let xb = x.reshape(&dims).expect("batch of one");
                let maps = mtex.grad_cam(&xb, class);
                Some(Attribution::PerDimension(maps.combined))
            } else {
                let gap = clf.as_gap_mut().expect("c-architecture is GAP-headed");
                Some(Attribution::PerDimension(cam(gap, series, class).map))
            }
        }
        InputEncoding::Cnn => {
            let gap = clf.as_gap_mut().expect("plain architecture is GAP-headed");
            let map = cam(gap, series, class).map;
            Some(Attribution::Univariate(map.into_vec()))
        }
    }
}

/// `Dr-acc` of `kind`'s explanation on one instance with known ground truth.
pub fn dr_acc_of_method(
    kind: ArchKind,
    clf: &mut Classifier,
    series: &MultivariateSeries,
    mask: &GroundTruthMask,
    class: usize,
    dcam_cfg: &DcamConfig,
) -> Option<f32> {
    match attribution_for(kind, clf, series, class, dcam_cfg)? {
        Attribution::PerDimension(map) => Some(dr_acc(&map, mask.tensor())),
        Attribution::Univariate(cam) => Some(dr_acc_univariate(&cam, mask.tensor())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcam::ModelScale;
    use dcam_series::synth::inject::{generate, DatasetType, InjectConfig};
    use dcam_series::synth::seeds::SeedKind;

    fn dataset() -> dcam_series::Dataset {
        let mut cfg = InjectConfig::new(SeedKind::Shapes, DatasetType::Type1, 4);
        cfg.n_per_class = 4;
        cfg.series_len = 48;
        cfg.pattern_len = 12;
        generate(&cfg)
    }

    #[test]
    fn every_method_yields_expected_attribution_shape() {
        let ds = dataset();
        let idx = ds.class_indices(1)[0];
        let series = &ds.samples[idx];
        let mask = ds.masks[idx].as_ref().unwrap();
        let cfg = DcamConfig {
            k: 4,
            only_correct: false,
            ..Default::default()
        };
        for kind in ArchKind::ALL {
            let mut clf = Classifier::for_dataset(kind, &ds, ModelScale::Tiny, 0);
            let attr = attribution_for(kind, &mut clf, series, 1, &cfg);
            match (kind.encoding(), attr) {
                (InputEncoding::Rnn, None) => {}
                (InputEncoding::Cnn, Some(Attribution::Univariate(v))) => {
                    assert_eq!(v.len(), 48, "{}", kind.name());
                }
                (_, Some(Attribution::PerDimension(m))) => {
                    assert_eq!(m.dims(), &[4, 48], "{}", kind.name());
                }
                _ => panic!("unexpected attribution for {}", kind.name()),
            }
            // Dr-acc is defined (or None for recurrents) and within [0, 1].
            let mut clf2 = Classifier::for_dataset(kind, &ds, ModelScale::Tiny, 0);
            match dr_acc_of_method(kind, &mut clf2, series, mask, 1, &cfg) {
                Some(v) => assert!((0.0..=1.0).contains(&v), "{}: {v}", kind.name()),
                None => assert_eq!(kind.encoding(), InputEncoding::Rnn),
            }
        }
    }
}
