//! Experiment harness regenerating every table and figure of the dCAM paper.
//!
//! Each binary in `src/bin/` reproduces one artifact (see DESIGN.md §3 for
//! the full index):
//!
//! | binary              | paper artifact |
//! |---------------------|----------------|
//! | `table2`            | Table 2 (+ Fig. 8 scatter points) |
//! | `table3`            | Table 3 (+ Fig. 9 series) |
//! | `fig10`             | Fig. 10 — Dr-acc vs number of permutations `k` |
//! | `fig11`             | Fig. 11 — C-acc / Dr-acc / `n_g/k` coupling |
//! | `fig12_convergence` | Fig. 12(c) — epochs & time to 90% of best loss |
//! | `fig13_usecase`     | Fig. 13 — surgeon-skills use case |
//!
//! Criterion benches in `benches/` cover the timing panels:
//! `fig12_training` (training time per epoch vs `|T|` and `D`) and
//! `fig12_dcam` (dCAM computation time vs `D`, `|T|`, `k`).
//!
//! All binaries accept `--quick` (default) or `--full`, print the table to
//! stdout and write machine-readable JSON under `results/`.

pub mod attribution;
pub mod harness;

pub use attribution::{attribution_for, dr_acc_of_method};
pub use harness::{parse_scale, write_json, RunScale};
