//! Shared experiment plumbing: scale flags, result serialization, timing.

use serde::Serialize;
use std::path::PathBuf;
use std::time::Instant;

/// The workspace-wide argmax (lowest-index tie-breaking), re-exported so
/// experiment binaries score predictions exactly like the training loop and
/// the explanation loop do.
pub use dcam_tensor::argmax;

/// Experiment scale selected on the command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunScale {
    /// Reduced grid that completes in minutes on a laptop CPU.
    Quick,
    /// The closest practical approximation of the paper's grid.
    Full,
}

impl RunScale {
    /// Scale name for output files.
    pub fn name(self) -> &'static str {
        match self {
            RunScale::Quick => "quick",
            RunScale::Full => "full",
        }
    }
}

/// Parses `--quick` / `--full` from `std::env::args` (default: quick).
pub fn parse_scale() -> RunScale {
    let mut scale = RunScale::Quick;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--quick" => scale = RunScale::Quick,
            "--full" => scale = RunScale::Full,
            "--help" | "-h" => {
                eprintln!("usage: <experiment> [--quick|--full]");
                std::process::exit(0);
            }
            other => eprintln!("ignoring unknown argument {other:?}"),
        }
    }
    scale
}

/// Directory where experiment JSON lands (`results/` at the workspace root,
/// falling back to the current directory).
pub fn results_dir() -> PathBuf {
    let candidates = [PathBuf::from("results"), PathBuf::from("../../results")];
    for c in &candidates {
        if c.is_dir() {
            return c.clone();
        }
    }
    std::fs::create_dir_all("results").ok();
    PathBuf::from("results")
}

/// Serializes an experiment result as pretty JSON under `results/`.
pub fn write_json<T: Serialize>(name: &str, scale: RunScale, value: &T) {
    let path = results_dir().join(format!("{}-{}.json", name, scale.name()));
    match serde_json::to_string_pretty(value) {
        Ok(s) => {
            if let Err(e) = std::fs::write(&path, s) {
                eprintln!("warning: could not write {}: {e}", path.display());
            } else {
                eprintln!("results written to {}", path.display());
            }
        }
        Err(e) => eprintln!("warning: could not serialize {name}: {e}"),
    }
}

/// Runs `f`, returning its output and the elapsed seconds.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Formats a float cell to two decimals, using `-` for NaN.
pub fn cell(v: f32) -> String {
    if v.is_nan() {
        "  -  ".into()
    } else {
        format!("{v:5.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_names() {
        assert_eq!(RunScale::Quick.name(), "quick");
        assert_eq!(RunScale::Full.name(), "full");
    }

    #[test]
    fn cell_formats() {
        assert_eq!(cell(0.5), " 0.50");
        assert_eq!(cell(f32::NAN), "  -  ");
    }

    #[test]
    fn timed_measures() {
        let (v, secs) = timed(|| 42);
        assert_eq!(v, 42);
        assert!(secs >= 0.0);
    }
}
