//! Criterion panel for the cross-instance batched explanation engine:
//! aggregate cost of explaining N ∈ {1, 4, 16} concurrent instances through
//! one `compute_dcam_many` call vs N sequential `compute_dcam` calls.
//! Pin `DCAM_THREADS=1` for run-to-run comparability.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dcam::arch::cnn;
use dcam::dcam::{compute_dcam, DcamConfig};
use dcam::dcam_many::{compute_dcam_many, DcamManyConfig, DcamRequest};
use dcam::{InputEncoding, ModelScale};
use dcam_series::MultivariateSeries;
use dcam_tensor::SeededRng;
use std::time::Duration;

const DIMS: usize = 20;
const LEN: usize = 128;
const K: usize = 100;

fn series_set(n_inst: usize) -> Vec<MultivariateSeries> {
    (0..n_inst)
        .map(|i| {
            let mut rng = SeededRng::new(50 + i as u64);
            let rows: Vec<Vec<f32>> = (0..DIMS)
                .map(|_| (0..LEN).map(|_| rng.normal()).collect())
                .collect();
            MultivariateSeries::from_rows(&rows)
        })
        .collect()
}

fn bench_cross_instance(c: &mut Criterion) {
    let mut group = c.benchmark_group("dcam_cross_instance");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(4));
    group.warm_up_time(Duration::from_millis(500));
    let mut rng = SeededRng::new(1);
    let mut model = cnn(InputEncoding::Dcnn, DIMS, 2, ModelScale::Tiny, &mut rng);
    let dcam_cfg = DcamConfig {
        k: K,
        only_correct: false,
        seed: 3,
        ..Default::default()
    };
    let many_cfg = DcamManyConfig {
        dcam: dcam_cfg.clone(),
        ..Default::default()
    };
    for n_inst in [1usize, 4, 16] {
        let series = series_set(n_inst);
        group.bench_with_input(BenchmarkId::new("batched", n_inst), &n_inst, |b, _| {
            let requests: Vec<DcamRequest<'_>> = series
                .iter()
                .map(|series| DcamRequest { series, class: 0 })
                .collect();
            b.iter(|| compute_dcam_many(&mut model, &requests, &many_cfg));
        });
        group.bench_with_input(BenchmarkId::new("sequential", n_inst), &n_inst, |b, _| {
            b.iter(|| {
                for s in &series {
                    std::hint::black_box(compute_dcam(&mut model, s, 0, &dcam_cfg));
                }
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cross_instance);
criterion_main!(benches);
