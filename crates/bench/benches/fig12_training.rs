//! Figure 12(a): training execution time for one epoch while varying the
//! series length (a.1) and the number of dimensions (a.2), for all conv
//! architecture families (§5.7).
//!
//! Paper shape: time grows with both knobs; the c- and d-variants of one
//! family cost about the same per epoch; the d-variants pay an extra factor
//! from the `(D, D, n)` cube (`O(ℓ·|T|·D²)` per kernel vs `O(ℓ·|T|·D)`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dcam::model::{ArchKind, Classifier};
use dcam::train::encode_dataset;
use dcam::ModelScale;
use dcam_nn::layers::Layer;
use dcam_nn::loss::softmax_cross_entropy;
use dcam_nn::optim::{Adam, Optimizer};
use dcam_nn::trainer::stack;
use dcam_series::synth::inject::{generate, DatasetType, InjectConfig};
use dcam_series::synth::seeds::SeedKind;
use dcam_tensor::Tensor;
use std::time::Duration;

const METHODS: [ArchKind; 9] = [
    ArchKind::Cnn,
    ArchKind::CCnn,
    ArchKind::DCnn,
    ArchKind::ResNet,
    ArchKind::CResNet,
    ArchKind::DResNet,
    ArchKind::InceptionTime,
    ArchKind::CInceptionTime,
    ArchKind::DInceptionTime,
];

fn dataset(d: usize, len: usize) -> dcam_series::Dataset {
    let mut cfg = InjectConfig::new(SeedKind::StarLight, DatasetType::Type1, d);
    cfg.n_per_class = 2; // one mini-batch of 4 per "epoch" measurement
    cfg.series_len = len;
    cfg.pattern_len = (len / 4).max(8);
    generate(&cfg)
}

/// One optimizer step over a batch of 4: the unit the paper's per-epoch
/// timing scales with.
fn train_step(clf: &mut Classifier, batch: &Tensor, labels: &[usize], opt: &mut Adam) {
    clf.zero_grads();
    let logits = clf.forward(batch, true);
    let (_, grad) = softmax_cross_entropy(&logits, labels);
    clf.backward(&grad);
    opt.step(clf);
}

fn bench_vs_length(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12a1_train_vs_length");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    for &len in &[32usize, 64, 128] {
        let ds = dataset(10, len);
        for kind in METHODS {
            let set = encode_dataset(&ds, kind.encoding());
            let refs: Vec<&Tensor> = set.inputs.iter().collect();
            let batch = stack(&refs);
            let labels = set.labels.clone();
            group.bench_with_input(BenchmarkId::new(kind.name(), len), &len, |b, _| {
                let mut clf = Classifier::for_dataset(kind, &ds, ModelScale::Tiny, 0);
                let mut opt = Adam::new(0.01);
                b.iter(|| train_step(&mut clf, &batch, &labels, &mut opt));
            });
        }
    }
    group.finish();
}

fn bench_vs_dims(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12a2_train_vs_dims");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    for &d in &[5usize, 10, 20] {
        let ds = dataset(d, 64);
        for kind in METHODS {
            let set = encode_dataset(&ds, kind.encoding());
            let refs: Vec<&Tensor> = set.inputs.iter().collect();
            let batch = stack(&refs);
            let labels = set.labels.clone();
            group.bench_with_input(BenchmarkId::new(kind.name(), d), &d, |b, _| {
                let mut clf = Classifier::for_dataset(kind, &ds, ModelScale::Tiny, 0);
                let mut opt = Adam::new(0.01);
                b.iter(|| train_step(&mut clf, &batch, &labels, &mut opt));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_vs_length, bench_vs_dims);
criterion_main!(benches);
