//! Figure 12(b): dCAM computation time while varying (b.1) the number of
//! dimensions, (b.2) the series length, and (b.3) the number of
//! permutations `k` (§5.7).
//!
//! Paper shape: superlinear in `D` (the cube is `D²·n` and every
//! permutation costs a forward pass), linear in `|T|` and in `k`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dcam::arch::cnn;
use dcam::dcam::{compute_dcam, DcamConfig};
use dcam::{InputEncoding, ModelScale};
use dcam_series::MultivariateSeries;
use dcam_tensor::SeededRng;
use std::time::Duration;

fn series(d: usize, n: usize) -> MultivariateSeries {
    let mut rng = SeededRng::new(1);
    let rows: Vec<Vec<f32>> = (0..d)
        .map(|_| (0..n).map(|_| rng.normal()).collect())
        .collect();
    MultivariateSeries::from_rows(&rows)
}

fn cfg(k: usize) -> DcamConfig {
    DcamConfig {
        k,
        only_correct: false,
        seed: 3,
        ..Default::default()
    }
}

fn bench_vs_dims(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12b1_dcam_vs_dims");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    for &d in &[5usize, 10, 20] {
        let s = series(d, 64);
        let mut rng = SeededRng::new(0);
        let mut model = cnn(InputEncoding::Dcnn, d, 2, ModelScale::Tiny, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, _| {
            b.iter(|| compute_dcam(&mut model, &s, 0, &cfg(8)));
        });
    }
    group.finish();
}

fn bench_vs_length(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12b2_dcam_vs_length");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    for &n in &[32usize, 64, 128, 256] {
        let s = series(8, n);
        let mut rng = SeededRng::new(0);
        let mut model = cnn(InputEncoding::Dcnn, 8, 2, ModelScale::Tiny, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| compute_dcam(&mut model, &s, 0, &cfg(8)));
        });
    }
    group.finish();
}

fn bench_vs_k(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12b3_dcam_vs_k");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    let s = series(8, 64);
    let mut rng = SeededRng::new(0);
    let mut model = cnn(InputEncoding::Dcnn, 8, 2, ModelScale::Tiny, &mut rng);
    for &k in &[4usize, 8, 16, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| compute_dcam(&mut model, &s, 0, &cfg(k)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_vs_dims, bench_vs_length, bench_vs_k);
criterion_main!(benches);
