//! Micro-benchmarks of the substrate hot paths: the row-wise convolution
//! (forward/backward, both execution strategies), the `C(T)` cube
//! construction, GEMM (all transpose variants), and the `M` transformation
//! inside dCAM. These are ablation-style benches for the design choices
//! called out in DESIGN.md (batch-parallel conv kernels, contiguous cube
//! layout, im2col + packed GEMM).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dcam_nn::layers::{Conv2dRows, ConvStrategy, Layer};
use dcam_series::cube;
use dcam_series::MultivariateSeries;
use dcam_tensor::{SeededRng, Tensor};
use std::time::Duration;

fn bench_conv(c: &mut Criterion) {
    let mut group = c.benchmark_group("conv2drows");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    let mut rng = SeededRng::new(0);
    for &(c_in, c_out, h, w) in &[(8usize, 16usize, 1usize, 128usize), (8, 16, 8, 64)] {
        let x = Tensor::uniform(&[4, c_in, h, w], -1.0, 1.0, &mut rng);
        for (name, strategy) in [
            ("direct", ConvStrategy::Direct),
            ("im2col", ConvStrategy::Im2col),
        ] {
            let mut conv = Conv2dRows::same(c_in, c_out, 3, &mut rng);
            conv.set_strategy(strategy);
            group.bench_with_input(
                BenchmarkId::new(format!("forward_{name}"), format!("{c_in}x{c_out}x{h}x{w}")),
                &w,
                |b, _| {
                    b.iter(|| conv.forward(&x, false));
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("fwd_bwd_{name}"), format!("{c_in}x{c_out}x{h}x{w}")),
                &w,
                |b, _| {
                    b.iter(|| {
                        let y = conv.forward(&x, true);
                        conv.backward(&y)
                    });
                },
            );
        }
    }
    group.finish();
}

fn bench_cube(c: &mut Criterion) {
    let mut group = c.benchmark_group("cube_construction");
    let mut rng = SeededRng::new(1);
    for &d in &[10usize, 20, 40] {
        let rows: Vec<Vec<f32>> = (0..d)
            .map(|_| (0..128).map(|_| rng.normal()).collect())
            .collect();
        let s = MultivariateSeries::from_rows(&rows);
        group.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, _| {
            b.iter(|| cube::cube(&s));
        });
    }
    group.finish();
}

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    let mut rng = SeededRng::new(2);
    for &n in &[32usize, 64, 128] {
        let a = Tensor::uniform(&[n, n], -1.0, 1.0, &mut rng);
        let b_ = Tensor::uniform(&[n, n], -1.0, 1.0, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bch, _| {
            bch.iter(|| a.matmul(&b_).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("tn", n), &n, |bch, _| {
            bch.iter(|| a.matmul_tn(&b_).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("nt", n), &n, |bch, _| {
            bch.iter(|| a.matmul_nt(&b_).unwrap());
        });
        // Allocation-free variant writing into a caller buffer.
        let mut out = Tensor::zeros(&[n, n]);
        group.bench_with_input(BenchmarkId::new("into", n), &n, |bch, _| {
            bch.iter(|| a.matmul_into(&b_, &mut out).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_conv, bench_cube, bench_matmul);
criterion_main!(benches);
