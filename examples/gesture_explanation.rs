//! Figure-1 style demonstration: CAM vs dCAM on a RacketSports-like
//! gesture-classification task.
//!
//! The paper's opening example shows that the univariate CAM highlights the
//! same temporal window across *all* sensors of a badminton gesture, while
//! dCAM pinpoints which sensors (gyroscope vs accelerometer axes) actually
//! distinguish a "smash" from a "clear". This example reproduces that
//! contrast on the RacketSports stand-in: train CNN and dCNN, explain the
//! same instance with both, and print the two maps side by side.
//!
//! Run: `cargo run --release --example gesture_explanation`

use dcam::cam::cam;
use dcam::dcam::{compute_dcam, DcamConfig};
use dcam::model::ArchKind;
use dcam::train::{build_and_train, Protocol};
use dcam::ModelScale;
use dcam_series::synth::uea::{generate, meta, UeaStandInConfig};
use dcam_tensor::Tensor;

fn bar(v: f32, max: f32) -> char {
    let glyphs = [' ', '.', ':', '-', '=', '+', '*', '#', '@'];
    glyphs[(((v / max).clamp(0.0, 1.0)) * (glyphs.len() - 1) as f32) as usize]
}

fn print_map(title: &str, map: &Tensor) {
    println!("{title}");
    let (d, n) = (map.dims()[0], map.dims()[1]);
    let max = map.max().max(1e-9);
    // Positive part only (both CAM and dCAM are read as "high = important").
    for dim in 0..d {
        print!("  sensor {dim} |");
        for t in 0..n {
            print!("{}", bar(map.at(&[dim, t]).unwrap().max(0.0), max));
        }
        println!("|");
    }
}

fn main() {
    // RacketSports: 4 gesture classes, 6 sensors (3 gyroscope + 3
    // accelerometer axes), short series — per the UEA metadata.
    let m = meta("RacketSports").expect("archive metadata");
    let cfg = UeaStandInConfig {
        n_per_class: 24,
        max_len: 0,
        max_dims: 0,
        seed: 9,
    };
    let ds = generate(m, &cfg);
    println!(
        "RacketSports stand-in: {} classes, D = {}, |T| = {}",
        ds.n_classes,
        ds.n_dims(),
        ds.series_len()
    );

    let protocol = Protocol {
        epochs: 40,
        seed: 1,
        ..Default::default()
    };

    // Plain CNN -> univariate CAM.
    let (mut cnn_clf, cnn_out) = build_and_train(ArchKind::Cnn, &ds, ModelScale::Tiny, &protocol);
    // dCNN -> dCAM.
    let (mut dcnn_clf, dcnn_out) =
        build_and_train(ArchKind::DCnn, &ds, ModelScale::Tiny, &protocol);
    println!(
        "CNN val acc {:.2}; dCNN val acc {:.2}",
        cnn_out.val_acc, dcnn_out.val_acc
    );

    // Explain one instance of class 0 ("smash") with both methods.
    let idx = ds.class_indices(0)[0];
    let series = &ds.samples[idx];

    let cam_result = cam(cnn_clf.as_gap_mut().unwrap(), series, 0);
    // Broadcast the univariate CAM to all sensors, as the paper's Figure 1
    // top heatmap does implicitly.
    let n = series.len();
    let d = series.n_dims();
    let mut cam_broadcast = Tensor::zeros(&[d, n]);
    for dim in 0..d {
        for t in 0..n {
            cam_broadcast
                .set(&[dim, t], cam_result.map.at(&[0, t]).unwrap())
                .unwrap();
        }
    }
    print_map(
        "\nCAM (CNN) — same saliency for every sensor:",
        &cam_broadcast,
    );

    let dcam_result = compute_dcam(
        dcnn_clf.as_gap_mut().unwrap(),
        series,
        0,
        &DcamConfig {
            k: 48,
            ..Default::default()
        },
    );
    print_map(
        &format!(
            "\ndCAM (dCNN) — sensor-specific saliency (ng/k = {:.2}):",
            dcam_result.ng_ratio()
        ),
        &dcam_result.dcam,
    );

    // Quantify the contrast the figure makes visually: per-sensor variance
    // of the saliency. CAM has none by construction; dCAM concentrates
    // activation on the discriminant sensors.
    let per_dim_mass = |map: &Tensor| -> Vec<f32> {
        (0..d)
            .map(|dim| {
                (0..n)
                    .map(|t| map.at(&[dim, t]).unwrap().max(0.0))
                    .sum::<f32>()
            })
            .collect()
    };
    let mass = per_dim_mass(&dcam_result.dcam);
    let total: f32 = mass.iter().sum::<f32>().max(1e-9);
    println!("\ndCAM activation share per sensor:");
    for (dim, v) in mass.iter().enumerate() {
        println!("  sensor {dim}: {:5.1}%", 100.0 * v / total);
    }
    println!("(CAM cannot produce this breakdown: its map is identical for every sensor.)");
}
