//! Surgeon-skills explanation (the paper's §5.8 use case, Figure 13),
//! scaled for a laptop run.
//!
//! Trains a dCNN on the simulated JIGSAWS suturing kinematics to separate
//! novice / intermediate / expert surgeons, then uses dCAM to answer the
//! question the paper poses: *which sensors, during which gestures, give a
//! novice away?* The simulator plants the answer (gripper-angle and
//! rotation-matrix sensors during gestures G6 and G9), so the example can
//! check dCAM's verdict against the truth.
//!
//! Run: `cargo run --release --example surgeon_skills`

use dcam::aggregate::{mean_activation_per_window, rank_dimensions};
use dcam::dcam::{compute_dcam, DcamConfig};
use dcam::model::ArchKind;
use dcam::train::{build_and_train, Protocol};
use dcam::ModelScale;
use dcam_series::synth::jigsaws::{
    generate, sensor_kind, sensor_name, JigsawsConfig, SensorKind, DISCRIMINANT_GESTURES,
    SENSORS_PER_GROUP,
};

fn main() {
    // One manipulator group (19 sensors) keeps the example under a minute;
    // the fig13_usecase experiment binary runs the full 4-group setup.
    let cfg = JigsawsConfig {
        n_groups: 1,
        gesture_len: 10,
        n_per_class: [14, 8, 8],
        seed: 11,
    };
    let data = generate(&cfg);
    let ds = &data.dataset;
    println!(
        "simulated kinematics: {} recordings, {} sensors, {} samples each",
        ds.len(),
        ds.n_dims(),
        ds.series_len()
    );

    let protocol = Protocol {
        epochs: 30,
        seed: 2,
        ..Default::default()
    };
    let (mut clf, outcome) = build_and_train(ArchKind::DCnn, ds, ModelScale::Tiny, &protocol);
    println!(
        "skill classifier validation accuracy: {:.2}",
        outcome.val_acc
    );

    // Explain the novice class.
    let gap = clf.as_gap_mut().unwrap();
    let dcam_cfg = DcamConfig {
        k: 16,
        seed: 7,
        ..Default::default()
    };
    let mut maps = Vec::new();
    for &i in data.dataset.class_indices(0).iter().take(6) {
        let result = compute_dcam(gap, &ds.samples[i], 0, &dcam_cfg);
        maps.push(result.dcam);
    }

    println!("\nmost discriminant sensors for the novice class:");
    for (rank, (dim, score)) in rank_dimensions(&maps).iter().take(6).enumerate() {
        let kind = sensor_kind(dim % SENSORS_PER_GROUP);
        let planted = matches!(kind, SensorKind::GripperAngle | SensorKind::Rotation);
        println!(
            "  {}. {:<24} score {:.4}{}",
            rank + 1,
            sensor_name(*dim),
            score,
            if planted {
                "   [planted discriminant]"
            } else {
                ""
            }
        );
    }

    println!("\naverage dCAM activation per gesture:");
    let per_window = mean_activation_per_window(&maps, &data.gesture_windows);
    let d = ds.n_dims();
    for (gi, _) in data.gesture_windows.iter().enumerate() {
        let mean: f32 = (0..d)
            .map(|dim| per_window.at(&[dim, gi]).unwrap())
            .sum::<f32>()
            / d as f32;
        let marker = if DISCRIMINANT_GESTURES.contains(&gi) {
            "  <- planted discriminant gesture"
        } else {
            ""
        };
        println!("  G{:<2} {:>8.4}{}", gi + 1, mean, marker);
    }

    println!(
        "\nInterpretation: as in the paper's JIGSAWS study, dCAM points to the \
         gripper-angle and rotation sensors inside gestures G6/G9 — the exact \
         behaviours that separate novices from experts — rather than just \
         highlighting a time window like the univariate CAM would."
    );
}
