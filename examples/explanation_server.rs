//! Explanation server simulation: a stream of concurrent dCAM requests is
//! packed through [`DcamBatcher`] into shared forward mega-batches, served
//! by the cross-instance engine, and compared against the same requests
//! served one `compute_dcam` call at a time.
//!
//! Run: `cargo run --release --example explanation_server`
//! (pin `DCAM_THREADS=1` for reproducible timing splits)

use dcam::dcam::{compute_dcam, DcamConfig};
use dcam::dcam_many::{DcamBatcher, DcamBatcherConfig, DcamManyConfig, Ticket};
use dcam::model::ArchKind;
use dcam::train::{build_and_train, Protocol};
use dcam::{DcamResult, ModelScale};
use dcam_series::synth::inject::{generate, DatasetType, InjectConfig};
use dcam_series::synth::seeds::SeedKind;
use std::time::Instant;

fn main() {
    // 1. A Type-1 benchmark and a briefly trained dCNN — the model an
    //    explanation service would hold in memory.
    let mut cfg = InjectConfig::new(SeedKind::StarLight, DatasetType::Type1, 6);
    cfg.n_per_class = 24;
    cfg.series_len = 64;
    cfg.pattern_len = 16;
    cfg.amplitude = 2.0;
    cfg.seed = 7;
    let ds = generate(&cfg);
    let protocol = Protocol {
        epochs: 15,
        patience: 15,
        ..Default::default()
    };
    let (mut clf, outcome) = build_and_train(ArchKind::DCnn, &ds, ModelScale::Tiny, &protocol);
    let model = clf.as_gap_mut().expect("dCNN has a GAP head");
    println!(
        "model ready: dCNN, val accuracy {:.2} — serving dCAM requests\n",
        outcome.val_acc
    );

    // 2. The incoming request stream: every class-1 instance asks for its
    //    dCAM. The batcher flushes whenever 8 requests are waiting; the
    //    trailing flush serves the stragglers (a server would run it on a
    //    timer).
    let dcam_cfg = DcamConfig {
        k: 32,
        only_correct: false,
        ..Default::default()
    };
    let batcher_cfg = DcamBatcherConfig {
        many: DcamManyConfig {
            dcam: dcam_cfg.clone(),
            max_batch: 8,
        },
        max_pending: 8,
    };
    let request_idx: Vec<usize> = ds.class_indices(1);
    println!(
        "request stream: {} instances, flush policy: max_pending = {}, mega-batch = {} cubes",
        request_idx.len(),
        batcher_cfg.max_pending,
        batcher_cfg.many.max_batch
    );

    let mut batcher = DcamBatcher::new(batcher_cfg);
    let mut served: Vec<(Ticket, DcamResult)> = Vec::new();
    let t_batched = Instant::now();
    for &idx in &request_idx {
        let (_ticket, mut done) = batcher.submit(model, &ds.samples[idx], 1);
        if !done.is_empty() {
            println!("  auto-flush served {} requests", done.len());
        }
        served.append(&mut done);
    }
    let mut rest = batcher.flush(model);
    if !rest.is_empty() {
        println!("  final flush served {} stragglers", rest.len());
    }
    served.append(&mut rest);
    let batched_elapsed = t_batched.elapsed();
    assert_eq!(served.len(), request_idx.len());

    // 3. The same stream, served the PR 1 way: one compute_dcam per request.
    let t_seq = Instant::now();
    let sequential: Vec<DcamResult> = request_idx
        .iter()
        .map(|&idx| compute_dcam(model, &ds.samples[idx], 1, &dcam_cfg))
        .collect();
    let seq_elapsed = t_seq.elapsed();

    // 4. Same answers, fewer milliseconds.
    for ((ticket, batched), single) in served.iter().zip(&sequential) {
        let max_diff = batched
            .dcam
            .data()
            .iter()
            .zip(single.dcam.data())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(
            max_diff < 1e-3,
            "ticket {ticket}: batched and sequential dCAM disagree ({max_diff})"
        );
    }
    println!(
        "\nall {} batched results match their sequential counterparts",
        served.len()
    );
    println!(
        "batched engine: {:>8.1} ms total ({:.1} ms/request)",
        batched_elapsed.as_secs_f64() * 1e3,
        batched_elapsed.as_secs_f64() * 1e3 / served.len() as f64
    );
    println!(
        "sequential:     {:>8.1} ms total ({:.1} ms/request)",
        seq_elapsed.as_secs_f64() * 1e3,
        seq_elapsed.as_secs_f64() * 1e3 / sequential.len() as f64
    );
    println!(
        "aggregate throughput gain: {:.2}x",
        seq_elapsed.as_secs_f64() / batched_elapsed.as_secs_f64()
    );

    let mean_ng: f32 = served.iter().map(|(_, r)| r.ng_ratio()).sum::<f32>() / served.len() as f32;
    println!("mean explanation quality proxy ng/k: {mean_ng:.2}");
}
