//! The explanation service behind a **real HTTP server**: train a small
//! dCNN, register it by name in a [`dcam::registry::ModelRegistry`], boot
//! `dcam-server` on a loopback port, drive it with concurrent HTTP
//! clients (the same minimal in-repo client the integration tests use)
//! that route by model name, check every served map against a synchronous
//! `compute_dcam`, and finish with a SIGTERM-style graceful drain.
//!
//! Run: `cargo run --release --example explanation_server`
//! (pin `DCAM_THREADS=1` for reproducible timing splits)

use dcam::dcam::{compute_dcam, DcamConfig};
use dcam::dcam_many::{DcamBatcherConfig, DcamManyConfig};
use dcam::model::ArchKind;
use dcam::registry::ModelRegistry;
use dcam::service::{Backpressure, DcamService, QueuePolicy, ServiceConfig};
use dcam::train::{build_and_train, Protocol};
use dcam::ModelScale;
use dcam_series::synth::inject::{generate, DatasetType, InjectConfig};
use dcam_series::synth::seeds::SeedKind;
use dcam_server::{explain_payload_for, serve_registry, HttpClient, ServerConfig};
use serde::Value;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The name the trained model serves under — requests carry it in their
/// `"model"` field, and `GET /v1/models` lists it.
const MODEL_NAME: &str = "starlight-type1";

fn main() {
    // 1. A Type-1 benchmark and a briefly trained dCNN — the model an
    //    explanation service holds in memory.
    let mut cfg = InjectConfig::new(SeedKind::StarLight, DatasetType::Type1, 6);
    cfg.n_per_class = 24;
    cfg.series_len = 64;
    cfg.pattern_len = 16;
    cfg.amplitude = 2.0;
    cfg.seed = 7;
    let ds = generate(&cfg);
    let protocol = Protocol {
        epochs: 15,
        patience: 15,
        ..Default::default()
    };
    let (clf, outcome) = build_and_train(ArchKind::DCnn, &ds, ModelScale::Tiny, &protocol);
    let model = clf.into_gap().expect("dCNN has a GAP head");
    println!(
        "model ready: dCNN, val accuracy {:.2} — starting HTTP explanation server\n",
        outcome.val_acc
    );

    // 2. The asynchronous service underneath: one worker, flushes at 8
    //    buffered requests or after 2 ms, per-tenant fair queueing, and
    //    worker re-spawn armed (an engine panic rebuilds the model from a
    //    checkpoint captured right here).
    let dcam_cfg = DcamConfig {
        k: 128,
        only_correct: false,
        ..Default::default()
    };
    let service_cfg = ServiceConfig {
        batcher: DcamBatcherConfig {
            many: DcamManyConfig {
                dcam: dcam_cfg.clone(),
                max_batch: 8,
            },
            max_pending: 8,
            max_wait: Some(Duration::from_millis(2)),
        },
        queue_capacity: 128,
        backpressure: Backpressure::Block,
        queue_policy: QueuePolicy::FairPerTenant,
        latency_window: 1024,
        precision: dcam::Precision::default(),
    };
    let d = ds.n_dims();
    let build = move || {
        dcam::arch::cnn(
            dcam::InputEncoding::Dcnn,
            d,
            2,
            ModelScale::Tiny,
            &mut dcam_tensor::SeededRng::new(1),
        )
    };
    let service = DcamService::spawn_with_recovery(vec![model], service_cfg.clone(), build);

    // 3. The model registry: the trained service gets a *name* and a
    //    version. A production deployment registers one entry per
    //    dataset/model and hot-swaps entries as retrained checkpoints
    //    land (`POST /v1/models/{name}/swap`) — here one entry is enough
    //    to route by name.
    let registry = Arc::new(ModelRegistry::new());
    registry
        .register(MODEL_NAME, service, "", service_cfg)
        .expect("register trained model");

    // 4. The HTTP layer: loopback listener on an ephemeral port. One
    //    connection worker per client connection — each worker drives one
    //    connection at a time, so this is what lets 8 requests be in
    //    flight (and batch together) simultaneously.
    let server = serve_registry(
        Arc::clone(&registry),
        ServerConfig {
            conn_workers: 8,
            ..Default::default()
        },
    )
    .expect("bind loopback listener");
    let addr = server.addr().to_string();
    println!("dcam-server listening on http://{addr}");
    let mut probe = HttpClient::connect(&addr).expect("connect");
    let health = probe.get("/healthz").expect("healthz");
    println!("GET /healthz   -> {} {}", health.status, health.body);
    let models = probe.get("/v1/models").expect("models");
    println!("GET /v1/models -> {} {}\n", models.status, models.body);

    // 5. The client side: 8 concurrent HTTP connections, each asking for
    //    the dCAM of a share of the class-1 instances — addressed to the
    //    registered model by name.
    let request_idx: Vec<usize> = ds.class_indices(1);
    println!(
        "request stream: {} instances from 8 HTTP connections\n",
        request_idx.len()
    );
    let t_http = Instant::now();
    let served: Vec<(usize, Vec<f32>)> = std::thread::scope(|scope| {
        let chunks: Vec<Vec<usize>> = request_idx
            .chunks(request_idx.len().div_ceil(8))
            .map(<[usize]>::to_vec)
            .collect();
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| {
                let addr = addr.clone();
                let ds = &ds;
                scope.spawn(move || {
                    let mut client = HttpClient::connect(&addr).expect("connect");
                    chunk
                        .into_iter()
                        .map(|idx| {
                            let resp = client
                                .post(
                                    "/v1/explain",
                                    &explain_payload_for(&ds.samples[idx], 1, Some(MODEL_NAME)),
                                )
                                .expect("request");
                            assert_eq!(resp.status, 200, "body: {}", resp.body);
                            let json = resp.json().expect("json body");
                            let map: Vec<f32> = json
                                .get("dcam")
                                .and_then(Value::as_array)
                                .expect("dcam rows")
                                .iter()
                                .flat_map(|row| row.as_array().expect("row").iter())
                                .map(|x| x.as_f64().expect("sample") as f32)
                                .collect();
                            (idx, map)
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });
    let http_elapsed = t_http.elapsed();
    assert_eq!(served.len(), request_idx.len());

    // 6. Graceful drain, then rerun the same requests synchronously on
    //    the returned model.
    let (mut models, service_stats, server_stats) = server.shutdown();
    let model = &mut models[0];
    println!(
        "service stats: {} served, mean batch {:.1}, p50 {:.1} ms, p99 {:.1} ms",
        service_stats.completed,
        service_stats.mean_batch,
        service_stats.p50_latency.as_secs_f64() * 1e3,
        service_stats.p99_latency.as_secs_f64() * 1e3,
    );
    println!(
        "server stats: {} connections, {} requests, {} ok, {} 5xx, {} disconnect cancels",
        server_stats.connections_accepted,
        server_stats.requests,
        server_stats.responses_2xx,
        server_stats.responses_5xx,
        server_stats.disconnect_cancels
    );

    let t_seq = Instant::now();
    let sequential: Vec<(usize, Vec<f32>)> = request_idx
        .iter()
        .map(|&idx| {
            (
                idx,
                compute_dcam(model, &ds.samples[idx], 1, &dcam_cfg)
                    .dcam
                    .data()
                    .to_vec(),
            )
        })
        .collect();
    let seq_elapsed = t_seq.elapsed();

    // 7. Same answers over the wire as in process.
    for (idx, over_http) in &served {
        let (_, direct) = sequential
            .iter()
            .find(|(sidx, _)| sidx == idx)
            .expect("same request set");
        let max_diff = over_http
            .iter()
            .zip(direct)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(
            max_diff < 1e-3,
            "instance {idx}: HTTP and sequential dCAM disagree ({max_diff})"
        );
    }
    println!(
        "\nall {} HTTP results match their sequential counterparts",
        served.len()
    );
    println!(
        "HTTP service: {:>8.1} ms total ({:.1} ms/request aggregate)",
        http_elapsed.as_secs_f64() * 1e3,
        http_elapsed.as_secs_f64() * 1e3 / served.len() as f64
    );
    println!(
        "sequential:   {:>8.1} ms total ({:.1} ms/request)",
        seq_elapsed.as_secs_f64() * 1e3,
        seq_elapsed.as_secs_f64() * 1e3 / sequential.len() as f64
    );
    // On a single core the wire cannot beat in-process calls — the point
    // of this ratio is how little the HTTP layer costs on top of the
    // engine (and on a multi-core box, batching makes it exceed 1).
    println!(
        "aggregate HTTP/sequential throughput ratio: {:.2}x",
        seq_elapsed.as_secs_f64() / http_elapsed.as_secs_f64()
    );
}
