//! Explanation server simulation on the **asynchronous** service API:
//! concurrent client threads submit dCAM requests through cloneable
//! [`ServiceHandle`]s, worker threads own trained model replicas and pack
//! the traffic into shared forward mega-batches, and every result is
//! checked against the same request served synchronously by
//! `compute_dcam`.
//!
//! Run: `cargo run --release --example explanation_server`
//! (pin `DCAM_THREADS=1` for reproducible timing splits)

use dcam::dcam::{compute_dcam, DcamConfig};
use dcam::dcam_many::{DcamBatcherConfig, DcamManyConfig};
use dcam::model::ArchKind;
use dcam::service::{replicate_model, Backpressure, DcamService, ServiceConfig};
use dcam::train::{build_and_train, Protocol};
use dcam::{DcamResult, ModelScale};
use dcam_series::synth::inject::{generate, DatasetType, InjectConfig};
use dcam_series::synth::seeds::SeedKind;
use std::time::{Duration, Instant};

fn main() {
    // 1. A Type-1 benchmark and a briefly trained dCNN — the model an
    //    explanation service holds in memory.
    let mut cfg = InjectConfig::new(SeedKind::StarLight, DatasetType::Type1, 6);
    cfg.n_per_class = 24;
    cfg.series_len = 64;
    cfg.pattern_len = 16;
    cfg.amplitude = 2.0;
    cfg.seed = 7;
    let ds = generate(&cfg);
    let protocol = Protocol {
        epochs: 15,
        patience: 15,
        ..Default::default()
    };
    let (clf, outcome) = build_and_train(ArchKind::DCnn, &ds, ModelScale::Tiny, &protocol);
    let model = clf.into_gap().expect("dCNN has a GAP head");
    println!(
        "model ready: dCNN, val accuracy {:.2} — starting explanation service\n",
        outcome.val_acc
    );

    // 2. Spin up the async service: a bounded request queue, blocking
    //    backpressure, and one worker owning the trained model. Flushes
    //    fire at 8 buffered requests or after 2 ms, whichever comes first.
    let dcam_cfg = DcamConfig {
        k: 32,
        only_correct: false,
        ..Default::default()
    };
    let service_cfg = ServiceConfig {
        batcher: DcamBatcherConfig {
            many: DcamManyConfig {
                dcam: dcam_cfg.clone(),
                max_batch: 8,
            },
            max_pending: 8,
            max_wait: Some(Duration::from_millis(2)),
        },
        queue_capacity: 128,
        backpressure: Backpressure::Block,
        latency_window: 1024,
    };
    let models = replicate_model(model, 1, || unreachable!("single worker"));
    let service = DcamService::spawn(models, service_cfg);
    println!(
        "service up: {} worker(s), flush policy: max_pending = 8 or max_wait = 2 ms",
        service.workers()
    );

    // 3. The client side: 8 concurrent threads, each asking for the dCAM
    //    of a share of the class-1 instances. Handles are cheap clones;
    //    each submission returns a future.
    let request_idx: Vec<usize> = ds.class_indices(1);
    println!(
        "request stream: {} instances from {} client threads\n",
        request_idx.len(),
        8
    );
    let t_batched = Instant::now();
    let served: Vec<(usize, DcamResult)> = std::thread::scope(|scope| {
        let chunks: Vec<Vec<usize>> = request_idx
            .chunks(request_idx.len().div_ceil(8))
            .map(<[usize]>::to_vec)
            .collect();
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| {
                let handle = service.handle();
                let ds = &ds;
                scope.spawn(move || {
                    chunk
                        .into_iter()
                        .map(|idx| {
                            let future = handle
                                .submit(&ds.samples[idx], 1)
                                .expect("service accepts the request");
                            (idx, future.wait().expect("request served"))
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });
    let batched_elapsed = t_batched.elapsed();
    assert_eq!(served.len(), request_idx.len());

    // 4. Drain the service; get the model back for the synchronous rerun.
    let (mut models, stats) = service.shutdown();
    let model = &mut models[0];
    println!(
        "service stats: {} served, mean batch {:.1}, p50 {:.1} ms, p99 {:.1} ms, max queue depth {}",
        stats.completed,
        stats.mean_batch,
        stats.p50_latency.as_secs_f64() * 1e3,
        stats.p99_latency.as_secs_f64() * 1e3,
        stats.max_queue_depth
    );
    println!(
        "flushes: {} full, {} deadline, {} queue-drained, {} shutdown",
        stats.flushes_full, stats.flushes_deadline, stats.flushes_drained, stats.flushes_shutdown
    );

    // 5. The same requests, served the synchronous way: one compute_dcam
    //    call per request on a single thread.
    let t_seq = Instant::now();
    let sequential: Vec<(usize, DcamResult)> = request_idx
        .iter()
        .map(|&idx| (idx, compute_dcam(model, &ds.samples[idx], 1, &dcam_cfg)))
        .collect();
    let seq_elapsed = t_seq.elapsed();

    // 6. Same answers, fewer milliseconds.
    for (idx, batched) in &served {
        let (_, single) = sequential
            .iter()
            .find(|(sidx, _)| sidx == idx)
            .expect("same request set");
        let max_diff = batched
            .dcam
            .data()
            .iter()
            .zip(single.dcam.data())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(
            max_diff < 1e-3,
            "instance {idx}: async and sequential dCAM disagree ({max_diff})"
        );
    }
    println!(
        "\nall {} async results match their sequential counterparts",
        served.len()
    );
    println!(
        "async service: {:>8.1} ms total ({:.1} ms/request aggregate)",
        batched_elapsed.as_secs_f64() * 1e3,
        batched_elapsed.as_secs_f64() * 1e3 / served.len() as f64
    );
    println!(
        "sequential:    {:>8.1} ms total ({:.1} ms/request)",
        seq_elapsed.as_secs_f64() * 1e3,
        seq_elapsed.as_secs_f64() * 1e3 / sequential.len() as f64
    );
    println!(
        "aggregate throughput gain: {:.2}x",
        seq_elapsed.as_secs_f64() / batched_elapsed.as_secs_f64()
    );

    let mean_ng: f32 = served.iter().map(|(_, r)| r.ng_ratio()).sum::<f32>() / served.len() as f32;
    println!("mean explanation quality proxy ng/k: {mean_ng:.2}");
}
