//! Discriminant-feature discovery on Type-2 data: the scenario where dCAM
//! is the *only* viable method (paper §5.4).
//!
//! In a Type-2 benchmark both classes contain the same injected patterns;
//! the only difference is *when* they co-occur across dimensions. A
//! per-dimension model (cCNN + cCAM) provably cannot see this — its view of
//! each dimension is identical across classes — while a dCNN compares
//! dimensions inside every kernel. This example trains both, compares their
//! accuracies and explanation quality, and prints the head-to-head verdict.
//!
//! Run: `cargo run --release --example feature_discovery`

use dcam::cam::cam;
use dcam::dcam::{compute_dcam, DcamConfig};
use dcam::model::ArchKind;
use dcam::train::{build_and_train, test_accuracy, Protocol};
use dcam::ModelScale;
use dcam_eval::{dr_acc, dr_acc_random};
use dcam_series::synth::inject::{generate, DatasetType, InjectConfig};
use dcam_series::synth::seeds::SeedKind;

fn main() {
    let mut cfg = InjectConfig::new(SeedKind::StarLight, DatasetType::Type2, 6);
    cfg.n_per_class = 50;
    cfg.series_len = 64;
    cfg.pattern_len = 16;
    cfg.amplitude = 2.0;
    cfg.seed = 8;
    let train_ds = generate(&cfg);
    let mut test_cfg = cfg.clone();
    test_cfg.seed = 1008;
    test_cfg.n_per_class = 12;
    let test_ds = generate(&test_cfg);
    println!(
        "Type-2 benchmark: both classes contain 2 injected patterns; only \
         class 1 injects them at the SAME timestamp.\n"
    );

    let protocol = Protocol {
        epochs: 30,
        patience: 15,
        seed: 7,
        ..Default::default()
    };

    // Per-dimension baseline: cResNet + cCAM (dimension-blind by design).
    let (mut ccnn, _) = build_and_train(ArchKind::CResNet, &train_ds, ModelScale::Small, &protocol);
    let ccnn_acc = test_accuracy(&mut ccnn, &test_ds, 8);

    // Dimension-comparing model: dResNet + dCAM.
    let (mut dcnn, _) = build_and_train(ArchKind::DResNet, &train_ds, ModelScale::Small, &protocol);
    let dcnn_acc = test_accuracy(&mut dcnn, &test_ds, 8);

    println!("test C-acc:   cResNet {ccnn_acc:.2}   vs   dResNet {dcnn_acc:.2}");

    // Explanation quality on class-1 test instances.
    let dcam_cfg = DcamConfig {
        k: 32,
        seed: 9,
        ..Default::default()
    };
    let mut ccam_scores = Vec::new();
    let mut dcam_scores = Vec::new();
    let mut random_scores = Vec::new();
    for &i in test_ds.class_indices(1).iter().take(8) {
        let series = &test_ds.samples[i];
        let mask = test_ds.masks[i].as_ref().unwrap();
        let ccam_map = cam(ccnn.as_gap_mut().unwrap(), series, 1).map;
        ccam_scores.push(dr_acc(&ccam_map, mask.tensor()));
        let d_result = compute_dcam(dcnn.as_gap_mut().unwrap(), series, 1, &dcam_cfg);
        dcam_scores.push(dr_acc(&d_result.dcam, mask.tensor()));
        random_scores.push(dr_acc_random(mask.tensor()));
    }
    let mean = |v: &[f32]| v.iter().sum::<f32>() / v.len().max(1) as f32;
    println!(
        "mean Dr-acc:  cCAM {:.3}   vs   dCAM {:.3}   (random baseline {:.3})",
        mean(&ccam_scores),
        mean(&dcam_scores),
        mean(&random_scores)
    );

    println!(
        "\nAs in Table 3 of the paper: the per-dimension baseline collapses on \
         Type-2 data (its Dr-acc sits at the random baseline and its accuracy \
         near 50%), because the discriminant feature exists only *across* \
         dimensions — which is exactly the information dCNN's C(T) cube \
         preserves and dCAM extracts."
    );
}
