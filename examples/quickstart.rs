//! Quickstart: train a dCNN on a synthetic multivariate benchmark, explain
//! one instance with dCAM, and render the map as an ASCII heatmap.
//!
//! Run: `cargo run --release --example quickstart`

use dcam::dcam::{compute_dcam, DcamConfig};
use dcam::model::ArchKind;
use dcam::train::{build_and_train, Protocol};
use dcam::ModelScale;
use dcam_eval::{dr_acc, dr_acc_random};
use dcam_series::synth::inject::{generate, DatasetType, InjectConfig};
use dcam_series::synth::seeds::SeedKind;
use dcam_tensor::Tensor;

/// Renders a `(D, n)` map as rows of intensity glyphs.
fn ascii_heatmap(map: &Tensor, highlight: Option<&Tensor>) -> String {
    let glyphs = [' ', '.', ':', '-', '=', '+', '*', '#', '@'];
    let (d, n) = (map.dims()[0], map.dims()[1]);
    let max = map.max().max(1e-9);
    let mut out = String::new();
    for dim in 0..d {
        out.push_str(&format!("dim {dim:>2} |"));
        for t in 0..n {
            let v = map.at(&[dim, t]).unwrap() / max;
            let g = glyphs[((v.clamp(0.0, 1.0)) * (glyphs.len() - 1) as f32) as usize];
            out.push(g);
        }
        out.push('|');
        if let Some(h) = highlight {
            let marked: Vec<usize> = (0..n).filter(|&t| h.at(&[dim, t]).unwrap() > 0.5).collect();
            if let (Some(&s), Some(&e)) = (marked.first(), marked.last()) {
                out.push_str(&format!("  <- injected [{s}..{e}]"));
            }
        }
        out.push('\n');
    }
    out
}

fn main() {
    // 1. Build a Type-1 benchmark: 6-dimensional series where class 1 has
    //    two short patterns injected into two random dimensions.
    let mut cfg = InjectConfig::new(SeedKind::StarLight, DatasetType::Type1, 6);
    cfg.n_per_class = 40;
    cfg.series_len = 64;
    cfg.pattern_len = 16;
    cfg.amplitude = 2.0;
    cfg.seed = 42;
    let ds = generate(&cfg);
    println!(
        "dataset: {} instances, D = {}, |T| = {}",
        ds.len(),
        ds.n_dims(),
        ds.series_len()
    );

    // 2. Train a dCNN (the paper's architecture transformed to consume the
    //    C(T) cube) with the §5.2 protocol.
    let protocol = Protocol {
        epochs: 40,
        patience: 40,
        ..Default::default()
    };
    let (mut clf, outcome) = build_and_train(ArchKind::DCnn, &ds, ModelScale::Tiny, &protocol);
    println!(
        "trained dCNN: val accuracy {:.2} after {} epochs",
        outcome.val_acc, outcome.history.epochs_run
    );

    // 3. Explain one discriminant-class instance with dCAM.
    let idx = ds.class_indices(1)[0];
    let series = &ds.samples[idx];
    let mask = ds.masks[idx]
        .as_ref()
        .expect("class-1 instances carry ground truth");
    let gap = clf.as_gap_mut().expect("dCNN has a GAP head");
    let result = compute_dcam(
        gap,
        series,
        1,
        &DcamConfig {
            k: 32,
            ..Default::default()
        },
    );

    println!(
        "\ndCAM for instance {idx} (class 1): ng/k = {:.2}",
        result.ng_ratio()
    );
    println!("{}", ascii_heatmap(&result.dcam, Some(mask.tensor())));

    // 4. Score the explanation against the planted ground truth.
    let score = dr_acc(&result.dcam, mask.tensor());
    let random = dr_acc_random(mask.tensor());
    println!("Dr-acc (PR-AUC vs ground truth): {score:.3}  [random baseline {random:.3}]");
}
