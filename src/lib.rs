//! Workspace umbrella crate: hosts the runnable examples in `examples/` and
//! the cross-crate integration tests in `tests/`. Re-exports the member
//! crates so examples can use a single import root.

pub use dcam;
pub use dcam_eval;
pub use dcam_nn;
pub use dcam_series;
pub use dcam_tensor;
